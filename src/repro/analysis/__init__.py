"""Complexity predictions, experiment drivers, and report formatting."""

from repro.analysis.complexity import (
    PowerLawFit,
    deterministic_single_instance_bound,
    fit_polylog,
    fit_power_law,
    preprocessing_bound,
    query_bound,
)
from repro.analysis.experiments import (
    permutation_requests,
    run_single_instance_comparison,
    run_tradeoff_point,
    shifted_destination,
)
from repro.analysis.reporting import format_row, format_table, print_table

__all__ = [
    "PowerLawFit",
    "deterministic_single_instance_bound",
    "fit_polylog",
    "fit_power_law",
    "preprocessing_bound",
    "query_bound",
    "permutation_requests",
    "run_single_instance_comparison",
    "run_tradeoff_point",
    "shifted_destination",
    "format_row",
    "format_table",
    "print_table",
]
