"""Plain-text table rendering for the experiment harness.

The benchmark scripts and examples print their measurement rows through these
helpers so that the output format is consistent across experiments (and easy
to paste into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_row", "format_kv", "print_table"]


def _stringify(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_row(row: Mapping[str, Any], columns: Sequence[str]) -> list[str]:
    """Extract and stringify the requested columns of a measurement dict."""
    return [_stringify(row.get(column, "")) for column in columns]


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render measurement dicts as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [format_row(row, columns) for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(columns))),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_kv(values: Mapping[str, Any], title: str | None = None) -> str:
    """Render a flat mapping as an aligned ``key  value`` block.

    Used by the serving layer's batch reports, where a single measurement dict
    (cache hit rate, rounds, wall clock) reads better as a column than as a
    one-row table.
    """
    if not values:
        return "(no data)"
    width = max(len(str(key)) for key in values)
    lines = [f"[{title}]"] if title else []
    lines.extend(f"{str(key).ljust(width)}  {_stringify(value)}" for key, value in values.items())
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> None:
    """Print the table (convenience wrapper used by the examples)."""
    print(format_table(rows, columns))
