"""Round-complexity predictions and empirical scaling fits.

The evaluation of a theory paper is its set of complexity claims; this module
turns those claims into curves that can be drawn next to measured data:

* the paper's deterministic bound ``2^{O(sqrt(log n log log n))}``
  (Corollary 1.2), the previous deterministic bound
  ``2^{O(log^{2/3} n log^{1/3} log n)}`` (CS20), and the preprocessing/query
  split of Theorem 1.1;
* a log-log regression utility to extract the empirical growth exponent of a
  measured series (used to check "polylog vs polynomial" shapes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "deterministic_single_instance_bound",
    "preprocessing_bound",
    "query_bound",
    "PowerLawFit",
    "fit_power_law",
    "fit_polylog",
]


def deterministic_single_instance_bound(n: int, constant: float = 1.0) -> float:
    """Corollary 1.2: ``2^{O(sqrt(log n log log n))}`` (O-constant = ``constant``)."""
    n = max(n, 4)
    log_n = math.log2(n)
    loglog_n = math.log2(max(log_n, 2))
    return 2.0 ** (constant * math.sqrt(log_n * loglog_n))


def preprocessing_bound(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Theorem 1.1 preprocessing: ``n^{O(eps)} + log^{O(1/eps)} n``."""
    n = max(n, 4)
    log_n = math.log2(n)
    return (n ** (constant * epsilon)) + (log_n ** (constant / max(epsilon, 1e-6)))


def query_bound(n: int, epsilon: float, load: int = 1, constant: float = 1.0) -> float:
    """Theorem 1.1 query: ``L * log^{O(1/eps)} n``."""
    n = max(n, 4)
    log_n = math.log2(n)
    return load * (log_n ** (constant / max(epsilon, 1e-6)))


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y = a * x^b`` by least squares in log-log space."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * (x ** self.exponent)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a * x^b``; the exponent ``b`` is the empirical growth rate."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) samples with matching lengths")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.maximum(np.asarray(ys, dtype=float), 1e-12))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(exponent=float(slope), coefficient=float(math.exp(intercept)), r_squared=r_squared)


def fit_polylog(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a * (log2 x)^b``: the exponent of the polylog growth."""
    logs = [math.log2(max(x, 2.0)) for x in xs]
    return fit_power_law(logs, ys)
