"""Experiment drivers shared by the benchmark harness and EXPERIMENTS.md.

Each function runs one of the experiments of DESIGN.md's experiment index on a
given parameter point and returns a plain dict of measurements, so the same
code path feeds pytest-benchmark, the examples, and the results tables.
"""

from __future__ import annotations

import time

import networkx as nx

from repro.baselines import (
    cs20_predicted_rounds,
    gks_predicted_rounds,
    route_directly,
    route_randomized,
)
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.graphs.generators import random_regular_expander
from repro.workloads import multi_token_workload, shifted_destination

__all__ = [
    "permutation_requests",
    "run_tradeoff_point",
    "run_single_instance_comparison",
    "shifted_destination",
]


def permutation_requests(graph: nx.Graph, load: int) -> list[RoutingRequest]:
    """A load-``L`` routing instance: ``L`` disjoint permutations of the vertices.

    Thin wrapper over :func:`repro.workloads.multi_token_workload`, kept for
    the experiment drivers' historical API.
    """
    return list(multi_token_workload(graph, load=load).requests)


def run_tradeoff_point(
    n: int, epsilon: float, load: int = 2, queries: int = 4, degree: int = 8, seed: int = 1
) -> dict:
    """One point of experiment E1: preprocessing cost vs per-query cost."""
    graph = random_regular_expander(n, degree=degree, seed=seed)
    router = ExpanderRouter(graph, epsilon=epsilon)
    start = time.perf_counter()
    summary = router.preprocess()
    preprocess_seconds = time.perf_counter() - start

    query_rounds: list[int] = []
    delivered = 0
    total = 0
    start = time.perf_counter()
    for query_index in range(queries):
        requests = permutation_requests(graph, load)
        outcome = router.route(requests)
        query_rounds.append(outcome.query_rounds)
        delivered += outcome.delivered
        total += outcome.total_tokens
    query_seconds = time.perf_counter() - start

    return {
        "n": n,
        "epsilon": epsilon,
        "load": load,
        "queries": queries,
        "preprocess_rounds": summary.rounds,
        "mean_query_rounds": sum(query_rounds) / len(query_rounds),
        "amortized_rounds_per_query": summary.rounds / queries + sum(query_rounds) / queries,
        "all_delivered": delivered == total,
        "hierarchy_levels": summary.hierarchy_levels,
        "preprocess_seconds": preprocess_seconds,
        "query_seconds": query_seconds,
    }


def run_single_instance_comparison(
    n: int, epsilon: float = 0.5, load: int = 2, degree: int = 8, seed: int = 1
) -> dict:
    """One point of experiment E2: ours vs baselines on a single routing instance."""
    graph = random_regular_expander(n, degree=degree, seed=seed)
    requests = permutation_requests(graph, load)

    router = ExpanderRouter(graph, epsilon=epsilon)
    summary = router.preprocess()
    ours = router.route(requests)

    naive = route_directly(graph, requests)
    randomized = route_randomized(graph, requests, seed=seed)

    return {
        "n": n,
        "epsilon": epsilon,
        "load": load,
        "ours_query_rounds": ours.query_rounds,
        "ours_total_rounds": ours.query_rounds + summary.rounds,
        "ours_delivered": ours.all_delivered,
        "naive_rounds": naive.rounds,
        "naive_congestion": naive.congestion,
        "randomized_rounds": randomized.rounds,
        "cs20_predicted": cs20_predicted_rounds(n),
        "gks_predicted": gks_predicted_rounds(n),
    }
