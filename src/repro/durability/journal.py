"""The coordinator's write-ahead journal: durable records, torn-tail replay.

Two layers, deliberately separate:

* :class:`WriteAheadJournal` knows about **bytes**: it frames wire messages as
  ``[u32 length][u32 crc32][payload]`` records in segment-rotated files and
  replays them in order, stopping cleanly at the first torn or corrupt record
  (a crash mid-``write`` truncates the tail, it never corrupts what came
  before — classic WAL semantics).
* :class:`CoordinatorJournal` knows about the **coordinator**: every admission
  decision and completion becomes a durable record *before* the outcome is
  acted on, and a :class:`~repro.wire.messages.JournalCheckpoint` carrying the
  full recoverable state is written at segment rotation, on membership
  changes, and every ``checkpoint_interval`` records.  Checkpoints rotate to
  a fresh segment and prune everything older, which is what bounds both the
  journal's size and recovery's replay time.

Records reuse the versioned wire codec (:mod:`repro.wire.messages`), so the
journal format evolves under the same schema-version contract as the network
protocol, and the hypothesis round-trip suite covers both for free.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.metrics import MetricsRegistry, default_registry
from repro.wire.messages import (
    JournalAdmit,
    JournalCheckpoint,
    JournalComplete,
    WireDecodeError,
    WireMessage,
    WireShardQuery,
    message_from_wire,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.admission import AdmissionDecision
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.worker import ShardQuery

__all__ = ["WriteAheadJournal", "CoordinatorJournal", "SEGMENT_PREFIX"]

#: Journal segments are ``wal-<n:08d>.log`` under the journal directory.
SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"

#: Record framing: big-endian payload length then CRC32 of the payload.
_HEADER = struct.Struct(">II")

#: Default segment rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 1 << 20


def _segment_index(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return -1


class WriteAheadJournal:
    """Length-prefixed, checksummed wire-message records in rotating segments.

    Args:
        directory: the journal directory (created if missing).  One journal
            owns the directory's ``wal-*.log`` namespace.
        segment_bytes: rotate to a new segment once the active one reaches
            this size (checks after each append, so a segment may exceed it
            by one record).
        fsync: when true, ``fsync`` after every append — real crash
            durability at real crash-latency cost.  The default flushes to
            the OS only, which is what the (single-host) chaos tests
            simulate: a SIGKILLed *process* loses nothing flushed.
        metrics: registry for the ``repro_journal_*`` families.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if segment_bytes < _HEADER.size + 1:
            raise ValueError("segment_bytes is too small to hold a single record")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.fsync = fsync
        self.metrics = metrics if metrics is not None else default_registry()
        self._lock = threading.RLock()
        self._closed = False
        self._m_records = self.metrics.counter(
            "repro_journal_records_total",
            "Records appended to the write-ahead journal, by kind.",
            labels=("kind",),
        )
        self._m_bytes = self.metrics.counter(
            "repro_journal_bytes_total", "Bytes appended to the write-ahead journal."
        )
        self._m_segments = self.metrics.gauge(
            "repro_journal_segments", "Live journal segment files."
        )
        self._m_checkpoints = self.metrics.counter(
            "repro_journal_checkpoints_total", "Checkpoint records written."
        )
        self._m_groups = self.metrics.counter(
            "repro_journal_group_commits_total",
            "Record groups flushed as a single buffered write (one fsync each).",
        )
        self._m_group_records = self.metrics.counter(
            "repro_journal_group_records_total",
            "Records that reached disk inside a group commit.",
        )
        existing = self.segments()
        self._segment_index = _segment_index(existing[-1]) if existing else 0
        self._active_path = self.directory / (
            f"{SEGMENT_PREFIX}{self._segment_index:08d}{_SEGMENT_SUFFIX}"
        )
        self._file = open(self._active_path, "ab")
        self._m_segments.set(len(self.segments()))

    # -- the segment namespace -------------------------------------------------

    def segments(self) -> list[Path]:
        """The journal's segment files, oldest first."""
        found = [
            path
            for path in self.directory.iterdir()
            if path.name.startswith(SEGMENT_PREFIX)
            and path.name.endswith(_SEGMENT_SUFFIX)
            and _segment_index(path) >= 0
        ]
        return sorted(found, key=_segment_index)

    def size_bytes(self) -> int:
        """Total bytes across every live segment."""
        return sum(path.stat().st_size for path in self.segments())

    # -- appending ---------------------------------------------------------------

    @staticmethod
    def _frame(message: WireMessage) -> bytes:
        payload = message.to_wire()
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def append(self, message: WireMessage) -> int:
        """Durably append one record; returns its encoded size in bytes.

        The record is framed, checksummed, written, and flushed before this
        returns — the write-ahead contract is that the caller may act on the
        outcome only once ``append`` has.
        """
        frame = self._frame(message)
        with self._lock:
            if self._closed:
                raise ValueError("journal is closed")
            self._file.write(frame)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._m_records.labels(kind=message.type).inc()
            self._m_bytes.inc(len(frame))
            if self._file.tell() >= self.segment_bytes:
                self._rotate()
        return len(frame)

    def append_group(self, messages: Sequence[WireMessage]) -> int:
        """Durably append many records as **one** buffered write and flush.

        Group commit: every record is framed and checksummed exactly as
        :meth:`append` frames it (replay cannot tell the difference), but the
        group pays for one ``write``/``flush``/``fsync`` instead of one per
        record.  A crash mid-group truncates at a record boundary inside the
        group — the intact prefix replays, the torn suffix is exactly the
        work whose outcome was never acknowledged.  Returns the group's total
        encoded size in bytes.
        """
        frames = [self._frame(message) for message in messages]
        if not frames:
            return 0
        blob = b"".join(frames)
        with self._lock:
            if self._closed:
                raise ValueError("journal is closed")
            self._file.write(blob)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            for message in messages:
                self._m_records.labels(kind=message.type).inc()
            self._m_bytes.inc(len(blob))
            self._m_groups.inc()
            self._m_group_records.inc(len(frames))
            if self._file.tell() >= self.segment_bytes:
                self._rotate()
        return len(blob)

    def checkpoint(self, message: WireMessage) -> None:
        """Write ``message`` as the first record of a fresh segment and prune.

        After this returns, replay starts at the checkpoint: every older
        segment is deleted (their state is subsumed by the checkpoint), so
        journal size and recovery time stay bounded by the write traffic
        since the last checkpoint, not by the coordinator's lifetime.
        """
        with self._lock:
            if self._closed:
                raise ValueError("journal is closed")
            self._rotate()
            checkpoint_path = self._active_path
            self.append(message)
            self._m_checkpoints.inc()
            for path in self.segments():
                if _segment_index(path) < _segment_index(checkpoint_path):
                    path.unlink(missing_ok=True)
            self._m_segments.set(len(self.segments()))

    def _rotate(self) -> None:
        self._file.close()
        self._segment_index += 1
        self._active_path = self.directory / (
            f"{SEGMENT_PREFIX}{self._segment_index:08d}{_SEGMENT_SUFFIX}"
        )
        self._file = open(self._active_path, "ab")
        self._m_segments.set(len(self.segments()))

    # -- replay ------------------------------------------------------------------

    def replay(self) -> Iterator[WireMessage]:
        """Yield every intact record in order; stop at the first torn one.

        A record is torn when its frame is short (crash mid-write) or its
        checksum disagrees (partial page flush).  Everything before the tear
        is intact by construction, so replay simply stops — the lost suffix
        is exactly the work the crash interrupted, which recovery re-admits
        from the last durable admit records.
        """
        for path in self.segments():
            with open(path, "rb") as handle:
                data = handle.read()
            offset = 0
            while offset + _HEADER.size <= len(data):
                length, checksum = _HEADER.unpack_from(data, offset)
                start = offset + _HEADER.size
                end = start + length
                if end > len(data):
                    return  # torn tail: the frame promises more bytes than exist
                payload = data[start:end]
                if zlib.crc32(payload) != checksum:
                    return  # corrupt record: stop, never guess past it
                try:
                    yield message_from_wire(payload)
                except WireDecodeError:
                    return  # framing survived but the codec refuses: treat as torn
                offset = end
            if offset < len(data):
                return  # trailing partial header

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the active segment; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.flush()
            self._file.close()

    def abandon(self) -> None:
        """Stop writing as a crash would: no checkpoint, no shutdown tidying.

        This is the crash simulator's hook: a SIGKILLed coordinator never
        runs its clean-shutdown checkpoint, so tests abandon the journal to
        guarantee only what :meth:`append` already made durable survives.
        (Appends flush eagerly, so releasing the handle writes nothing new —
        exactly the SIGKILL contract.)
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.close()
            except OSError:
                pass

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False


class CoordinatorJournal:
    """The coordinator-facing recorder over a :class:`WriteAheadJournal`.

    Mirrors just enough coordinator state to build checkpoints without
    walking the coordinator's internals mid-flight:

    * ``pending`` — idempotency key → the admitted
      :class:`~repro.wire.messages.WireShardQuery`, in admission order
      (recovery re-admits them verbatim, in order);
    * ``warm`` — fingerprint → a one-request exemplar query, kept in
      **last-use order** by moving a fingerprint to the end on every
      completion.  Recovery replays the exemplars in this order, so the
      re-warmed LRU caches converge to the same content (and hence the same
      hit/miss stream, and hence a byte-identical report signature) as the
      crashed coordinator's.
    * ``completed`` keys are read from the coordinator at checkpoint time —
      the coordinator's set is the single source of truth for dedup.

    Args:
        directory: journal directory (shared with :func:`repro.durability.recover`).
        segment_bytes / fsync: passed through to :class:`WriteAheadJournal`.
        checkpoint_interval: write a full checkpoint every this many admit or
            complete records (in addition to rotation- and membership-driven
            checkpoints).
        metrics: registry for the ``repro_journal_*`` families.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        checkpoint_interval: int = 64,
        fsync: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        self.wal = WriteAheadJournal(
            directory, segment_bytes=segment_bytes, fsync=fsync, metrics=metrics
        )
        self.checkpoint_interval = int(checkpoint_interval)
        self._lock = threading.RLock()
        self._coordinator: "ClusterCoordinator | None" = None
        self._records_since_checkpoint = 0
        self._pending: "OrderedDict[str, WireShardQuery]" = OrderedDict()
        self._warm: "OrderedDict[str, WireShardQuery]" = OrderedDict()
        self._group_owner: int | None = None
        self._group_depth = 0
        self._group_buffer: list[WireMessage] = []
        self._group_checkpoint_due = False

    @property
    def directory(self) -> Path:
        return self.wal.directory

    def attach(self, coordinator: "ClusterCoordinator") -> None:
        """Bind to the coordinator whose state checkpoints will snapshot."""
        with self._lock:
            self._coordinator = coordinator

    def seed(
        self,
        pending: "OrderedDict[str, WireShardQuery] | dict[str, WireShardQuery]",
        warm: "OrderedDict[str, WireShardQuery] | dict[str, WireShardQuery]",
    ) -> None:
        """Preload the mirrors from recovered journal state.

        Recovery attaches a *fresh* journal to the rebuilt coordinator; without
        seeding, its first checkpoint would record empty pending/warm maps and
        a second crash right after recovery would lose the re-admitted work.
        """
        with self._lock:
            self._pending = OrderedDict(pending)
            self._warm = OrderedDict(warm)

    # -- recording ---------------------------------------------------------------

    @contextmanager
    def group(self) -> Iterator[None]:
        """Group-commit window: buffer this thread's records into one flush.

        Inside the ``with`` block, ``record_admit``/``record_complete`` calls
        **from the owning thread** accumulate in memory; on exit they reach
        disk via one :meth:`WriteAheadJournal.append_group` (one buffered
        write, one flush, one optional fsync).  The write-ahead contract
        holds as long as the caller acts on the grouped outcomes only after
        the block exits — which is exactly how the coordinator's batched
        admission uses it: decisions are returned (and replies sent) only
        once the group is flushed, so a crash mid-group loses nothing that
        was acknowledged.

        Records from *other* threads (a dispatch drain completing earlier
        work while an admission group is open) bypass the buffer and append
        directly — their callers expect per-record durability, and their
        admits were flushed by an earlier group.  Checkpoints that fall due
        inside the window are deferred to the flush, keeping the window at
        one fsync.  Re-entrant use by the owner nests into one group; a
        competing ``group()`` from a second thread degrades to a no-op
        passthrough rather than interleaving buffers.
        """
        ident = threading.get_ident()
        with self._lock:
            if self._group_depth > 0 and self._group_owner != ident:
                grouped = False
            else:
                grouped = True
                self._group_owner = ident
                self._group_depth += 1
        if not grouped:
            yield
            return
        try:
            yield
        finally:
            with self._lock:
                self._group_depth -= 1
                if self._group_depth == 0:
                    buffer, self._group_buffer = self._group_buffer, []
                    self._group_owner = None
                    checkpoint_due = self._group_checkpoint_due
                    self._group_checkpoint_due = False
                    if buffer:
                        self.wal.append_group(buffer)
                    if checkpoint_due:
                        self.checkpoint_now()

    def _append(self, record: WireMessage) -> None:
        """Append one record, buffering it when the caller owns an open group."""
        if self._group_depth > 0 and self._group_owner == threading.get_ident():
            self._group_buffer.append(record)
        else:
            self.wal.append(record)

    def record_admit(
        self, key: str, decision: "AdmissionDecision", item: "ShardQuery"
    ) -> None:
        """Durably record one submit's outcome (accepted or not) before dispatch.

        Rejected submissions are recorded too (without the query payload) so a
        replayed coordinator reports the exact same lifetime admission stats —
        the load generator's delta accounting must span the crash seamlessly.
        """
        with self._lock:
            wire_query = WireShardQuery.from_shard_query(item) if decision.accepted else None
            shed_keys = tuple(
                shed_key
                for dropped in decision.shed
                if (shed_key := getattr(dropped, "idempotency_key", ""))
            )
            record = JournalAdmit(
                key=key,
                shard_id=decision.shard_id,
                accepted=decision.accepted,
                shed_keys=shed_keys,
                query=wire_query,
            )
            if decision.accepted and key:
                self._pending[key] = wire_query
            for shed_key in shed_keys:
                self._pending.pop(shed_key, None)
            self._append(record)
            self._maybe_checkpoint()

    def record_complete(self, item: "ShardQuery", shard_id: str) -> None:
        """Durably record one served batch; promotes its exemplar to warmest."""
        key = item.idempotency_key
        with self._lock:
            record = JournalComplete(
                key=key, fingerprint=item.fingerprint, shard_id=shard_id
            )
            exemplar = self._pending.pop(key, None)
            if exemplar is None:
                exemplar = WireShardQuery.from_shard_query(item)
            self._warm[item.fingerprint] = exemplar
            self._warm.move_to_end(item.fingerprint)
            self._append(record)
            self._maybe_checkpoint()

    def record_membership(self) -> None:
        """A shard joined or left: checkpoint immediately.

        Membership changes invalidate every placement a replayed admit record
        implies, so rather than journal them incrementally the journal folds
        the whole post-change state into one checkpoint.
        """
        self.checkpoint_now()

    def _maybe_checkpoint(self) -> None:
        self._records_since_checkpoint += 1
        if self._records_since_checkpoint >= self.checkpoint_interval:
            if self._group_depth > 0:
                self._group_checkpoint_due = True
            else:
                self.checkpoint_now()

    # -- checkpoints -------------------------------------------------------------

    def build_checkpoint(self) -> JournalCheckpoint:
        """Snapshot the attached coordinator's recoverable state as a record."""
        coordinator = self._coordinator
        if coordinator is None:
            raise RuntimeError("no coordinator attached; call attach() first")
        planner = coordinator.planner
        with self._lock:
            return JournalCheckpoint(
                shard_ids=tuple(coordinator.ring.shard_ids),
                next_shard_index=coordinator._next_shard_index,
                seen_fingerprints=tuple(sorted(coordinator._seen_fingerprints)),
                pending=tuple(self._pending.values()),
                completed_keys=tuple(sorted(coordinator._completed_keys)),
                warm=tuple(self._warm.values()),
                auto_key_counter=coordinator._auto_key_counter,
                admission=coordinator.admission.stats_snapshot(),
                lost_batches=coordinator.lost_batches,
                requeued_batches=coordinator.requeued_batches,
                failovers=coordinator.failovers,
                duplicate_results=coordinator.duplicate_results,
                hot_ewma=dict(coordinator._hot_ewma),
                replicas={
                    key: tuple(owners) for key, owners in coordinator._replicas.items()
                },
                planner_state=planner.cost_model.snapshot() if planner is not None else None,
                planner_version=planner.cost_model.version if planner is not None else 0,
            )

    def checkpoint_now(self) -> None:
        """Write a full checkpoint record and prune older segments."""
        with self._lock:
            if self._coordinator is None:
                return  # nothing to snapshot yet; attach() writes the baseline
            if self._group_depth > 0 and self._group_owner == threading.get_ident():
                # Flush the open group's buffer first: a checkpoint must never
                # precede records whose effects it already summarizes.
                if self._group_buffer:
                    buffer, self._group_buffer = self._group_buffer, []
                    self.wal.append_group(buffer)
            self.wal.checkpoint(self.build_checkpoint())
            self._records_since_checkpoint = 0

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.wal.close()

    def abandon(self) -> None:
        """Crash-simulation hook: see :meth:`WriteAheadJournal.abandon`."""
        self.wal.abandon()
