"""Crash recovery: replay the journal into a fresh coordinator.

:func:`read_journal_state` folds a journal — last checkpoint plus the records
after it — into a :class:`JournalState`; :func:`recover` turns that state into
a live :class:`~repro.cluster.ClusterCoordinator`:

* membership is rebuilt from the checkpoint's ring (same shard ids, same
  placement);
* admitted-but-unfinished batches are re-admitted **in admission order** onto
  the live ring (``reason="recovery"`` requeues — at-least-once execution);
* completed idempotency keys are restored, so a re-submission or a replayed
  admit of finished work dedups instead of re-executing (exactly-once
  *results*);
* per-shard caches are re-warmed by serving a one-request exemplar of every
  warm fingerprint **in last-use order**, so the rebuilt LRU caches converge
  to the crashed coordinator's content and the post-recovery hit/miss stream
  — and therefore :meth:`~repro.cluster.ClusterReport.signature` — matches a
  crash-free run;
* orphaned shared-memory segments from SIGKILLed server processes are swept.

:class:`CoordinatorSupervisor` packages the crash/recover cycle behind the
two-method protocol the chaos :class:`~repro.elastic.FaultInjector` expects
(``crash_coordinator()``), so a fault plan can SIGKILL the coordinator
mid-stream and the load generator keeps driving the journal-recovered
replacement.

Known recovery seams (documented, deliberate):

* the submissions of the window interrupted by the crash have already bumped
  the hot-key window counts, which die with the process — the EWMA restored
  from the checkpoint lags one window (irrelevant at
  ``replication_factor=1``);
* replica read round-robin cursors restart at zero, so parity checks pin
  ``replication_factor=1``.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.cluster.coordinator import ClusterCoordinator
from repro.durability.journal import CoordinatorJournal, WriteAheadJournal
from repro.metrics import MetricsRegistry
from repro.wire.messages import (
    JournalAdmit,
    JournalCheckpoint,
    JournalComplete,
    WireShardQuery,
)

__all__ = ["JournalState", "RecoveryReport", "read_journal_state", "recover", "CoordinatorSupervisor"]


def _blank_stats() -> dict[str, int]:
    return {"offered": 0, "accepted": 0, "rejected": 0, "shed": 0}


@dataclass
class JournalState:
    """A journal folded into its recoverable state (checkpoint + tail).

    ``pending`` and ``warm`` preserve order — admission order and last-use
    order respectively — because recovery replays both in order.
    """

    checkpoint: JournalCheckpoint | None = None
    pending: "OrderedDict[str, WireShardQuery]" = field(default_factory=OrderedDict)
    completed: set[str] = field(default_factory=set)
    warm: "OrderedDict[str, WireShardQuery]" = field(default_factory=OrderedDict)
    admission: dict[str, dict[str, int]] = field(default_factory=dict)
    seen_fingerprints: set[str] = field(default_factory=set)
    auto_key_counter: int = 0
    records_total: int = 0
    records_replayed: int = 0  # records folded after the last checkpoint

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self.checkpoint.shard_ids) if self.checkpoint is not None else ()


def read_journal_state(directory: str | os.PathLike) -> JournalState:
    """Replay ``directory``'s journal into a :class:`JournalState`.

    Pure fold, no side effects on the journal: the truncation-robustness
    tests call this on byte-level prefixes of a real journal and assert the
    invariants (no batch both pending and completed, no resurrection of shed
    keys) hold at *every* record boundary.
    """
    state = JournalState()
    wal = WriteAheadJournal(directory)
    try:
        for record in wal.replay():
            state.records_total += 1
            if isinstance(record, JournalCheckpoint):
                state.checkpoint = record
                state.records_replayed = 0
                state.pending = OrderedDict(
                    (query.idempotency_key, query) for query in record.pending
                )
                state.completed = set(record.completed_keys)
                state.warm = OrderedDict((query.fingerprint, query) for query in record.warm)
                state.admission = {
                    shard: {**_blank_stats(), **{k: int(v) for k, v in stats.items()}}
                    for shard, stats in record.admission.items()
                }
                state.seen_fingerprints = set(record.seen_fingerprints)
                state.auto_key_counter = record.auto_key_counter
                continue
            state.records_replayed += 1
            if isinstance(record, JournalAdmit):
                stats = state.admission.setdefault(record.shard_id, _blank_stats())
                stats["offered"] += 1
                if record.accepted:
                    stats["accepted"] += 1
                else:
                    stats["rejected"] += 1
                stats["shed"] += len(record.shed_keys)
                for shed_key in record.shed_keys:
                    state.pending.pop(shed_key, None)
                if record.accepted and record.query is not None:
                    state.seen_fingerprints.add(record.query.fingerprint)
                    if record.key and record.key not in state.completed:
                        state.pending[record.key] = record.query
                if record.key.startswith("auto-"):
                    suffix = record.key[len("auto-") :]
                    if suffix.isdigit():
                        state.auto_key_counter = max(state.auto_key_counter, int(suffix) + 1)
            elif isinstance(record, JournalComplete):
                exemplar = state.pending.pop(record.key, None)
                if exemplar is not None:
                    state.warm[record.fingerprint] = exemplar
                if record.fingerprint in state.warm:
                    state.warm.move_to_end(record.fingerprint)
                if record.key:
                    state.completed.add(record.key)
    finally:
        wal.close()
    return state


@dataclass
class RecoveryReport:
    """What one :func:`recover` call found, replayed, and rebuilt."""

    checkpoint_found: bool = False
    records_total: int = 0
    records_replayed: int = 0
    batches_recovered: int = 0
    completed_keys: int = 0
    rewarmed: int = 0
    rewarm_failures: int = 0
    segments_swept: int = 0
    journal_bytes: int = 0
    replay_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def replay_records_per_second(self) -> float:
        return self.records_total / self.replay_seconds if self.replay_seconds > 0 else 0.0

    def summary(self) -> dict[str, object]:
        return {
            "checkpoint_found": self.checkpoint_found,
            "records_total": self.records_total,
            "records_replayed": self.records_replayed,
            "batches_recovered": self.batches_recovered,
            "completed_keys": self.completed_keys,
            "rewarmed": self.rewarmed,
            "rewarm_failures": self.rewarm_failures,
            "segments_swept": self.segments_swept,
            "journal_bytes": self.journal_bytes,
            "replay_seconds": self.replay_seconds,
            "replay_records_per_second": self.replay_records_per_second,
            "total_seconds": self.total_seconds,
        }


def recover(
    directory: str | os.PathLike,
    coordinator_kwargs: Mapping[str, Any],
    *,
    rewarm: bool = True,
    sweep: bool = True,
    attach: bool = True,
    journal_kwargs: Mapping[str, Any] | None = None,
) -> tuple[ClusterCoordinator, RecoveryReport]:
    """Rebuild a live coordinator from ``directory``'s journal.

    Args:
        directory: the crashed coordinator's journal directory.
        coordinator_kwargs: the constructor arguments the crashed coordinator
            was built with (the journal records state, not configuration).
            ``shard_count`` is replaced by the checkpoint's actual membership.
        rewarm: serve a one-request exemplar of every warm fingerprint on its
            current owner, in last-use order, so the rebuilt caches match the
            crashed ones (required for report-signature parity).
        sweep: unlink orphaned shared-memory segments whose owner process is
            dead (SIGKILLed ``tcp`` shard servers leak them).
        attach: attach a fresh :class:`CoordinatorJournal` over the same
            directory (seeded with the recovered state) so the rebuilt
            coordinator is itself recoverable; its baseline checkpoint also
            prunes any torn tail left by the crash.
        journal_kwargs: overrides for the fresh journal (segment bytes,
            checkpoint interval, fsync).

    Returns:
        ``(coordinator, report)`` — the coordinator is live and serving; the
        report carries replay counts and timings for the recovery benchmark.
    """
    started = time.perf_counter()
    state = read_journal_state(directory)
    report = RecoveryReport(
        checkpoint_found=state.checkpoint is not None,
        records_total=state.records_total,
        records_replayed=state.records_replayed,
        completed_keys=len(state.completed),
        replay_seconds=time.perf_counter() - started,
    )

    kwargs = dict(coordinator_kwargs)
    kwargs.pop("journal", None)
    checkpoint = state.checkpoint
    if checkpoint is not None and checkpoint.shard_ids:
        kwargs.pop("shard_count", None)
        kwargs["shard_ids"] = tuple(checkpoint.shard_ids)
    coordinator = ClusterCoordinator(**kwargs)

    if checkpoint is not None:
        coordinator._next_shard_index = max(
            coordinator._next_shard_index, checkpoint.next_shard_index
        )
        coordinator._seen_fingerprints.update(state.seen_fingerprints)
        coordinator.lost_batches = checkpoint.lost_batches
        coordinator.requeued_batches = checkpoint.requeued_batches
        coordinator.failovers = checkpoint.failovers
        coordinator.duplicate_results = checkpoint.duplicate_results
        coordinator._hot_ewma.update(checkpoint.hot_ewma)
        for fingerprint, owners in checkpoint.replicas.items():
            live = tuple(sid for sid in owners if sid in coordinator.workers)
            if live:
                coordinator._replicas[fingerprint] = live
        coordinator.admission.restore_stats(state.admission)
        if coordinator.planner is not None and checkpoint.planner_state is not None:
            coordinator.planner.cost_model.restore(
                checkpoint.planner_state, version=checkpoint.planner_version
            )
    with coordinator._keys_lock:
        coordinator._completed_keys = set(state.completed)
        coordinator._auto_key_counter = state.auto_key_counter

    # Re-warm before re-admitting: the recovered batches must find the same
    # cache state they would have found in the crash-free run.
    if rewarm:
        for fingerprint, wire_query in state.warm.items():
            exemplar = wire_query.to_shard_query()
            owners = [coordinator.ring.assign(fingerprint)]
            for sid in coordinator._replicas.get(fingerprint, ()):
                if sid not in owners:
                    owners.append(sid)
            for owner in owners:
                worker = coordinator.workers.get(owner)
                if worker is None:
                    continue
                warm_item = replace(
                    exemplar,
                    requests=exemplar.requests[:1] or exemplar.requests,
                    plan=(
                        exemplar.plan.with_shard(owner)
                        if exemplar.plan is not None
                        else None
                    ),
                    idempotency_key="",
                )
                try:
                    # Straight to the worker: warm batches are not admissions
                    # and must not journal, count, or complete anything.
                    worker.process([warm_item])
                    report.rewarmed += 1
                except (ConnectionError, OSError):
                    report.rewarm_failures += 1

    pending_items = [query.to_shard_query() for query in state.pending.values()]
    report.batches_recovered = coordinator._requeue_items(pending_items, reason="recovery")
    with coordinator._keys_lock:
        for item in pending_items:
            if item.idempotency_key:
                coordinator._pending_keys[item.idempotency_key] = coordinator.ring.assign(
                    item.fingerprint
                )

    if sweep:
        report.segments_swept = coordinator._sweep_orphan_segments()

    if attach:
        fresh_kwargs = dict(journal_kwargs or {})
        fresh_kwargs.setdefault("metrics", coordinator.metrics)
        journal = CoordinatorJournal(directory, **fresh_kwargs)
        journal.seed(pending=state.pending, warm=state.warm)
        coordinator.attach_journal(journal)
        report.journal_bytes = journal.wal.size_bytes()

    report.total_seconds = time.perf_counter() - started
    return coordinator, report


class CoordinatorSupervisor:
    """Owns a coordinator's journal directory and crash/recover lifecycle.

    The chaos loop's process-level counterpart to
    :class:`~repro.elastic.FaultInjector`'s shard faults: the injector calls
    :meth:`crash_coordinator` when a ``coordinator-crash`` event fires, and
    the load generator transparently continues on the replacement.

    Args:
        directory: the journal directory (shared across incarnations).
        coordinator_kwargs: constructor arguments for every incarnation.
        journal_kwargs: :class:`CoordinatorJournal` knobs (segment bytes,
            checkpoint interval, fsync).
        rewarm / sweep: passed to :func:`recover`.
        metrics: shared registry; counters therefore span incarnations.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        coordinator_kwargs: Mapping[str, Any] | None = None,
        *,
        journal_kwargs: Mapping[str, Any] | None = None,
        rewarm: bool = True,
        sweep: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.directory = directory
        self.coordinator_kwargs = dict(coordinator_kwargs or {})
        if metrics is not None:
            self.coordinator_kwargs.setdefault("metrics", metrics)
        self.journal_kwargs = dict(journal_kwargs or {})
        self.rewarm = rewarm
        self.sweep = sweep
        self.coordinator: ClusterCoordinator | None = None
        self.crashes = 0
        self.recoveries: list[RecoveryReport] = []

    def start(self) -> ClusterCoordinator:
        """Build the first incarnation, journaling from its first submit."""
        if self.coordinator is not None:
            raise RuntimeError("supervisor already has a live coordinator")
        fresh_kwargs = dict(self.journal_kwargs)
        if "metrics" in self.coordinator_kwargs:
            fresh_kwargs.setdefault("metrics", self.coordinator_kwargs["metrics"])
        journal = CoordinatorJournal(self.directory, **fresh_kwargs)
        self.coordinator = ClusterCoordinator(**self.coordinator_kwargs, journal=journal)
        return self.coordinator

    def crash(self) -> None:
        """SIGKILL semantics: no clean shutdown anywhere.

        Remote shard-server children are killed (not shut down), the journal
        is abandoned (no final checkpoint), and the coordinator object is
        dropped without ``close()`` — recovery may use only what the journal
        already made durable.
        """
        coordinator = self.coordinator
        if coordinator is None:
            return
        self.coordinator = None
        self.crashes += 1
        for worker in coordinator.workers.values():
            child = getattr(worker, "child", None)
            if child is not None:
                child.kill()
                child.join(timeout=10)
        if coordinator.journal is not None:
            coordinator.journal.abandon()

    def recover(self) -> ClusterCoordinator:
        """Rebuild from the journal; the new incarnation becomes current."""
        if self.coordinator is not None:
            raise RuntimeError("cannot recover while a coordinator is live; crash() first")
        coordinator, report = recover(
            self.directory,
            self.coordinator_kwargs,
            rewarm=self.rewarm,
            sweep=self.sweep,
            journal_kwargs=self.journal_kwargs,
        )
        self.recoveries.append(report)
        self.coordinator = coordinator
        return coordinator

    def crash_coordinator(self) -> ClusterCoordinator:
        """The :class:`~repro.elastic.FaultInjector` hook: crash, then recover."""
        self.crash()
        return self.recover()

    def close(self) -> None:
        if self.coordinator is not None:
            self.coordinator.close()
            self.coordinator = None

    def __enter__(self) -> "CoordinatorSupervisor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
