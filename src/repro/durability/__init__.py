"""Durability: the coordinator's write-ahead journal and crash recovery.

The serving tier's exactly-once story lives here:

* :class:`WriteAheadJournal` — length-prefixed, CRC-checksummed records in
  segment-rotated files, tolerant of torn tails (a crash mid-write truncates,
  never corrupts replay).
* :class:`CoordinatorJournal` — the coordinator-facing recorder: durable
  admit/complete records carrying wire-versioned
  :class:`~repro.wire.messages.WireShardQuery` payloads and idempotency keys,
  with periodic :class:`~repro.wire.messages.JournalCheckpoint` records
  (ring membership, pending/completed keys, warm-cache exemplars, admission
  stats, planner calibration).
* :func:`recover` — replays the journal tail into a fresh
  :class:`~repro.cluster.ClusterCoordinator`: re-owns unfinished batches onto
  the live ring, dedups completed idempotency keys, re-warms per-shard caches
  in last-use order (signature parity with a crash-free run), and sweeps
  orphaned shared-memory segments left by SIGKILLed processes.
* :class:`CoordinatorSupervisor` — owns the journal directory and the
  coordinator's lifecycle so chaos plans can SIGKILL the coordinator
  mid-stream (``coordinator-crash`` events) and bring a journal-recovered
  replacement back without the load generator noticing.
"""

from repro.durability.journal import CoordinatorJournal, WriteAheadJournal
from repro.durability.recovery import (
    CoordinatorSupervisor,
    JournalState,
    RecoveryReport,
    read_journal_state,
    recover,
)

__all__ = [
    "WriteAheadJournal",
    "CoordinatorJournal",
    "JournalState",
    "RecoveryReport",
    "read_journal_state",
    "recover",
    "CoordinatorSupervisor",
]
