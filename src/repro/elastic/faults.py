"""Seeded fault schedules and the injector that applies them to a live cluster.

Chaos here is *scripted*, not random-at-runtime: a :class:`FaultPlan` is a
sorted list of :class:`FaultEvent` entries on the load generator's simulated
clock, so the same plan replays the same kill/rejoin cycle on every run (and
on both transports — a tcp ``crash`` SIGKILLs the real shard server process,
a local one trips :class:`~repro.cluster.worker.ShardCrashed`).

The :class:`FaultInjector` is a cursor over that plan.  The open-loop load
generator calls :meth:`FaultInjector.advance` at each dispatch-window
boundary; events that came due are applied in order:

* ``crash`` / ``slow`` / ``partition`` / ``heal`` go to the shard via
  ``worker.inject_fault`` (the coordinator notices a crash or partition on
  its next dispatch or :meth:`~repro.cluster.ClusterCoordinator.check_health`
  pass and fails the shard over — in-flight batches requeue to the new
  owners, never drop);
* ``rejoin`` goes to :meth:`~repro.cluster.ClusterCoordinator.rejoin_shard`,
  bringing a previously failed shard id back into the ring.

Faults targeting a shard that is not currently serving (already failed over,
or never existed) are recorded as skipped rather than raising: a crash racing
its own failover is normal chaos, not a plan bug.

**Process-level faults** (the durability release) kill whole processes, not
shards, and need a *supervisor* that owns the process lifecycle:

* ``coordinator-crash`` — SIGKILL the coordinator mid-stream; the supervisor
  (:class:`~repro.durability.CoordinatorSupervisor`) recovers a replacement
  from the write-ahead journal and the injector repoints itself (and tells
  its caller) at the new coordinator;
* ``gateway-crash`` — kill and restart the gateway process; the resilient
  client is expected to ride through via reconnect-and-resubmit.

They are applied by :meth:`FaultInjector.advance_process`, a *separate*
cursor the load generator calls **after** a window's submits and **before**
its dispatch — the interesting crash point, where admitted work is journaled
but not yet served.  Plans without a supervisor record process events as
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import FAULT_KINDS

__all__ = ["FAULT_EVENT_KINDS", "PROCESS_FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan"]

#: Process-level faults: these target the serving processes, not one shard,
#: and are applied by :meth:`FaultInjector.advance_process` via a supervisor.
PROCESS_FAULT_KINDS = ("coordinator-crash", "gateway-crash")

#: Everything a plan may schedule: the shard-level faults, ``rejoin``, and
#: the process-level kinds.
FAULT_EVENT_KINDS = FAULT_KINDS + ("rejoin",) + PROCESS_FAULT_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the simulated clock.

    Attributes:
        at: simulated seconds from run start.
        kind: one of :data:`FAULT_EVENT_KINDS`.
        shard: target shard id (for ``rejoin``, the id to bring back; empty
            for the process-level kinds, which target whole processes).
        seconds: ``slow`` only — added per-batch delay.
    """

    at: float
    kind: str
    shard: str = ""
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; use one of {FAULT_EVENT_KINDS}"
            )
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.seconds < 0:
            raise ValueError("slow seconds must be non-negative")
        if self.kind == "slow" and self.seconds == 0.0:
            raise ValueError("slow faults need seconds > 0")
        if self.kind not in PROCESS_FAULT_KINDS and not self.shard:
            raise ValueError(f"{self.kind!r} faults need a target shard")

    @property
    def is_process_fault(self) -> bool:
        return self.kind in PROCESS_FAULT_KINDS

    def as_row(self) -> dict[str, object]:
        return {"at": self.at, "kind": self.kind, "shard": self.shard, "seconds": self.seconds}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted fault schedule.

    Construct with events in any order; they are validated and replayed
    sorted by ``at`` (ties keep construction order, so a crash scheduled
    before a rejoin at the same instant applies first).
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda event: event.at)
        )
        object.__setattr__(self, "events", ordered)

    def due(self, start: float, end: float) -> list[FaultEvent]:
        """Events with ``start < at <= end`` — one load-generator window."""
        return [event for event in self.events if start < event.at <= end]

    @classmethod
    def kill_and_rejoin(
        cls, shard: str, *, kill_at: float, rejoin_at: float
    ) -> "FaultPlan":
        """The canonical chaos cycle: crash ``shard``, bring it back later."""
        if rejoin_at <= kill_at:
            raise ValueError("rejoin must come after the kill")
        return cls(
            events=(
                FaultEvent(at=kill_at, kind="crash", shard=shard),
                FaultEvent(at=rejoin_at, kind="rejoin", shard=shard),
            )
        )

    @classmethod
    def coordinator_crash(cls, *, at: float) -> "FaultPlan":
        """The canonical durability cycle: SIGKILL the coordinator once."""
        return cls(events=(FaultEvent(at=at, kind="coordinator-crash"),))


@dataclass
class AppliedFault:
    """One plan event after the injector processed it."""

    event: FaultEvent
    applied: bool
    note: str = ""

    def as_row(self) -> dict[str, object]:
        row = self.event.as_row()
        row["applied"] = self.applied
        row["note"] = self.note
        return row


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to a live coordinator as time advances.

    ``supervisor`` is any object with ``crash_coordinator()`` /
    ``crash_gateway()`` methods (duck-typed — see
    :class:`~repro.durability.CoordinatorSupervisor`); a non-``None`` return
    value replaces :attr:`coordinator`, and callers of
    :meth:`advance_process` must re-read it.
    """

    coordinator: ClusterCoordinator
    plan: FaultPlan
    supervisor: Any = None
    log: list[AppliedFault] = field(default_factory=list)
    _clock: float = field(default=0.0, repr=False)
    _process_clock: float = field(default=0.0, repr=False)

    def advance(self, now: float) -> list[AppliedFault]:
        """Apply every *shard-level* event due in ``(last_advance, now]``.

        Process-level events in the same interval are left for
        :meth:`advance_process` — the two cursors straddle a window's
        submit phase, so a coordinator crash always lands with freshly
        admitted (journaled, undispatched) work in the queues.
        """
        due = [e for e in self.plan.due(self._clock, now) if not e.is_process_fault]
        applied = [self._apply(event) for event in due]
        self._clock = max(self._clock, now)
        self.log.extend(applied)
        return applied

    def advance_process(self, now: float) -> list[AppliedFault]:
        """Apply every *process-level* event due in ``(last, now]``.

        Called after a window's submits, before its dispatch.  When a crash
        was applied, :attr:`coordinator` now points at the recovered
        replacement — the caller drives that from here on.
        """
        due = [e for e in self.plan.due(self._process_clock, now) if e.is_process_fault]
        applied = [self._apply(event) for event in due]
        self._process_clock = max(self._process_clock, now)
        self.log.extend(applied)
        return applied

    @property
    def exhausted(self) -> bool:
        """True once every plan event has been processed."""
        return len(self.log) >= len(self.plan.events)

    def _apply(self, event: FaultEvent) -> AppliedFault:
        coordinator = self.coordinator
        if event.is_process_fault:
            if self.supervisor is None:
                return AppliedFault(event, False, "no supervisor")
            hook = "crash_coordinator" if event.kind == "coordinator-crash" else "crash_gateway"
            crash = getattr(self.supervisor, hook, None)
            if crash is None:
                return AppliedFault(event, False, f"supervisor lacks {hook}()")
            replacement = crash()
            if replacement is not None:
                self.coordinator = replacement
            return AppliedFault(event, True)
        if event.kind == "rejoin":
            if event.shard in coordinator.workers:
                return AppliedFault(event, False, "already serving")
            coordinator.rejoin_shard(event.shard)
            return AppliedFault(event, True)
        worker = coordinator.workers.get(event.shard)
        if worker is None:
            return AppliedFault(event, False, "not serving")
        try:
            worker.inject_fault(event.kind, seconds=event.seconds)
        except (ConnectionError, OSError) as exc:
            # A fault aimed at an already-dead shard is chaos working as
            # intended; the health loop will reap it.
            return AppliedFault(event, False, f"unreachable: {exc}")
        return AppliedFault(event, True)

    def as_rows(self) -> list[dict[str, object]]:
        """The applied-fault log as a report table."""
        return [entry.as_row() for entry in self.log]
