"""The autoscaler: a deterministic policy loop over the cluster's own signals.

The autoscaler closes the elasticity loop: the coordinator exposes the
signals (admission-queue depth, per-dispatch latency) and the mechanism
(:meth:`~repro.cluster.ClusterCoordinator.add_shard` /
:meth:`~repro.cluster.ClusterCoordinator.remove_shard` with warm shm
handoff); the autoscaler is the policy that connects them.

It runs on **simulated time**, not a wall-clock thread: the open-loop load
generator calls :meth:`Autoscaler.evaluate` at every dispatch-window boundary
with the window's timestamp, after the window's arrivals are queued and
before they dispatch — so queue depth is measured at its per-window peak, and
the whole run (arrivals, scale events, rebalances) is reproducible from the
seed alone.  Three policies:

* ``fixed`` — converge on ``target_shards`` and hold (the control-loop
  equivalent of a static cluster, useful as an A/B baseline);
* ``queue-depth`` — scale up when mean queued-per-shard crosses
  ``scale_up_depth``, down when it falls under ``scale_down_depth``;
* ``slo`` — scale up when the observed p99 latency (fed via
  :meth:`Autoscaler.observe`) crosses ``target_p99``, down when it sits
  under half the target.

Every decision respects ``min_shards``/``max_shards``, the evaluation
interval, and a post-scale ``cooldown`` (rebalances are not free — scaling
again before the last handoff settles just thrashes the ring).  Scale-downs
remove the highest-numbered shard so repeated runs shrink identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.coordinator import ClusterCoordinator, ClusterReport
from repro.metrics import quantile as _quantile

__all__ = ["AUTOSCALER_POLICIES", "Autoscaler", "AutoscalerConfig", "ScaleEvent"]

#: The recognised scaling policies.
AUTOSCALER_POLICIES = ("fixed", "queue-depth", "slo")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Every knob of the policy loop (validated on construction).

    Attributes:
        policy: one of :data:`AUTOSCALER_POLICIES`.
        min_shards / max_shards: hard bounds on the shard set.
        evaluate_interval: simulated seconds between policy evaluations.
        cooldown: simulated seconds after a scale event before the next one.
        target_shards: the ``fixed`` policy's goal (defaults to ``min_shards``).
        scale_up_depth / scale_down_depth: the ``queue-depth`` policy's mean
            queued-per-shard thresholds.
        target_p99: the ``slo`` policy's latency goal in seconds (scale up
            above it, down under half of it).
        slo_window: how many recent dispatch reports the ``slo`` policy pools
            for its p99 estimate.
        scale_step: shards added or removed per event.
    """

    policy: str = "queue-depth"
    min_shards: int = 1
    max_shards: int = 8
    evaluate_interval: float = 0.1
    cooldown: float = 0.2
    target_shards: int | None = None
    scale_up_depth: float = 8.0
    scale_down_depth: float = 1.0
    target_p99: float = 0.25
    slo_window: int = 4
    scale_step: int = 1

    def __post_init__(self) -> None:
        if self.policy not in AUTOSCALER_POLICIES:
            raise ValueError(
                f"unknown autoscaler policy {self.policy!r}; use one of {AUTOSCALER_POLICIES}"
            )
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.evaluate_interval <= 0 or self.cooldown < 0:
            raise ValueError("evaluate_interval must be positive and cooldown non-negative")
        if self.scale_step < 1:
            raise ValueError("scale_step must be at least 1")
        if self.scale_down_depth > self.scale_up_depth:
            raise ValueError("scale_down_depth must not exceed scale_up_depth")
        if self.target_p99 <= 0:
            raise ValueError("target_p99 must be positive")
        if self.slo_window < 1:
            raise ValueError("slo_window must be at least 1")
        if self.target_shards is not None and not (
            self.min_shards <= self.target_shards <= self.max_shards
        ):
            raise ValueError("target_shards must lie within [min_shards, max_shards]")


@dataclass(frozen=True)
class ScaleEvent:
    """One applied scaling decision, with the rebalance cost it incurred.

    ``moved_fraction`` is the share of seen fingerprints whose placement the
    event moved (cold caches, unless the warm handoff carried them).
    """

    at: float
    direction: str  # "up" | "down"
    from_shards: int
    to_shards: int
    reason: str
    moved_fraction: float = 0.0

    def as_row(self) -> dict[str, object]:
        return {
            "at": self.at,
            "direction": self.direction,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "reason": self.reason,
            "moved_fraction": self.moved_fraction,
        }


class Autoscaler:
    """Drives ``add_shard``/``remove_shard`` on a live coordinator by policy.

    Args:
        coordinator: the cluster to scale (used live; never copied).
        config: the policy and its knobs.
        metrics: defaults to the coordinator's registry
            (``repro_cluster_autoscaler_*`` families).
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        config: AutoscalerConfig | None = None,
        metrics=None,
    ) -> None:
        self.coordinator = coordinator
        self.config = config if config is not None else AutoscalerConfig()
        self.metrics = metrics if metrics is not None else coordinator.metrics
        self.events: list[ScaleEvent] = []
        self._last_evaluated: float | None = None
        self._last_scaled: float | None = None
        self._recent_reports: list[ClusterReport] = []
        self._m_events = self.metrics.counter(
            "repro_cluster_autoscaler_events_total",
            "Scale events applied, by direction.",
            labels=("direction",),
        )
        self._m_shards = self.metrics.gauge(
            "repro_cluster_autoscaler_shards", "Current shard count under autoscaling."
        )
        self._m_shards.set(coordinator.shard_count)

    # -- signals ---------------------------------------------------------------

    def observe(self, report: ClusterReport) -> None:
        """Feed one dispatch report into the ``slo`` policy's latency window."""
        self._recent_reports.append(report)
        del self._recent_reports[: -self.config.slo_window]

    def _observed_p99(self) -> float:
        seconds: list[float] = []
        for report in self._recent_reports:
            seconds.extend(report.query_seconds)
        return _quantile(seconds, 0.99)

    def _desired_shards(self, current: int) -> tuple[int, str]:
        """The policy's raw target (pre-clamp) and the reason it would give."""
        config = self.config
        if config.policy == "fixed":
            target = config.target_shards if config.target_shards is not None else config.min_shards
            if target > current:
                return current + min(config.scale_step, target - current), "below fixed target"
            if target < current:
                return current - min(config.scale_step, current - target), "above fixed target"
            return current, ""
        if config.policy == "queue-depth":
            depth = self.coordinator.pending_count / current if current else 0.0
            if depth > config.scale_up_depth:
                return current + config.scale_step, f"mean queue depth {depth:.1f}"
            if depth < config.scale_down_depth:
                return current - config.scale_step, f"mean queue depth {depth:.1f}"
            return current, ""
        # slo policy
        if not self._recent_reports:
            return current, ""
        p99 = self._observed_p99()
        if p99 > config.target_p99:
            return current + config.scale_step, f"p99 {p99:.3f}s over target"
        if p99 < config.target_p99 / 2:
            return current - config.scale_step, f"p99 {p99:.3f}s under half target"
        return current, ""

    # -- the loop --------------------------------------------------------------

    def evaluate(self, now: float) -> ScaleEvent | None:
        """One policy evaluation at simulated time ``now``; applies at most one event.

        Returns the applied :class:`ScaleEvent`, or ``None`` when the policy
        held (interval not elapsed, cooling down, already at the bound, or
        simply satisfied).
        """
        config = self.config
        if (
            self._last_evaluated is not None
            and now - self._last_evaluated < config.evaluate_interval
        ):
            return None
        self._last_evaluated = now
        if self._last_scaled is not None and now - self._last_scaled < config.cooldown:
            return None
        current = self.coordinator.shard_count
        desired, reason = self._desired_shards(current)
        desired = max(config.min_shards, min(config.max_shards, desired))
        if desired == current:
            return None
        if desired > current:
            stats = None
            for _ in range(desired - current):
                stats = self.coordinator.add_shard()
            direction = "up"
        else:
            stats = None
            for _ in range(current - desired):
                # Highest-numbered shard goes first: deterministic shrink order.
                victim = max(
                    self.coordinator.shard_ids,
                    key=lambda shard_id: (len(shard_id), shard_id),
                )
                stats = self.coordinator.remove_shard(victim)
            direction = "down"
        event = ScaleEvent(
            at=now,
            direction=direction,
            from_shards=current,
            to_shards=desired,
            reason=reason,
            moved_fraction=stats.moved_fraction if stats is not None else 0.0,
        )
        self.events.append(event)
        self._last_scaled = now
        self._m_events.labels(direction=direction).inc()
        self._m_shards.set(desired)
        return event

    def as_rows(self) -> list[dict[str, object]]:
        """Every applied scale event as a report table."""
        return [event.as_row() for event in self.events]
