"""The elastic control plane: autoscaling, fault injection, and failover.

ROADMAP item 2's closing move.  The cluster tier already knows how to scale
(:meth:`~repro.cluster.ClusterCoordinator.add_shard` /
:meth:`~repro.cluster.ClusterCoordinator.remove_shard` with warm shm
handoff), replicate (``replication_factor`` + hot-key EWMA), and fail over
(:meth:`~repro.cluster.ClusterCoordinator.check_health` /
:meth:`~repro.cluster.ClusterCoordinator.fail_shard`); this package adds the
*drivers* that exercise those mechanisms:

* :mod:`repro.elastic.autoscaler` — a policy loop (``fixed`` /
  ``queue-depth`` / ``slo``) that watches admission-queue depth and the SLO
  latency signal and grows/shrinks the shard set on simulated time, with
  cooldown and min/max bounds;
* :mod:`repro.elastic.faults` — seeded :class:`FaultPlan` schedules (shard
  crash, slow shard, network partition, heal, rejoin) applied to a live
  coordinator by a :class:`FaultInjector`, on both the local and tcp
  transports (a tcp crash kills the real shard server process).

Both plug into :meth:`~repro.cluster.OpenLoopLoadGenerator.run` so a single
seeded open-loop run exercises scale events and a kill/rejoin cycle and then
proves ``lost_batches == 0`` in the SLO report — the correctness frame is the
HSUC crash-broadcast spec: a crash must be *observed* and its in-flight work
*re-owned*, never silently dropped.
"""

from repro.elastic.autoscaler import (
    AUTOSCALER_POLICIES,
    Autoscaler,
    AutoscalerConfig,
    ScaleEvent,
)
from repro.elastic.faults import (
    FAULT_EVENT_KINDS,
    PROCESS_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)

__all__ = [
    "AUTOSCALER_POLICIES",
    "Autoscaler",
    "AutoscalerConfig",
    "FAULT_EVENT_KINDS",
    "PROCESS_FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ScaleEvent",
]
