"""Workload generators: diverse routing request patterns as reusable objects.

The paper's guarantees are workload-oblivious — Theorem 1.1 bounds the query
cost for *every* load-``L`` instance — but the comparison against baselines
(experiments E1/E2, and the multi-backend comparison the serving layer runs)
only means something across heterogeneous request shapes: a random-walk
baseline that looks fine on a uniform permutation can collapse on a hot-spot
pattern, and naive shortest-path routing is exactly as good as the workload is
kind to it.

A :class:`Workload` bundles a named request pattern with the load bound it was
generated under, so the same instance can be replayed against every backend
(:mod:`repro.backends`), submitted to the serving layer, or validated in
isolation.  The catalog:

* ``permutation`` — one fixed-point-free permutation (load 1), the classic
  Task 1 instance;
* ``multi-token`` — ``L`` disjoint permutations (bounded load ``L > 1``);
* ``hotspot`` — skewed destinations: a small set of hot vertices receives
  ``L`` tokens each, the overflow spills round-robin over the cold vertices;
* ``broadcast`` — one root sends to ``fanout`` distinct destinations
  (source load ``fanout``);
* ``gather`` — ``fanout`` sources send to one root (destination load
  ``fanout``);
* ``adversarial-bipartite`` — every token crosses between the low-ID and
  high-ID halves of the vertex set, concentrating all traffic on the cut
  (worst case for shortest-path congestion, Fact 2.2's gap).

Every generator is deterministic given its parameters (seeded where
randomness is involved) and returns requests whose sources and destinations
lie in the graph's vertex set with per-vertex counts within the declared load
bound — :meth:`Workload.validate` checks exactly that and the property-based
tests enforce it.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

import networkx as nx

from repro.core.tokens import RoutingRequest

__all__ = [
    "Workload",
    "infer_load",
    "shifted_destination",
    "permutation_workload",
    "multi_token_workload",
    "hotspot_workload",
    "broadcast_workload",
    "gather_workload",
    "adversarial_bipartite_workload",
    "make_workload",
    "available_workloads",
    "WORKLOAD_GENERATORS",
]


def infer_load(requests: Sequence[RoutingRequest]) -> int:
    """The smallest load bound ``L`` the requests satisfy (>= 1)."""
    source_counts = Counter(request.source for request in requests)
    destination_counts = Counter(request.destination for request in requests)
    return max(
        max(source_counts.values(), default=1),
        max(destination_counts.values(), default=1),
    )


@dataclass(frozen=True)
class Workload:
    """A named, replayable routing instance.

    Attributes:
        name: the generator that produced it (a key of
            :data:`WORKLOAD_GENERATORS`).
        requests: the routing requests, in a deterministic order.
        load: the load bound ``L`` the requests were generated under.
        params: the generator parameters, for provenance and reporting.
    """

    name: str
    requests: tuple[RoutingRequest, ...]
    load: int
    params: Mapping[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def validate(self, graph: nx.Graph) -> list[str]:
        """Return the violated workload invariants (empty = valid for ``graph``)."""
        problems: list[str] = []
        vertices = set(graph.nodes())
        for request in self.requests:
            if request.source not in vertices:
                problems.append(f"source {request.source!r} outside the vertex set")
                break
        for request in self.requests:
            if request.destination not in vertices:
                problems.append(f"destination {request.destination!r} outside the vertex set")
                break
        actual = infer_load(self.requests)
        if actual > self.load:
            problems.append(f"observed load {actual} exceeds declared load {self.load}")
        return problems

    def as_row(self) -> dict[str, object]:
        return {"workload": self.name, "requests": len(self.requests), "load": self.load}


def shifted_destination(vertex: int, n: int, shift: int) -> int:
    """A fixed-point-free-ish permutation used by the routing workloads.

    ``v -> (3v + 7*shift) mod n`` is a bijection whenever ``gcd(3, n) = 1``;
    for multiples of 3 we fall back to a plain rotation.
    """
    if n % 3 == 0:
        return (vertex + 7 * shift + 1) % n
    return (3 * vertex + 7 * shift) % n


def _sorted_vertices(graph: nx.Graph) -> list:
    return sorted(graph.nodes())


def permutation_workload(graph: nx.Graph, shift: int = 1, seed: int | None = None) -> Workload:
    """One permutation of the vertices (load 1).

    With a ``seed``, the permutation is a seeded random shuffle; otherwise the
    deterministic :func:`shifted_destination` bijection with the given shift.
    """
    vertices = _sorted_vertices(graph)
    n = len(vertices)
    if seed is None:
        index_of = {vertex: index for index, vertex in enumerate(vertices)}
        destinations = [
            vertices[shifted_destination(index_of[vertex], n, shift)] for vertex in vertices
        ]
    else:
        destinations = list(vertices)
        random.Random(seed).shuffle(destinations)
    requests = tuple(
        RoutingRequest(source=source, destination=destination)
        for source, destination in zip(vertices, destinations)
    )
    return Workload(
        name="permutation", requests=requests, load=1, params={"shift": shift, "seed": seed}
    )


def multi_token_workload(graph: nx.Graph, load: int = 2) -> Workload:
    """``L`` disjoint permutations: every vertex sends and receives ``L`` tokens."""
    if load < 1:
        raise ValueError("load must be at least 1")
    vertices = _sorted_vertices(graph)
    n = len(vertices)
    index_of = {vertex: index for index, vertex in enumerate(vertices)}
    requests = tuple(
        RoutingRequest(
            source=vertex,
            destination=vertices[shifted_destination(index_of[vertex], n, shift)],
        )
        for shift in range(1, load + 1)
        for vertex in vertices
    )
    return Workload(name="multi-token", requests=requests, load=load, params={"load": load})


def hotspot_workload(
    graph: nx.Graph, load: int = 2, hot_fraction: float = 0.125, seed: int = 0
) -> Workload:
    """Skewed destinations: a few hot vertices soak up ``load`` tokens each.

    Every vertex sends exactly one token (source load 1).  The first
    ``ceil(hot_fraction * n)`` vertices of a seeded shuffle are "hot" and each
    receives exactly ``load`` tokens (as far as supply allows); the remaining
    tokens spill round-robin over the cold vertices, so no destination ever
    exceeds the load bound.
    """
    if load < 1:
        raise ValueError("load must be at least 1")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    vertices = _sorted_vertices(graph)
    n = len(vertices)
    shuffled = list(vertices)
    random.Random(seed).shuffle(shuffled)
    hot_count = min(max(1, math.ceil(hot_fraction * n)), n)
    hot, cold = shuffled[:hot_count], shuffled[hot_count:] or shuffled[:hot_count]
    destinations: list = []
    for vertex in hot:
        destinations.extend([vertex] * load)
    cold_index = 0
    while len(destinations) < n:
        destinations.append(cold[cold_index % len(cold)])
        cold_index += 1
    destinations = destinations[:n]
    requests = tuple(
        RoutingRequest(source=source, destination=destination)
        for source, destination in zip(vertices, destinations)
    )
    effective_load = infer_load(requests)
    return Workload(
        name="hotspot",
        requests=requests,
        load=max(load, effective_load),
        params={"load": load, "hot_fraction": hot_fraction, "seed": seed},
    )


def broadcast_workload(graph: nx.Graph, root: Hashable | None = None, fanout: int = 8) -> Workload:
    """One root sends one token to each of ``fanout`` distinct destinations."""
    vertices = _sorted_vertices(graph)
    if root is None:
        root = vertices[0]
    if root not in set(vertices):
        raise ValueError(f"root {root!r} is not a vertex of the graph")
    others = [vertex for vertex in vertices if vertex != root]
    fanout = max(1, min(fanout, len(others)))
    requests = tuple(
        RoutingRequest(source=root, destination=destination) for destination in others[:fanout]
    )
    return Workload(
        name="broadcast", requests=requests, load=fanout, params={"root": root, "fanout": fanout}
    )


def gather_workload(graph: nx.Graph, root: Hashable | None = None, fanout: int = 8) -> Workload:
    """``fanout`` distinct sources each send one token to the root."""
    vertices = _sorted_vertices(graph)
    if root is None:
        root = vertices[0]
    if root not in set(vertices):
        raise ValueError(f"root {root!r} is not a vertex of the graph")
    others = [vertex for vertex in vertices if vertex != root]
    fanout = max(1, min(fanout, len(others)))
    requests = tuple(
        RoutingRequest(source=source, destination=root) for source in others[:fanout]
    )
    return Workload(
        name="gather", requests=requests, load=fanout, params={"root": root, "fanout": fanout}
    )


def adversarial_bipartite_workload(graph: nx.Graph, seed: int = 0) -> Workload:
    """Every token crosses between the low-ID and high-ID halves (load 1).

    The pairing between the halves is a seeded shuffle, so the instance is a
    permutation in which *all* traffic concentrates on whatever edges separate
    the two halves — the congestion worst case for shortest-path baselines.
    """
    vertices = _sorted_vertices(graph)
    half = len(vertices) // 2
    low, high = vertices[:half], vertices[half:]
    rng = random.Random(seed)
    high_targets = list(high)
    rng.shuffle(high_targets)
    low_targets = list(low)
    rng.shuffle(low_targets)
    requests = [
        RoutingRequest(source=source, destination=destination)
        for source, destination in zip(low, high_targets)
    ]
    requests.extend(
        RoutingRequest(source=source, destination=destination)
        for source, destination in zip(high, low_targets)
    )
    # Odd vertex counts leave one high vertex unpaired as a source; it keeps
    # its token local (self-loop requests are legal and trivially delivered).
    if len(high) > len(low):
        leftover = high[len(low) :]
        requests.extend(
            RoutingRequest(source=vertex, destination=vertex) for vertex in leftover
        )
    return Workload(
        name="adversarial-bipartite",
        requests=tuple(requests),
        load=max(1, infer_load(requests)),
        params={"seed": seed},
    )


#: Registry of workload generators: name -> generator(graph, **params).
WORKLOAD_GENERATORS: dict[str, Callable[..., Workload]] = {
    "permutation": permutation_workload,
    "multi-token": multi_token_workload,
    "hotspot": hotspot_workload,
    "broadcast": broadcast_workload,
    "gather": gather_workload,
    "adversarial-bipartite": adversarial_bipartite_workload,
}


def available_workloads() -> list[str]:
    """The registered workload names, sorted."""
    return sorted(WORKLOAD_GENERATORS)


def make_workload(name: str, graph: nx.Graph, **params) -> Workload:
    """Generate the named workload on ``graph`` (see :data:`WORKLOAD_GENERATORS`)."""
    try:
        generator = WORKLOAD_GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None
    return generator(graph, **params)
