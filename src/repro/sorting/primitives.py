"""Primitives derived from expander sorting (Theorem 5.7, Lemma 5.8, Corollaries 5.9-5.10).

All four primitives run in ``O(T_sort(|X|, L))`` rounds by the paper's
reductions; the implementations below perform the same sort-scan-unsort
computations and charge the corresponding number of sort invocations.

* **Token ranking** (Theorem 5.7): every token learns the number of *distinct*
  keys strictly smaller than its own.
* **Local propagation** (Lemma 5.8): within every key group, the variable of
  the token with the smallest tag is copied to all tokens of the group.
* **Local serialization** (Corollary 5.9): tokens of each key group receive
  distinct serial numbers ``0 .. count-1``.
* **Local aggregation** (Corollary 5.10): every token learns the size of its
  key group.

Each function takes and returns *annotated tokens*; the physical placement of
tokens is unchanged (the paper's algorithms sort, annotate, and revert the
sort, which is why the cost is a constant number of sort invocations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from repro.sorting.expander_sort import SortItem, expander_sort

__all__ = [
    "AnnotatedToken",
    "PrimitiveResult",
    "token_ranking",
    "local_propagation",
    "local_serialization",
    "local_aggregation",
]


@dataclass
class AnnotatedToken:
    """A token with the annotations the primitives compute.

    Attributes:
        key: grouping key ``k_z``.
        tag: unique tie-breaking tag ``u_z``.
        variable: auxiliary variable ``v_z`` (used by local propagation).
        rank: distinct-key rank (token ranking).
        serial: within-group serial number (local serialization).
        count: group size (local aggregation).
        location: the vertex currently holding the token (informational).
    """

    key: Any
    tag: Any
    variable: Any = None
    rank: int | None = None
    serial: int | None = None
    count: int | None = None
    location: Hashable | None = None


@dataclass
class PrimitiveResult:
    """Annotated tokens plus the CONGEST round cost charged for the primitive."""

    tokens: list[AnnotatedToken]
    rounds: int


def _sort_cost(tokens: Sequence[AnnotatedToken], load: int, exchange_quality: int) -> int:
    """Round cost of one expander sort over the tokens' component.

    The component size is approximated by the number of distinct locations
    (callers that track the true component pass ``location`` on every token).
    """
    locations = {token.location for token in tokens if token.location is not None}
    vertex_count = max(len(locations), 1)
    vertex_order = sorted(locations, key=repr) if locations else [0]
    items_at = {vertex: [] for vertex in vertex_order}
    per_vertex: dict[Hashable, int] = {vertex: 0 for vertex in vertex_order}
    for index, token in enumerate(tokens):
        vertex = token.location if token.location is not None else vertex_order[index % vertex_count]
        items_at[vertex].append(SortItem(key=token.key, tag=(repr(token.tag), index)))
        per_vertex[vertex] += 1
    effective_load = max(load, max(per_vertex.values(), default=1), 1)
    result = expander_sort(
        vertex_order, items_at, effective_load, exchange_quality=exchange_quality, engine="oracle"
    )
    return result.rounds


def _grouped(tokens: Iterable[AnnotatedToken]) -> dict[Any, list[AnnotatedToken]]:
    groups: dict[Any, list[AnnotatedToken]] = {}
    for token in tokens:
        groups.setdefault(token.key, []).append(token)
    return groups


def token_ranking(
    tokens: Sequence[AnnotatedToken], load: int = 1, exchange_quality: int = 1
) -> PrimitiveResult:
    """Theorem 5.7: each token's ``rank`` = number of distinct keys below its own.

    Cost: two expander sorts (deduplication pass + ranking pass) as in the
    paper's reduction.
    """
    distinct_keys = sorted({token.key for token in tokens}, key=repr)
    # Keys may be heterogeneous; sort them by their natural order when
    # homogeneous, falling back to repr order otherwise.
    try:
        distinct_keys = sorted({token.key for token in tokens})
    except TypeError:
        pass
    rank_of_key = {key: rank for rank, key in enumerate(distinct_keys)}
    annotated = []
    for token in tokens:
        updated = AnnotatedToken(
            key=token.key,
            tag=token.tag,
            variable=token.variable,
            rank=rank_of_key[token.key],
            serial=token.serial,
            count=token.count,
            location=token.location,
        )
        annotated.append(updated)
    rounds = 2 * _sort_cost(tokens, load, exchange_quality)
    return PrimitiveResult(tokens=annotated, rounds=rounds)


def local_propagation(
    tokens: Sequence[AnnotatedToken], load: int = 1, exchange_quality: int = 1
) -> PrimitiveResult:
    """Lemma 5.8: within each key group, propagate the smallest-tag token's variable."""
    groups = _grouped(tokens)
    chosen_variable: dict[Any, Any] = {}
    for key, group in groups.items():
        leader = min(group, key=lambda token: repr(token.tag))
        chosen_variable[key] = leader.variable
    annotated = [
        AnnotatedToken(
            key=token.key,
            tag=token.tag,
            variable=chosen_variable[token.key],
            rank=token.rank,
            serial=token.serial,
            count=token.count,
            location=token.location,
        )
        for token in tokens
    ]
    rounds = 2 * _sort_cost(tokens, load, exchange_quality)
    return PrimitiveResult(tokens=annotated, rounds=rounds)


def local_serialization(
    tokens: Sequence[AnnotatedToken], load: int = 1, exchange_quality: int = 1
) -> PrimitiveResult:
    """Corollary 5.9: distinct serial numbers ``0..count-1`` within each key group.

    Serial numbers are assigned in increasing tag order, which makes the
    output deterministic and lets callers rely on the serial of a specific
    token (the routing engine does, when pairing real and dummy tokens).
    """
    groups = _grouped(tokens)
    serial_of: dict[tuple, int] = {}
    for key, group in groups.items():
        ordered = sorted(group, key=lambda token: repr(token.tag))
        for index, token in enumerate(ordered):
            serial_of[(repr(token.tag), repr(key))] = index
    annotated = [
        AnnotatedToken(
            key=token.key,
            tag=token.tag,
            variable=token.variable,
            rank=token.rank,
            serial=serial_of[(repr(token.tag), repr(token.key))],
            count=token.count,
            location=token.location,
        )
        for token in tokens
    ]
    rounds = 2 * _sort_cost(tokens, load, exchange_quality)
    return PrimitiveResult(tokens=annotated, rounds=rounds)


def local_aggregation(
    tokens: Sequence[AnnotatedToken], load: int = 1, exchange_quality: int = 1
) -> PrimitiveResult:
    """Corollary 5.10: every token learns the size of its key group."""
    groups = _grouped(tokens)
    annotated = [
        AnnotatedToken(
            key=token.key,
            tag=token.tag,
            variable=token.variable,
            rank=token.rank,
            serial=token.serial,
            count=len(groups[token.key]),
            location=token.location,
        )
        for token in tokens
    ]
    rounds = 2 * _sort_cost(tokens, load, exchange_quality) + _sort_cost(
        tokens, load, exchange_quality
    )
    return PrimitiveResult(tokens=annotated, rounds=rounds)
