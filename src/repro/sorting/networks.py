"""Comparator sorting networks (the AKS substitute).

The paper's leaf case (Section 6.4), the expander-sorting algorithm
(Theorem 5.6) and the sorting-to-routing reduction (Appendix F) all simulate a
precomputed sorting network ``I_AKS`` over the vertices of a component.  Only
two properties of the network matter for the algorithms:

* it is a fixed sequence of *layers*, each layer a set of disjoint comparators
  ``(i, j)`` with ``i < j``;
* after executing all layers, position ``i`` holds the ``i``-th smallest key.

The AKS network achieves ``O(log n)`` depth but with galactic constants; we
substitute **Batcher's odd-even mergesort** (depth ``O(log^2 n)``) and the
**bitonic sorter** (same depth, different constant), as documented in
DESIGN.md.  The extra ``log n`` factor is absorbed by the paper's
``polylog`` terms.

Layers are generated for any ``n`` by building the power-of-two network and
discarding comparators that touch positions ``>= n`` (the standard
"pad with +infinity" argument: such comparators never move a real key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "SortingNetwork",
    "batcher_odd_even_network",
    "bitonic_network",
    "insertion_network",
    "apply_network",
    "is_sorting_network",
]


@dataclass(frozen=True)
class SortingNetwork:
    """A comparator network: a list of layers of disjoint comparators.

    Attributes:
        size: the number of positions (wires) the network sorts.
        layers: each layer is a tuple of comparators ``(i, j)`` with ``i < j``;
            comparators within a layer touch disjoint positions and can be
            executed in parallel (one CONGEST "super-round" in the paper).
        name: which construction generated it (diagnostics / ablations).
    """

    size: int
    layers: tuple[tuple[tuple[int, int], ...], ...]
    name: str = "network"

    @property
    def depth(self) -> int:
        """Number of parallel layers."""
        return len(self.layers)

    @property
    def comparator_count(self) -> int:
        """Total number of comparators."""
        return sum(len(layer) for layer in self.layers)

    def comparators(self) -> Iterable[tuple[int, int]]:
        for layer in self.layers:
            yield from layer


def _layers_from_rounds(size: int, rounds: list[list[tuple[int, int]]], name: str) -> SortingNetwork:
    cleaned: list[tuple[tuple[int, int], ...]] = []
    for round_comparators in rounds:
        layer = tuple(
            (i, j)
            for i, j in round_comparators
            if i < size and j < size and i != j
        )
        if layer:
            cleaned.append(layer)
    return SortingNetwork(size=size, layers=tuple(cleaned), name=name)


def batcher_odd_even_network(size: int) -> SortingNetwork:
    """Batcher's odd-even mergesort network for ``size`` positions.

    Depth ``O(log^2 size)``; this is the default AKS substitute.
    """
    if size < 1:
        raise ValueError("network size must be at least 1")
    padded = 1
    while padded < size:
        padded *= 2

    rounds: list[list[tuple[int, int]]] = []
    p = 1
    while p < padded:
        k = p
        while k >= 1:
            layer: list[tuple[int, int]] = []
            for j in range(k % p, padded - k, 2 * k):
                for i in range(0, k):
                    low = i + j
                    high = i + j + k
                    if (low // (2 * p)) == (high // (2 * p)):
                        layer.append((low, high))
            if layer:
                rounds.append(layer)
            k //= 2
        p *= 2
    return _layers_from_rounds(size, rounds, name="batcher-odd-even")


def bitonic_network(size: int) -> SortingNetwork:
    """Normalized bitonic sorting network for ``size`` positions (ablation alternative).

    Uses the direction-free ("normalized") formulation in which every
    comparator is ascending: each stage starts with a mirror layer inside each
    block followed by the usual half-cleaner layers.  The result is verified
    with the 0-1 principle for small sizes; the construction is size-uniform,
    so correctness at small power-of-two sizes extends structurally.
    """
    if size < 1:
        raise ValueError("network size must be at least 1")
    padded = 1
    while padded < size:
        padded *= 2

    rounds: list[list[tuple[int, int]]] = []
    k = 2
    while k <= padded:
        # Mirror layer: within each block of size k, compare position p with
        # position k-1-p.  This replaces the descending comparators of the
        # textbook bitonic network.
        mirror_layer: list[tuple[int, int]] = []
        for block_start in range(0, padded, k):
            for p in range(k // 2):
                mirror_layer.append((block_start + p, block_start + k - 1 - p))
        rounds.append(mirror_layer)
        # Half-cleaner layers with shrinking stride.
        j = k // 4
        while j >= 1:
            layer: list[tuple[int, int]] = []
            for i in range(padded):
                if (i % (2 * j)) < j:
                    layer.append((i, i + j))
            rounds.append(layer)
            j //= 2
        k *= 2
    network = _layers_from_rounds(size, rounds, name="bitonic")
    if size <= 10 and not is_sorting_network(network, exhaustive_limit=10):
        # Defensive: never hand back an incorrect network for an ablation run.
        fallback = batcher_odd_even_network(size)
        return SortingNetwork(size=size, layers=fallback.layers, name="bitonic(batcher-fallback)")
    return network


def insertion_network(size: int) -> SortingNetwork:
    """The brick-wall (odd-even transposition) network: depth ``size``.

    Used as the "no clever network" ablation baseline and for tiny components.
    """
    if size < 1:
        raise ValueError("network size must be at least 1")
    rounds: list[list[tuple[int, int]]] = []
    for round_index in range(size):
        start = round_index % 2
        layer = [(i, i + 1) for i in range(start, size - 1, 2)]
        if layer:
            rounds.append(layer)
    return _layers_from_rounds(size, rounds, name="odd-even-transposition")


def apply_network(network: SortingNetwork, values: Sequence) -> list:
    """Apply the comparator network to a list of values and return the result."""
    if len(values) != network.size:
        raise ValueError(
            f"network sorts {network.size} positions but received {len(values)} values"
        )
    data = list(values)
    for layer in network.layers:
        for i, j in layer:
            if data[j] < data[i]:
                data[i], data[j] = data[j], data[i]
    return data


def is_sorting_network(network: SortingNetwork, exhaustive_limit: int = 10) -> bool:
    """Check the network sorts every input, via the 0-1 principle.

    For ``size <= exhaustive_limit`` all ``2^size`` binary inputs are tested
    (a network sorts all inputs iff it sorts all 0-1 inputs); for larger sizes
    a deterministic battery of structured inputs (reversed, rotations,
    interleavings) is used as a smoke test.
    """
    size = network.size
    if size <= 1:
        return True
    if size <= exhaustive_limit:
        for mask in range(1 << size):
            bits = [(mask >> position) & 1 for position in range(size)]
            if apply_network(network, bits) != sorted(bits):
                return False
        return True
    candidates = [
        list(range(size))[::-1],
        list(range(size)),
        [size - i if i % 2 == 0 else i for i in range(size)],
        [(i * 7919) % size for i in range(size)],
        [0] * (size // 2) + [1] * (size - size // 2),
        ([1, 0] * size)[:size],
    ]
    return all(apply_network(network, values) == sorted(values) for values in candidates)
