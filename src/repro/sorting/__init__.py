"""Sorting networks, distributed expander sorting, and derived primitives (Section 5.2)."""

from repro.sorting.expander_sort import (
    ComparatorSortEngine,
    ExpanderSortResult,
    OracleSortEngine,
    SortItem,
    SortPlacement,
    expander_sort,
    is_globally_sorted,
)
from repro.sorting.networks import (
    SortingNetwork,
    apply_network,
    batcher_odd_even_network,
    bitonic_network,
    insertion_network,
    is_sorting_network,
)
from repro.sorting.primitives import (
    AnnotatedToken,
    PrimitiveResult,
    local_aggregation,
    local_propagation,
    local_serialization,
    token_ranking,
)

__all__ = [
    "ComparatorSortEngine",
    "ExpanderSortResult",
    "OracleSortEngine",
    "SortItem",
    "SortPlacement",
    "expander_sort",
    "is_globally_sorted",
    "SortingNetwork",
    "apply_network",
    "batcher_odd_even_network",
    "bitonic_network",
    "insertion_network",
    "is_sorting_network",
    "AnnotatedToken",
    "PrimitiveResult",
    "local_aggregation",
    "local_propagation",
    "local_serialization",
    "token_ranking",
]
