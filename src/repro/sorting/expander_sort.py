"""Distributed expander sorting (Theorem 5.6).

The expander sorting problem (Appendix F's ``ExpanderSorting``): every vertex
holds at most ``L`` tokens, each token has a (not necessarily unique) key, and
the goal is to redistribute tokens so that reading per-vertex token lists in
increasing vertex-ID order yields non-decreasing keys, with every vertex still
holding at most ``L`` tokens.

The paper sorts by simulating a precomputed sorting network over the
component's vertices: each comparator ``(u, v)`` unites the ``<= L`` tokens of
``u`` and ``v`` on one vertex, sorts them locally, and returns the smaller
half to the lower-ID vertex (a *merge-split* step).  We implement exactly this
simulation (:class:`ComparatorSortEngine`), plus an *oracle engine* that
produces the same final placement directly and charges the same round cost —
used for large instances where simulating every comparator in Python is
wasteful (see DESIGN.md, substitution 3).

Round accounting (Theorem 5.6 / Lemma 6.5): simulating the network costs
``O(L * depth) * Q^2`` rounds where ``Q`` is the quality of the routes used to
realise comparator exchanges (for a leaf component, the quality of the
precomputed ``I_AKS`` embedding; higher up, the flattened hierarchy quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro.kernels import use_numpy
from repro.sorting.networks import SortingNetwork, batcher_odd_even_network

__all__ = [
    "SortItem",
    "SortPlacement",
    "ExpanderSortResult",
    "ComparatorSortEngine",
    "OracleSortEngine",
    "expander_sort",
    "is_globally_sorted",
]

#: Sentinel key sorting after every real key (the paper's "key = infinity" padding).
_INFINITY_KEY = (1, None)


def _comparable_key(key: Any) -> tuple:
    """Wrap keys so that heterogeneous keys and the infinity sentinel compare safely."""
    return (0, key)


@dataclass(frozen=True)
class SortItem:
    """One token participating in an expander sort.

    Attributes:
        key: the sort key.
        value: opaque payload carried along (e.g. the routing token id).
        tag: a tie-breaking tag; the engines sort by ``(key, tag)`` so results
            are deterministic and stable across engines.
    """

    key: Any
    value: Any = None
    tag: Any = 0


@dataclass
class SortPlacement:
    """Final placement: per-vertex token lists after sorting."""

    items_at: dict[Hashable, list[SortItem]] = field(default_factory=dict)

    def flattened(self, vertex_order: Sequence[Hashable]) -> list[SortItem]:
        result: list[SortItem] = []
        for vertex in vertex_order:
            result.extend(self.items_at.get(vertex, []))
        return result


@dataclass
class ExpanderSortResult:
    """Outcome of one expander sort.

    Attributes:
        placement: final per-vertex token lists (sorted order along vertex IDs).
        rounds: CONGEST rounds charged.
        network_depth: depth of the comparator network used.
        max_load: maximum number of tokens on any vertex at the end.
        comparator_exchanges: number of merge-split steps actually performed
            (0 for the oracle engine).
    """

    placement: SortPlacement
    rounds: int
    network_depth: int
    max_load: int
    comparator_exchanges: int = 0


def is_globally_sorted(
    placement: SortPlacement, vertex_order: Sequence[Hashable]
) -> bool:
    """Check the ExpanderSorting correctness condition of Appendix F."""
    previous = None
    for item in placement.flattened(vertex_order):
        current = _comparable_key(item.key)
        if previous is not None and current < previous:
            return False
        previous = current
    return True


class ComparatorSortEngine:
    """Sorts by genuinely simulating a comparator network over the vertices."""

    def __init__(self, network_factory: Callable[[int], SortingNetwork] | None = None) -> None:
        self.network_factory = network_factory or batcher_odd_even_network

    def sort(
        self,
        vertex_order: Sequence[Hashable],
        items_at: dict[Hashable, list[SortItem]],
        load: int,
        exchange_quality: int = 1,
    ) -> ExpanderSortResult:
        """Run the merge-split simulation and return the sorted placement.

        Dispatches to the batched layer-at-a-time kernel unless
        ``REPRO_KERNEL=reference``; placements are identical either way.
        """
        vertices = list(vertex_order)
        if not vertices:
            return ExpanderSortResult(SortPlacement(), 0, 0, 0)
        network = self.network_factory(len(vertices))
        if use_numpy():
            from repro.kernels.sortnet import comparator_sort_numpy

            return comparator_sort_numpy(
                vertices, items_at, load, exchange_quality, network
            )

        def sort_key(item: SortItem) -> tuple:
            return (_comparable_key(item.key), repr(item.tag))

        # Pad every vertex to exactly `load` slots with infinity sentinels so
        # the merge-split argument (and the 0-1 principle) applies.
        slots: dict[Hashable, list[SortItem]] = {}
        padded_load = max(load, max((len(v) for v in items_at.values()), default=0), 1)
        for vertex in vertices:
            local = sorted(items_at.get(vertex, []), key=sort_key)
            padding = [SortItem(key=None, value=None, tag="__pad__")] * (padded_load - len(local))
            slots[vertex] = local + padding

        def padded_key(item: SortItem) -> tuple:
            if item.tag == "__pad__":
                return (_INFINITY_KEY, "")
            return (_comparable_key(item.key), repr(item.tag))

        exchanges = 0
        for layer in network.layers:
            for low_index, high_index in layer:
                low_vertex, high_vertex = vertices[low_index], vertices[high_index]
                merged = sorted(slots[low_vertex] + slots[high_vertex], key=padded_key)
                slots[low_vertex] = merged[:padded_load]
                slots[high_vertex] = merged[padded_load:]
                exchanges += 1

        placement = SortPlacement(
            items_at={
                vertex: [item for item in slots[vertex] if item.tag != "__pad__"]
                for vertex in vertices
            }
        )
        max_load = max((len(v) for v in placement.items_at.values()), default=0)
        rounds = _sorting_round_cost(network.depth, padded_load, exchange_quality)
        return ExpanderSortResult(
            placement=placement,
            rounds=rounds,
            network_depth=network.depth,
            max_load=max_load,
            comparator_exchanges=exchanges,
        )


class OracleSortEngine:
    """Produces the sorted placement directly and charges the same round cost.

    The placement matches the comparator engine's: padding tokens carry an
    infinite key, so after the network runs all real tokens occupy the lowest
    slots in vertex-ID order, ``padded_load`` per vertex — i.e. real tokens are
    packed front-first.  The tests cross-check the two engines on small
    instances.
    """

    def __init__(self, network_factory: Callable[[int], SortingNetwork] | None = None) -> None:
        self.network_factory = network_factory or batcher_odd_even_network

    def sort(
        self,
        vertex_order: Sequence[Hashable],
        items_at: dict[Hashable, list[SortItem]],
        load: int,
        exchange_quality: int = 1,
    ) -> ExpanderSortResult:
        vertices = list(vertex_order)
        if not vertices:
            return ExpanderSortResult(SortPlacement(), 0, 0, 0)
        network = self.network_factory(len(vertices))

        def sort_key(item: SortItem) -> tuple:
            return (_comparable_key(item.key), repr(item.tag))

        all_items = sorted(
            (item for vertex in vertices for item in items_at.get(vertex, [])), key=sort_key
        )
        counts = [len(items_at.get(vertex, [])) for vertex in vertices]
        padded_load = max(load, max(counts, default=0), 1)
        placement = SortPlacement(items_at={})
        cursor = 0
        for vertex in vertices:
            placement.items_at[vertex] = all_items[cursor: cursor + padded_load]
            cursor += padded_load
        max_load = max((len(v) for v in placement.items_at.values()), default=0)
        rounds = _sorting_round_cost(network.depth, padded_load, exchange_quality)
        return ExpanderSortResult(
            placement=placement,
            rounds=rounds,
            network_depth=network.depth,
            max_load=max_load,
            comparator_exchanges=0,
        )


def _sorting_round_cost(depth: int, load: int, exchange_quality: int) -> int:
    """Theorem 5.6 / Lemma 6.5 accounting: ``O(L * depth) * Q^2`` rounds."""
    quality = max(1, exchange_quality)
    return max(1, 2 * load * depth) * quality * quality


def expander_sort(
    vertex_order: Sequence[Hashable],
    items_at: dict[Hashable, list[SortItem]],
    load: int,
    exchange_quality: int = 1,
    engine: str = "auto",
    comparator_threshold: int = 128,
) -> ExpanderSortResult:
    """Sort tokens across a component's vertices (Theorem 5.6 front door).

    Args:
        vertex_order: component vertices in increasing ID order.
        items_at: current token lists per vertex (missing vertices = empty).
        load: the maximum load ``L`` promised by the caller.
        exchange_quality: quality of the routes realising one comparator
            exchange (drives the round accounting).
        engine: ``"comparator"`` to force the full merge-split simulation,
            ``"oracle"`` to force the direct placement, ``"auto"`` to simulate
            when the instance is small enough to afford it.
        comparator_threshold: size cutoff for the auto engine.
    """
    wants_comparator = engine == "comparator" or (
        engine == "auto" and len(vertex_order) <= comparator_threshold
    )
    if wants_comparator:
        return ComparatorSortEngine().sort(vertex_order, items_at, load, exchange_quality)
    return OracleSortEngine().sort(vertex_order, items_at, load, exchange_quality)
