"""One shard of the cluster: a :class:`RoutingService` plus its own cache.

A shard worker is deliberately thin — all the serving machinery (fingerprint
memoization, artifact cache, parallel fan-out, batch reports) already lives
in :class:`~repro.service.RoutingService`; the worker gives one shard its own
isolated instance of it.  Isolation is the point: the coordinator's
consistent-hash ring sends every fingerprint to exactly one shard, so each
shard's :class:`~repro.service.ArtifactCache` holds only its own partition of
the artifact working set.  That is what makes the cluster scale — adding
shards multiplies effective cache capacity without any cross-shard
coordination (measured by ``benchmarks/bench_cluster.py``).

Execution knobs arrive as **one** :class:`~repro.planner.ExecutionPlan`: the
coordinator plans centrally (policy + cost model) and ships the plan inside
each :class:`ShardQuery`, and the worker's service shape (pool mode, width)
comes from a single default plan instead of the ``shard_parallelism`` /
``shard_max_workers`` pass-through pairs the pre-planner cluster re-forwarded
argument by argument.

:class:`ShardQuery` is the coordinator→worker wire format: a fingerprinted,
normalised routing instance that any shard could serve (the fingerprint is
computed once by the coordinator and must agree with the worker's own — both
derive from the same service parameters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import networkx as nx

from repro.core.router import PreprocessArtifact
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.metrics import MetricsRegistry, default_registry
from repro.planner import ExecutionPlan, QueryPlanner
from repro.service.cache import ArtifactCache
from repro.service.service import DEFAULT_BACKEND, BatchReport, RoutingService
from repro.service.shm import attach as shm_attach
from repro.service.shm import shm_available, shm_enabled

__all__ = ["FAULT_KINDS", "ShardCrashed", "ShardQuery", "ShardWorker", "WarmHandoff"]

#: Faults a shard can have injected (``heal`` clears ``slow``/``partition``).
FAULT_KINDS = ("crash", "slow", "partition", "heal")


class ShardCrashed(ConnectionError):
    """The shard has (simulated or real) crashed and cannot serve.

    A :class:`ConnectionError` subclass on purpose: the coordinator's failover
    path catches ``ConnectionError`` uniformly, so a local crashed worker and
    a killed remote shard server fail identically.
    """


@dataclass(frozen=True)
class WarmHandoff:
    """One warm artifact in flight between shards during a rebalance.

    Either ``segment`` names a shared-memory segment the adopter attaches
    zero-copy, or ``artifact`` carries the object directly (the fallback when
    the shm plane is disabled or unavailable).  Exactly one is set.
    """

    fingerprint: str
    segment: str | None = None
    artifact: PreprocessArtifact | None = None

    @property
    def path(self) -> str:
        """Which plane carries the bytes: ``"shm"`` or ``"direct"``."""
        return "shm" if self.segment is not None else "direct"


@dataclass(frozen=True)
class ShardQuery:
    """One routing instance in flight between the coordinator and a shard.

    Attributes:
        fingerprint: the placement key (canonical graph+backend fingerprint).
        graph: the graph to route on.
        requests: the normalised request tuple.
        load: explicit load bound (``None`` = infer).
        backend: registry name of the routing backend (mirrors
            ``plan.backend`` when a plan is attached).
        backend_params: extra backend factory parameters.
        workload: workload-shape label, for reporting.
        plan: the :class:`~repro.planner.ExecutionPlan` the coordinator chose
            (its ``shard_hint`` records the placement); the shard's service
            executes it verbatim.
        idempotency_key: the client-supplied (or coordinator-generated)
            exactly-once key; empty when the submission is untracked.  The
            durability journal dedups completions by this key, so a crash +
            resubmit never serves the same admitted batch twice.
    """

    fingerprint: str
    graph: nx.Graph
    requests: tuple[RoutingRequest, ...]
    load: int | None = None
    backend: str = DEFAULT_BACKEND
    backend_params: Mapping[str, Any] = field(default_factory=dict)
    workload: str = ""
    plan: ExecutionPlan | None = None
    idempotency_key: str = ""


class ShardWorker:
    """One shard: an isolated :class:`RoutingService` behind a stable id.

    Args:
        shard_id: the shard's identity on the ring.
        epsilon / psi / hierarchy_params: service tradeoff parameters — must
            match the coordinator's so fingerprints agree.
        cache_capacity: in-memory artifact slots for *this shard's* partition
            of the working set.
        disk_dir / disk_capacity: optional per-shard disk tier.
        default_plan: the execution defaults this shard's service takes its
            pool shape from (``parallelism``, ``max_workers``); per-query
            plans shipped in :class:`ShardQuery` override it query by query.
        planner: the cluster's shared :class:`~repro.planner.QueryPlanner`
            (if any) — attaching it feeds the shard's observed timings back
            into the shared cost model, which is what makes the cluster-wide
            ``adaptive`` policy converge.
        metrics: the registry shared across the cluster (per-shard series are
            labeled ``shard=<shard_id>``).
        service: inject a preconfigured service instead (tests).

    The shard's service keeps long-lived executors; :meth:`close` releases
    them (the coordinator closes every shard it owns).
    """

    def __init__(
        self,
        shard_id: str,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        cache_capacity: int = 8,
        disk_dir: str | None = None,
        disk_capacity: int | None = None,
        default_plan: ExecutionPlan | None = None,
        planner: QueryPlanner | None = None,
        metrics: MetricsRegistry | None = None,
        service: RoutingService | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.default_plan = default_plan
        self.metrics = metrics if metrics is not None else default_registry()
        if service is None:
            cache = ArtifactCache(
                capacity=cache_capacity,
                disk_dir=disk_dir,
                disk_capacity=disk_capacity,
                metrics=self.metrics,
            )
            service = RoutingService(
                epsilon=epsilon,
                psi=psi,
                hierarchy_params=hierarchy_params,
                cache=cache,
                max_workers=default_plan.max_workers if default_plan else None,
                parallelism=default_plan.parallelism if default_plan else "threads",
                planner=planner,
                metrics=self.metrics,
            )
        self.service = service
        self.batches_served = 0
        self.queries_served = 0
        self._closed = False
        self._crashed = False
        self._partitioned = False
        self._slow_seconds = 0.0
        self._m_queries = self.metrics.counter(
            "repro_cluster_queries_total", "Queries served per shard.", labels=("shard",)
        )
        self._m_seconds = self.metrics.histogram(
            "repro_cluster_query_seconds", "Per-query latency per shard.", labels=("shard",)
        )

    def process(self, items: Sequence[ShardQuery]) -> BatchReport:
        """Serve one scatter of queries as a single service batch."""
        if self._crashed:
            raise ShardCrashed(f"shard {self.shard_id} has crashed")
        if self._partitioned:
            raise ConnectionError(f"shard {self.shard_id} is partitioned from the coordinator")
        if self._slow_seconds > 0.0:
            time.sleep(self._slow_seconds)
        for item in items:
            self.service.submit(
                item.graph,
                item.requests,
                load=item.load,
                backend=item.backend if item.plan is None else None,
                backend_params=item.backend_params if item.plan is None else None,
                workload=item.workload,
                plan=item.plan,
            )
        report = self.service.route_batch()
        self.batches_served += 1
        self.queries_served += len(report.results)
        self._m_queries.labels(shard=self.shard_id).inc(len(report.results))
        for result in report.results:
            self._m_seconds.labels(shard=self.shard_id).observe(result.seconds)
        return report

    # -- warm-key handoff ------------------------------------------------------

    def warm_keys(self) -> list[str]:
        """Fingerprints this shard holds warm in memory (coldest first)."""
        return self.service.cache.fingerprints()

    def export_artifact(self, fingerprint: str) -> WarmHandoff | None:
        """Hand one warm artifact off for adoption elsewhere, or ``None``.

        Prefers the shared-memory plane (the adopter attaches the published
        segment zero-copy); when shm is disabled or publishing fails the
        handoff degrades to carrying the artifact object directly, which is
        still copy-free for the in-process local transport.
        """
        artifact = self.service.cache.peek(fingerprint)
        if artifact is None:
            return None
        if shm_enabled() and shm_available():
            info = self.service.publish_segment(fingerprint, artifact)
            if info is not None:
                return WarmHandoff(fingerprint=fingerprint, segment=info.name)
        return WarmHandoff(fingerprint=fingerprint, artifact=artifact)

    def adopt_artifact(self, handoff: WarmHandoff) -> bool:
        """Adopt a handoff into this shard's cache; ``True`` on success."""
        artifact = handoff.artifact
        if artifact is None and handoff.segment is not None:
            try:
                artifact = shm_attach(handoff.segment, metrics=self.metrics)
            except (FileNotFoundError, ValueError):
                artifact = None
        if artifact is None:
            return False
        self.service.cache.adopt(handoff.fingerprint, artifact)
        return True

    def close(self) -> None:
        """Release the shard service's worker pools; idempotent by design so
        server shutdown paths can call it unconditionally."""
        if self._closed:
            return
        self._closed = True
        self.service.close()

    # -- fault injection and health --------------------------------------------

    def inject_fault(self, kind: str, seconds: float = 0.0) -> None:
        """Apply one chaos fault to this shard (see :data:`FAULT_KINDS`).

        ``crash`` makes every subsequent :meth:`process` raise
        :class:`ShardCrashed` (fail-stop, like a dead process); ``partition``
        raises :class:`ConnectionError` instead (the shard is fine, the
        coordinator just cannot reach it); ``slow`` delays every batch by
        ``seconds``; ``heal`` clears ``slow`` and ``partition`` — a crash is
        permanent, the coordinator rejoins a *new* shard instead.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; use one of {FAULT_KINDS}")
        if kind == "crash":
            self._crashed = True
        elif kind == "slow":
            if seconds < 0:
                raise ValueError("slow fault seconds must be non-negative")
            self._slow_seconds = float(seconds)
        elif kind == "partition":
            self._partitioned = True
        else:  # heal
            self._partitioned = False
            self._slow_seconds = 0.0

    def healthy(self) -> bool:
        """Would a heartbeat succeed right now? (Crashed/partitioned = no.)"""
        return not (self._crashed or self._partitioned or self._closed)

    @property
    def cache_stats(self):
        """This shard's :class:`~repro.service.CacheStats`."""
        return self.service.cache.stats

    def as_row(self) -> dict[str, object]:
        stats = self.cache_stats
        return {
            "shard": self.shard_id,
            "batches": self.batches_served,
            "queries": self.queries_served,
            "cache_hit_rate": stats.hit_rate,
            "cache_evictions": stats.evictions,
        }
