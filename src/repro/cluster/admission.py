"""Bounded per-shard admission queues: overload degrades predictably.

An open-loop arrival stream does not slow down because the shards are busy —
that is what makes it open-loop — so the only defence against unbounded
backlog is admission control in front of each shard.  Every shard gets a
bounded FIFO; when an arrival finds the queue full, the configured policy
decides who pays:

* ``reject`` — the *new* arrival is refused (load-shedding at the door;
  admitted work is never wasted);
* ``shed-oldest`` — the *oldest* queued entry is dropped to admit the new one
  (freshness wins; a saturated queue serves the most recent traffic).

Both policies bound per-shard memory by ``capacity`` and keep the drop
accounting exact (:class:`AdmissionStats`), which the load generator turns
into the shed rate of its SLO report.  Decisions are recorded as
``repro_cluster_admission_total{shard,decision}`` when a metrics registry is
attached.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.metrics import MetricsRegistry

__all__ = ["AdmissionStats", "AdmissionDecision", "AdmissionController", "ADMISSION_POLICIES"]

#: The recognised overflow policies.
ADMISSION_POLICIES = ("reject", "shed-oldest")


@dataclass
class AdmissionStats:
    """Lifetime admission accounting, per shard or aggregated.

    Attributes:
        offered: arrivals presented to the queue.
        accepted: arrivals that entered the queue.
        rejected: arrivals refused at the door (``reject`` policy).
        shed: queued entries dropped to make room (``shed-oldest`` policy).
    """

    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0

    @property
    def dropped(self) -> int:
        """Work lost to overload, regardless of which policy dropped it."""
        return self.rejected + self.shed

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    def merge(self, other: "AdmissionStats") -> None:
        self.offered += other.offered
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.shed += other.shed

    def as_dict(self) -> dict[str, float]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "drop_rate": self.drop_rate,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of offering one item to a shard queue.

    Attributes:
        shard_id: the queue the item was offered to.
        accepted: whether the item is now queued.
        shed: items that were dropped from the queue to admit this one
            (non-empty only under ``shed-oldest``).
        duplicate: the submission's idempotency key was already pending or
            completed, so nothing was queued — the earlier admission stands
            (exactly-once: a duplicate is *not* a rejection of new work).
    """

    shard_id: str
    accepted: bool
    shed: tuple[Any, ...] = ()
    duplicate: bool = False


class AdmissionController:
    """Bounded FIFO queues, one per shard, with a shared capacity and policy.

    Args:
        capacity: maximum queued items per shard (``None`` = unbounded, for
            closed-loop callers that drain between batches).
        policy: overflow policy, one of :data:`ADMISSION_POLICIES`.
        metrics: optional registry for ``repro_cluster_admission_total`` and
            ``repro_cluster_queue_depth``.
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: str = "reject",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be at least 1 (or None for unbounded)")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; use one of {ADMISSION_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._lock = threading.Lock()
        self._queues: dict[str, deque] = {}
        self._stats: dict[str, AdmissionStats] = {}
        if metrics is not None:
            self._m_decisions = metrics.counter(
                "repro_cluster_admission_total",
                "Admission decisions per shard.",
                labels=("shard", "decision"),
            )
            self._m_depth = metrics.gauge(
                "repro_cluster_queue_depth", "Queued items per shard.", labels=("shard",)
            )
        else:
            self._m_decisions = self._m_depth = None

    def _record(self, shard_id: str, decision: str, amount: int = 1) -> None:
        if self._m_decisions is not None:
            self._m_decisions.labels(shard=shard_id, decision=decision).inc(amount)

    def _record_depth(self, shard_id: str, depth: int) -> None:
        if self._m_depth is not None:
            self._m_depth.labels(shard=shard_id).set(depth)

    # -- the queue protocol ----------------------------------------------------

    def offer(self, shard_id: str, item: Any) -> AdmissionDecision:
        """Offer ``item`` to ``shard_id``'s queue; returns what happened."""
        with self._lock:
            queue = self._queues.setdefault(shard_id, deque())
            stats = self._stats.setdefault(shard_id, AdmissionStats())
            stats.offered += 1
            shed: tuple[Any, ...] = ()
            if self.capacity is not None and len(queue) >= self.capacity:
                if self.policy == "reject":
                    stats.rejected += 1
                    self._record(shard_id, "rejected")
                    self._record_depth(shard_id, len(queue))
                    return AdmissionDecision(shard_id=shard_id, accepted=False)
                dropped = []
                while len(queue) >= self.capacity:
                    dropped.append(queue.popleft())
                stats.shed += len(dropped)
                self._record(shard_id, "shed", len(dropped))
                shed = tuple(dropped)
            queue.append(item)
            stats.accepted += 1
            self._record(shard_id, "accepted")
            self._record_depth(shard_id, len(queue))
            return AdmissionDecision(shard_id=shard_id, accepted=True, shed=shed)

    def requeue(self, shard_id: str, items: Sequence[Any]) -> None:
        """Put already-admitted items back at the head of ``shard_id``'s queue.

        Used when a shard is removed and its queued work moves to new owners:
        the items were admitted once, so this bypasses the offer accounting
        and the capacity policy (a rebalance may transiently overfill a
        queue rather than lose admitted work).
        """
        if not items:
            return
        with self._lock:
            queue = self._queues.setdefault(shard_id, deque())
            for item in reversed(items):
                queue.appendleft(item)
            self._record_depth(shard_id, len(queue))

    def drain(self, shard_id: str) -> list:
        """Remove and return everything queued for ``shard_id`` (FIFO order)."""
        with self._lock:
            queue = self._queues.get(shard_id)
            if not queue:
                return []
            items = list(queue)
            queue.clear()
            self._record_depth(shard_id, 0)
            return items

    def depth(self, shard_id: str) -> int:
        with self._lock:
            queue = self._queues.get(shard_id)
            return len(queue) if queue else 0

    def depths(self) -> dict[str, int]:
        with self._lock:
            return {shard_id: len(queue) for shard_id, queue in self._queues.items()}

    # -- accounting ------------------------------------------------------------

    def stats_for(self, shard_id: str) -> AdmissionStats:
        with self._lock:
            return self._stats.setdefault(shard_id, AdmissionStats())

    def stats_snapshot(self) -> dict[str, dict[str, int]]:
        """Per-shard lifetime stats as plain dicts (journal-checkpoint food)."""
        with self._lock:
            return {
                shard_id: {
                    "offered": stats.offered,
                    "accepted": stats.accepted,
                    "rejected": stats.rejected,
                    "shed": stats.shed,
                }
                for shard_id, stats in self._stats.items()
            }

    def restore_stats(self, snapshot: Mapping[str, Mapping[str, int]]) -> None:
        """Overwrite the lifetime stats from a :meth:`stats_snapshot` dict.

        Recovery uses this so a journal-rebuilt coordinator reports the same
        lifetime admission totals the crashed one did — the load generator's
        delta accounting then spans the crash seamlessly.
        """
        with self._lock:
            for shard_id, entry in snapshot.items():
                self._stats[shard_id] = AdmissionStats(
                    offered=int(entry.get("offered", 0)),
                    accepted=int(entry.get("accepted", 0)),
                    rejected=int(entry.get("rejected", 0)),
                    shed=int(entry.get("shed", 0)),
                )

    def total_stats(self) -> AdmissionStats:
        """Admission stats summed over every shard."""
        total = AdmissionStats()
        with self._lock:
            for stats in self._stats.values():
                total.merge(stats)
        return total
