"""The cluster front door: ring placement, admission, scatter/gather, merge.

:class:`ClusterCoordinator` is to the cluster what
:class:`~repro.service.RoutingService` is to one process:

1. **Place** — every submitted query is fingerprinted once (the same
   canonical key the per-shard caches use) and mapped to a shard by the
   :class:`~repro.cluster.ring.ConsistentHashRing`, so all traffic for one
   (graph, backend, parameters) key lands where its artifact lives.
2. **Admit** — the shard's bounded queue accepts, rejects, or sheds
   (:mod:`repro.cluster.admission`); overload degrades predictably instead of
   growing an unbounded backlog.
3. **Scatter/gather** — :meth:`ClusterCoordinator.dispatch` drains every
   queue, fans each shard's slice out to its worker concurrently, and merges
   the per-shard :class:`~repro.service.BatchReport` s into one
   :class:`ClusterReport`.
4. **Scale** — :meth:`add_shard` / :meth:`remove_shard` rebalance the ring
   and report how much artifact locality the change cost
   (:class:`~repro.cluster.ring.RebalanceStats` over every fingerprint the
   coordinator has seen).  Under the local transport, warm artifacts whose
   placement moved are handed to their new owners through the shared-memory
   plane (:mod:`repro.service.shm`) instead of being rebuilt — counted by
   ``repro_cluster_warm_handoffs_total``.

Placement, admission, and per-shard serving are all deterministic given the
same submissions and configuration — :meth:`ClusterReport.signature`
captures exactly the deterministic part (counts and rounds, not wall-clock),
which is what the cluster determinism tests compare.
"""

from __future__ import annotations

import shutil
import tempfile
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import networkx as nx

from repro.analysis.reporting import format_kv, format_table
from repro.cluster.admission import AdmissionController, AdmissionDecision, AdmissionStats
from repro.cluster.ring import ConsistentHashRing, RebalanceStats
from repro.cluster.worker import ShardQuery, ShardWorker
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.kernels import active_kernel
from repro.metrics import MetricsRegistry, default_registry
from repro.metrics import quantile as _quantile
from repro.planner import ExecutionPlan, QueryPlanner
from repro.service.cache import ArtifactCache
from repro.service.service import DEFAULT_BACKEND, BatchReport, RoutingService
from repro.workloads import Workload

__all__ = ["ClusterReport", "ClusterCoordinator", "TRANSPORTS"]

#: The recognised cluster transports: in-process shard workers, or shard
#: server processes behind the wire protocol (unix sockets by default).
TRANSPORTS = ("local", "tcp")


@dataclass
class ClusterReport:
    """One dispatch cycle's merged outcome across every shard.

    Attributes:
        shard_reports: per-shard :class:`BatchReport`, keyed by shard id
            (only shards that served queries this cycle appear).
        dispatch_seconds: wall-clock of the whole scatter/gather.
        admission: snapshot of the coordinator's lifetime admission totals at
            gather time (offered/accepted/rejected/shed).
    """

    shard_reports: dict[str, BatchReport] = field(default_factory=dict)
    dispatch_seconds: float = 0.0
    admission: AdmissionStats = field(default_factory=AdmissionStats)

    @property
    def query_count(self) -> int:
        return sum(report.query_count for report in self.shard_reports.values())

    @property
    def cache_hits(self) -> int:
        return sum(report.cache_hits for report in self.shard_reports.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.query_count
        return self.cache_hits / total if total else 0.0

    @property
    def preprocess_rounds_incurred(self) -> int:
        return sum(r.preprocess_rounds_incurred for r in self.shard_reports.values())

    @property
    def preprocess_rounds_reused(self) -> int:
        return sum(r.preprocess_rounds_reused for r in self.shard_reports.values())

    @property
    def total_query_rounds(self) -> int:
        return sum(r.total_query_rounds for r in self.shard_reports.values())

    @property
    def all_delivered(self) -> bool:
        return all(r.all_delivered for r in self.shard_reports.values())

    @property
    def plan_counts(self) -> dict[str, int]:
        """How many queries each full plan id served this cycle (sorted)."""
        counts: dict[str, int] = {}
        for report in self.shard_reports.values():
            for result in report.results:
                key = result.plan_id or "(no plan)"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def backend_counts(self) -> dict[str, int]:
        """How many queries each backend served this cycle (sorted)."""
        counts: dict[str, int] = {}
        for report in self.shard_reports.values():
            for result in report.results:
                counts[result.backend] = counts.get(result.backend, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def query_seconds(self) -> list[float]:
        """Every query's routing latency, grouped by shard id order."""
        seconds: list[float] = []
        for shard_id in sorted(self.shard_reports):
            seconds.extend(self.shard_reports[shard_id].query_seconds)
        return seconds

    def query_seconds_quantile(self, q: float) -> float:
        return _quantile(self.query_seconds, q)

    def signature(self) -> dict[str, dict[str, object]]:
        """The deterministic shape of the dispatch: per-shard counts, no clocks.

        Two coordinators with the same configuration and submissions produce
        identical signatures — the cluster determinism tests rely on it.
        """
        return {
            shard_id: {
                "queries": report.query_count,
                "distinct_graphs": report.distinct_graphs,
                "cache_hits": report.cache_hits,
                "delivered": sum(res.outcome.delivered for res in report.results),
                "total_query_rounds": report.total_query_rounds,
                "preprocess_rounds_incurred": report.preprocess_rounds_incurred,
                "preprocess_rounds_reused": report.preprocess_rounds_reused,
                # Semantic plan identities only: stable across kernels and
                # pool modes, like BatchReport.signature().
                "plans": sorted({res.plan_semantic_id for res in report.results}),
            }
            for shard_id, report in sorted(self.shard_reports.items())
        }

    def per_shard_rows(self) -> list[dict[str, object]]:
        rows = []
        for shard_id in sorted(self.shard_reports):
            report = self.shard_reports[shard_id]
            rows.append(
                {
                    "shard": shard_id,
                    "queries": report.query_count,
                    "cache_hit_rate": report.cache_hit_rate,
                    "preprocess_rounds_incurred": report.preprocess_rounds_incurred,
                    "query_rounds": report.total_query_rounds,
                    "p50_seconds": report.query_seconds_quantile(0.50),
                    "p99_seconds": report.query_seconds_quantile(0.99),
                }
            )
        return rows

    def summary(self) -> dict[str, object]:
        return {
            "shards": len(self.shard_reports),
            "queries": self.query_count,
            "distinct_plans": len(self.plan_counts),
            "cache_hit_rate": self.cache_hit_rate,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
            "total_query_rounds": self.total_query_rounds,
            "all_delivered": self.all_delivered,
            "p50_seconds": self.query_seconds_quantile(0.50),
            "p95_seconds": self.query_seconds_quantile(0.95),
            "p99_seconds": self.query_seconds_quantile(0.99),
            "dispatch_seconds": self.dispatch_seconds,
            "dropped": self.admission.dropped,
        }

    def render(self) -> str:
        parts = [format_kv(self.summary(), title="cluster")]
        if self.shard_reports:
            parts.append(format_table(self.per_shard_rows()))
        return "\n\n".join(parts)


class ClusterCoordinator:
    """Scatters fingerprinted queries over shard workers and merges the reports.

    Args:
        shard_count: initial number of shards (``shard-0`` .. ``shard-N-1``).
        epsilon / psi / hierarchy_params: service tradeoff parameters, shared
            by every shard (and by the coordinator's own fingerprinting).
        vnodes: virtual nodes per shard on the placement ring.
        cache_capacity: per-shard in-memory artifact slots.
        queue_capacity: per-shard admission queue bound (``None`` =
            unbounded).
        admission_policy: ``"reject"`` or ``"shed-oldest"``.
        default_plan: the cluster's execution defaults as **one**
            :class:`~repro.planner.ExecutionPlan` — pool mode and width for
            every shard service, and the template fixed submissions execute
            under.  The old per-argument ``shard_max_workers`` /
            ``shard_parallelism`` constructor plumbing is gone; only the
            deprecated read-only properties remain (one more release).
        policy: central planning policy — ``"fixed"`` (default) executes the
            default plan / explicit kwargs, ``"cost"`` / ``"adaptive"``
            attach a :class:`~repro.planner.QueryPlanner` whose cost model
            is shared cluster-wide (every shard's observed timings calibrate
            the same model).
        planner: inject a preconfigured planner instead (wins over
            ``policy``).
        metrics: shared registry (default: the process-wide one).
        transport: ``"local"`` (default) keeps every shard in process;
            ``"tcp"`` runs each shard as a spawned server process behind the
            wire protocol (:mod:`repro.net`) — placement, admission, and
            planning stay here, and :class:`ClusterReport.signature` is
            byte-identical across the two transports.  Note the ``adaptive``
            policy's timing feedback does not cross the process boundary.
        net_family: listener family for ``transport="tcp"`` — ``"unix"``
            (default, CI-safe) or ``"inet"`` (real TCP on loopback).

    Shard services keep long-lived worker pools (and, under
    ``transport="tcp"``, server processes); :meth:`close` (or using the
    coordinator as a context manager) releases all of them, idempotently.
    """

    def __init__(
        self,
        shard_count: int = 4,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        vnodes: int = 64,
        cache_capacity: int = 8,
        queue_capacity: int | None = None,
        admission_policy: str = "reject",
        default_plan: ExecutionPlan | None = None,
        policy: str | None = None,
        planner: QueryPlanner | None = None,
        metrics: MetricsRegistry | None = None,
        transport: str = "local",
        net_family: str = "unix",
    ) -> None:
        if shard_count < 1:
            raise ValueError("a cluster needs at least one shard")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; use one of {TRANSPORTS}")
        self.epsilon = epsilon
        self.psi = psi
        self.hierarchy_params = hierarchy_params
        self.cache_capacity = cache_capacity
        self.transport = transport
        self.net_family = net_family
        self._socket_dir: str | None = None
        self._closed = False
        self.metrics = metrics if metrics is not None else default_registry()
        if default_plan is None:
            default_plan = ExecutionPlan(
                backend=DEFAULT_BACKEND,
                kernel=active_kernel(),
                policy="fixed",
                reason="cluster execution defaults",
            )
        self.default_plan = default_plan
        if planner is None and policy is not None and policy != "fixed":
            planner = QueryPlanner(
                policy=policy,
                epsilon=epsilon,
                parallelism=default_plan.parallelism,
                max_workers=default_plan.max_workers,
                metrics=self.metrics,
            )
        self.planner = planner
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.admission = AdmissionController(
            capacity=queue_capacity, policy=admission_policy, metrics=self.metrics
        )
        self.workers: dict[str, ShardWorker] = {}
        self._next_shard_index = 0
        self._seen_fingerprints: set[str] = set()
        # The coordinator fingerprints with the same parameters the shard
        # services use, so placement keys and cache keys agree; its own cache
        # is never filled (placement never routes).
        self._keyer = RoutingService(
            epsilon=epsilon,
            psi=psi,
            hierarchy_params=hierarchy_params,
            cache=ArtifactCache(capacity=1),
            metrics=self.metrics,
        )
        self._m_dispatch_seconds = self.metrics.histogram(
            "repro_cluster_dispatch_seconds", "Wall-clock per scatter/gather cycle."
        )
        self._m_warm_handoffs = self.metrics.counter(
            "repro_cluster_warm_handoffs_total",
            "Warm artifacts migrated during rebalances, by carrier plane.",
            labels=("path",),
        )
        for _ in range(shard_count):
            self.add_shard()

    # -- membership -----------------------------------------------------------

    @property
    def shard_ids(self) -> list[str]:
        return self.ring.shard_ids

    @property
    def shard_count(self) -> int:
        return len(self.workers)

    def _make_worker(self, shard_id: str):
        """One shard for the configured transport: in-process or a server process."""
        if self.transport == "local":
            return ShardWorker(
                shard_id,
                epsilon=self.epsilon,
                psi=self.psi,
                hierarchy_params=self.hierarchy_params,
                cache_capacity=self.cache_capacity,
                default_plan=self.default_plan,
                planner=self.planner,
                metrics=self.metrics,
            )
        # Imported lazily: repro.net depends on this module.
        from repro.net.shard_server import ShardServerConfig, start_shard_server

        if self._socket_dir is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-net-")
        config = ShardServerConfig(
            shard_id=shard_id,
            family=self.net_family,
            socket_path=(
                f"{self._socket_dir}/{shard_id}.sock" if self.net_family == "unix" else None
            ),
            epsilon=self.epsilon,
            psi=self.psi,
            hierarchy_params=self.hierarchy_params,
            cache_capacity=self.cache_capacity,
            default_plan=self.default_plan,
        )
        return start_shard_server(config, metrics=self.metrics)

    def add_shard(self, shard_id: str | None = None) -> RebalanceStats:
        """Add a shard (and its worker); returns how placement moved.

        The rebalance stats are measured over every fingerprint the
        coordinator has seen — the moved fraction is the share of known
        artifacts whose cache locality the scale-up cost.
        """
        if shard_id is None:
            shard_id = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        seen = sorted(self._seen_fingerprints)
        before = self.ring.placement(seen) if len(self.ring) else {}
        before_count = len(self.ring)
        self.ring.add_shard(shard_id)
        self.workers[shard_id] = self._make_worker(shard_id)
        self._migrate_warm(before)
        moved = sum(1 for key in seen if self.ring.assign(key) != before.get(key))
        expected = 1.0 / len(self.ring) if before_count else 1.0
        return RebalanceStats(total=len(seen), moved=moved, expected_fraction=expected)

    def remove_shard(self, shard_id: str) -> RebalanceStats:
        """Drop a shard; queued work is requeued on its new owners.

        Stranded items were already admitted, so they move via
        :meth:`~repro.cluster.admission.AdmissionController.requeue` — no
        second admission decision, no loss even if the new owner's queue is
        momentarily over capacity.
        """
        if len(self.workers) <= 1:
            raise ValueError("cannot remove the last shard")
        seen = sorted(self._seen_fingerprints)
        before = self.ring.placement(seen)
        stranded = self.admission.drain(shard_id)
        self.ring.remove_shard(shard_id)
        departing = self.workers.pop(shard_id)
        # The departing shard's warm artifacts migrate to their new owners
        # (shm plane when available) before its pools and segments go away.
        self._migrate_warm(before, departed={shard_id: departing})
        departing.close()
        by_owner: dict[str, list[ShardQuery]] = {}
        for item in stranded:
            owner = self.ring.assign(item.fingerprint)
            if item.plan is not None and item.plan.shard_hint != owner:
                item = replace(item, plan=item.plan.with_shard(owner))
            by_owner.setdefault(owner, []).append(item)
        for owner, items in by_owner.items():
            self.admission.requeue(owner, items)
        moved = sum(1 for key in seen if self.ring.assign(key) != before.get(key))
        return RebalanceStats(
            total=len(seen), moved=moved, expected_fraction=1.0 / (len(self.ring) + 1)
        )

    def _migrate_warm(
        self,
        before: Mapping[str, str],
        departed: Mapping[str, ShardWorker] | None = None,
    ) -> int:
        """Hand warm artifacts whose placement moved to their new owners.

        ``before`` maps each seen fingerprint to its pre-rebalance shard;
        ``departed`` supplies workers already removed from :attr:`workers`
        (still open, about to close).  Shard-server proxies under the tcp
        transport expose no handoff API, so those pairs are skipped — the
        artifact is simply rebuilt on first use, exactly as before.  Returns
        how many artifacts migrated.
        """
        migrated = 0
        for fingerprint, old_owner in before.items():
            new_owner = self.ring.assign(fingerprint)
            if new_owner == old_owner:
                continue
            source = (departed or {}).get(old_owner) or self.workers.get(old_owner)
            target = self.workers.get(new_owner)
            if not hasattr(source, "export_artifact") or not hasattr(target, "adopt_artifact"):
                continue
            handoff = source.export_artifact(fingerprint)
            if handoff is None:
                continue
            if target.adopt_artifact(handoff):
                self._m_warm_handoffs.labels(path=handoff.path).inc()
                migrated += 1
        return migrated

    # -- compat shims ----------------------------------------------------------

    @property
    def shard_parallelism(self) -> str:
        """Deprecated view of :attr:`default_plan`'s execution mode."""
        warnings.warn(
            "ClusterCoordinator.shard_parallelism is deprecated; read "
            "default_plan.parallelism instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.default_plan.parallelism

    @property
    def shard_max_workers(self) -> int | None:
        """Deprecated view of :attr:`default_plan`'s pool width."""
        warnings.warn(
            "ClusterCoordinator.shard_max_workers is deprecated; read "
            "default_plan.max_workers instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.default_plan.max_workers

    # -- submission -----------------------------------------------------------

    def fingerprint(
        self,
        graph: nx.Graph,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
    ) -> str:
        """The placement (and cache) key for ``graph`` under ``backend``."""
        return self._keyer.fingerprint(graph, backend=backend, backend_params=backend_params)

    def plan(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ) -> ExecutionPlan:
        """The execution plan one submission would ship (placement hint unset).

        Central planning: with a planner attached the policy decides (an
        explicitly named backend still pins a fixed plan); otherwise the
        cluster's :attr:`default_plan` is specialised with the caller's
        backend kwargs.
        """
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        if self.planner is not None:
            return self.planner.plan(
                self._keyer.graph_key(graph),
                graph.number_of_nodes(),
                request_count=len(requests),
                load=load,
                workload=workload,
                backend=backend,
                backend_params=backend_params,
            )
        if backend is None and backend_params is None:
            # The template verbatim — including its configured backend_params.
            return replace(self.default_plan, reason="cluster default plan")
        if backend is None:
            # Params override on the default backend; the template's own
            # params still back-fill anything the caller left unset.
            params = {**dict(self.default_plan.backend_params), **dict(backend_params)}
            return replace(
                self.default_plan,
                backend_params=params,
                reason="cluster default plan with caller params",
            )
        # A pinned backend never inherits the template's params — they are
        # specific to the template's backend.
        return replace(
            self.default_plan,
            backend=backend,
            backend_params=dict(backend_params or {}),
            reason=f"caller pinned backend={backend}",
        )

    def explain(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ):
        """The planner's EXPLAIN report for this submission (needs a planner)."""
        if self.planner is None:
            raise RuntimeError("explain() requires a cluster planner (policy=...)")
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        return self.planner.explain(
            self._keyer.graph_key(graph),
            graph.number_of_nodes(),
            request_count=len(requests),
            load=load,
            workload=workload,
            backend=backend,
            backend_params=backend_params,
        )

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ) -> AdmissionDecision:
        """Plan, fingerprint, place, and offer one query; returns the admission outcome."""
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        requests = tuple(requests)
        plan = self.plan(
            graph,
            requests,
            load=load,
            backend=backend,
            backend_params=backend_params,
            workload=workload,
        )
        fingerprint = self.fingerprint(
            graph, backend=plan.backend, backend_params=plan.backend_params
        )
        self._seen_fingerprints.add(fingerprint)
        shard_id = self.ring.assign(fingerprint)
        item = ShardQuery(
            fingerprint=fingerprint,
            graph=graph,
            requests=requests,
            load=load,
            backend=plan.backend,
            backend_params=dict(plan.backend_params),
            workload=workload,
            plan=plan.with_shard(shard_id),
        )
        return self.admission.offer(shard_id, item)

    def queue_depths(self) -> dict[str, int]:
        return {shard_id: self.admission.depth(shard_id) for shard_id in self.workers}

    @property
    def pending_count(self) -> int:
        return sum(self.queue_depths().values())

    def admission_totals(self) -> AdmissionStats:
        """Cluster-lifetime admission totals (the client exposes the same call)."""
        return self.admission.total_stats()

    # -- execution ------------------------------------------------------------

    def drain_slices(self) -> dict[str, list[ShardQuery]]:
        """Drain every queue; the busy shards' slices, in shard-id order."""
        slices = {shard_id: self.admission.drain(shard_id) for shard_id in sorted(self.workers)}
        return {shard_id: items for shard_id, items in slices.items() if items}

    def process_shard(self, shard_id: str, items: Sequence[ShardQuery]) -> BatchReport:
        """Serve one shard's slice on its worker (local or remote)."""
        return self.workers[shard_id].process(items)

    def merge_reports(
        self, shard_reports: Mapping[str, BatchReport], dispatch_seconds: float
    ) -> ClusterReport:
        """Merge per-shard reports into one cycle report (records the histogram)."""
        report = ClusterReport(
            shard_reports=dict(shard_reports),
            dispatch_seconds=dispatch_seconds,
            admission=self.admission.total_stats(),
        )
        self._m_dispatch_seconds.observe(dispatch_seconds)
        return report

    def dispatch(self) -> ClusterReport:
        """Drain every queue, scatter to the shard workers, gather, merge.

        The gateway composes the same three steps (:meth:`drain_slices`,
        :meth:`process_shard`, :meth:`merge_reports`) so it can stream each
        shard's report as it completes instead of gathering here.
        """
        started = time.perf_counter()
        busy = self.drain_slices()
        shard_reports: dict[str, BatchReport] = {}
        if busy:
            with ThreadPoolExecutor(max_workers=len(busy)) as pool:
                futures = {
                    shard_id: pool.submit(self.process_shard, shard_id, items)
                    for shard_id, items in busy.items()
                }
                for shard_id, future in futures.items():
                    shard_reports[shard_id] = future.result()
        return self.merge_reports(shard_reports, time.perf_counter() - started)

    def route_batch(
        self,
        graph: nx.Graph,
        workloads: Sequence[Workload | Sequence[RoutingRequest]],
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
    ) -> ClusterReport:
        """Submit every workload and dispatch once (drops are reflected in the report)."""
        for workload in workloads:
            self.submit(graph, workload, backend=backend, backend_params=backend_params)
        return self.dispatch()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every shard (pools or server processes) and the keyer; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers.values():
            worker.close()
        self._keyer.close()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)
            self._socket_dir = None

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    # -- reporting ------------------------------------------------------------

    def shard_rows(self) -> list[dict[str, object]]:
        """Lifetime per-shard serving and cache stats (for operators' tables)."""
        rows = []
        for shard_id in sorted(self.workers):
            worker = self.workers[shard_id]
            row = worker.as_row()
            row["queue_depth"] = self.admission.depth(shard_id)
            rows.append(row)
        return rows
