"""The cluster front door: ring placement, admission, scatter/gather, merge.

:class:`ClusterCoordinator` is to the cluster what
:class:`~repro.service.RoutingService` is to one process:

1. **Place** — every submitted query is fingerprinted once (the same
   canonical key the per-shard caches use) and mapped to a shard by the
   :class:`~repro.cluster.ring.ConsistentHashRing`, so all traffic for one
   (graph, backend, parameters) key lands where its artifact lives.
2. **Admit** — the shard's bounded queue accepts, rejects, or sheds
   (:mod:`repro.cluster.admission`); overload degrades predictably instead of
   growing an unbounded backlog.
3. **Scatter/gather** — :meth:`ClusterCoordinator.dispatch` drains every
   queue, fans each shard's slice out to its worker concurrently, and merges
   the per-shard :class:`~repro.service.BatchReport` s into one
   :class:`ClusterReport`.
4. **Scale** — :meth:`add_shard` / :meth:`remove_shard` rebalance the ring
   and report how much artifact locality the change cost
   (:class:`~repro.cluster.ring.RebalanceStats` over every fingerprint the
   coordinator has seen).  Under the local transport, warm artifacts whose
   placement moved are handed to their new owners through the shared-memory
   plane (:mod:`repro.service.shm`) instead of being rebuilt — counted by
   ``repro_cluster_warm_handoffs_total``.

Placement, admission, and per-shard serving are all deterministic given the
same submissions and configuration — :meth:`ClusterReport.signature`
captures exactly the deterministic part (counts and rounds, not wall-clock),
which is what the cluster determinism tests compare.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import networkx as nx

from repro.analysis.reporting import format_kv, format_table
from repro.cluster.admission import AdmissionController, AdmissionDecision, AdmissionStats
from repro.cluster.ring import ConsistentHashRing, RebalanceStats
from repro.cluster.worker import ShardQuery, ShardWorker
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.kernels import active_kernel
from repro.metrics import MetricsRegistry, default_registry
from repro.metrics import quantile as _quantile
from repro.planner import ExecutionPlan, QueryPlanner
from repro.service.cache import ArtifactCache
from repro.service.service import DEFAULT_BACKEND, BatchReport, RoutingService
from repro.workloads import Workload

if TYPE_CHECKING:  # deferred: repro.durability imports this module
    from repro.durability.journal import CoordinatorJournal

__all__ = ["ClusterReport", "ClusterCoordinator", "TRANSPORTS", "merge_batch_reports"]


def merge_batch_reports(reports: Sequence[BatchReport]) -> BatchReport:
    """Fold one shard's reports from successive cycles into one report."""
    if len(reports) == 1:
        return reports[0]
    merged = BatchReport()
    for report in reports:
        merged.results.extend(report.results)
        merged.distinct_graphs += report.distinct_graphs
        merged.cache_hits += report.cache_hits
        merged.cache_misses += report.cache_misses
        merged.preprocess_rounds_incurred += report.preprocess_rounds_incurred
        merged.preprocess_rounds_reused += report.preprocess_rounds_reused
        merged.preprocess_seconds += report.preprocess_seconds
        merged.route_seconds += report.route_seconds
        merged.wall_seconds += report.wall_seconds
    return merged

#: The recognised cluster transports: in-process shard workers, or shard
#: server processes behind the wire protocol (unix sockets by default).
TRANSPORTS = ("local", "tcp")


@dataclass
class ClusterReport:
    """One dispatch cycle's merged outcome across every shard.

    Attributes:
        shard_reports: per-shard :class:`BatchReport`, keyed by shard id
            (only shards that served queries this cycle appear).
        dispatch_seconds: wall-clock of the whole scatter/gather.
        admission: snapshot of the coordinator's lifetime admission totals at
            gather time (offered/accepted/rejected/shed).
        lost_batches: snapshot of the coordinator's lifetime count of admitted
            batches that vanished (a shard died with no surviving shard to
            re-own its work) — the number every failover test pins at zero.
        requeued_batches: snapshot of the lifetime count of admitted batches
            re-owned by another shard (planned rebalances and failovers).
    """

    shard_reports: dict[str, BatchReport] = field(default_factory=dict)
    dispatch_seconds: float = 0.0
    admission: AdmissionStats = field(default_factory=AdmissionStats)
    lost_batches: int = 0
    requeued_batches: int = 0

    @property
    def query_count(self) -> int:
        return sum(report.query_count for report in self.shard_reports.values())

    @property
    def cache_hits(self) -> int:
        return sum(report.cache_hits for report in self.shard_reports.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.query_count
        return self.cache_hits / total if total else 0.0

    @property
    def preprocess_rounds_incurred(self) -> int:
        return sum(r.preprocess_rounds_incurred for r in self.shard_reports.values())

    @property
    def preprocess_rounds_reused(self) -> int:
        return sum(r.preprocess_rounds_reused for r in self.shard_reports.values())

    @property
    def total_query_rounds(self) -> int:
        return sum(r.total_query_rounds for r in self.shard_reports.values())

    @property
    def all_delivered(self) -> bool:
        return all(r.all_delivered for r in self.shard_reports.values())

    @property
    def plan_counts(self) -> dict[str, int]:
        """How many queries each full plan id served this cycle (sorted)."""
        counts: dict[str, int] = {}
        for report in self.shard_reports.values():
            for result in report.results:
                key = result.plan_id or "(no plan)"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def backend_counts(self) -> dict[str, int]:
        """How many queries each backend served this cycle (sorted)."""
        counts: dict[str, int] = {}
        for report in self.shard_reports.values():
            for result in report.results:
                counts[result.backend] = counts.get(result.backend, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def query_seconds(self) -> list[float]:
        """Every query's routing latency, grouped by shard id order."""
        seconds: list[float] = []
        for shard_id in sorted(self.shard_reports):
            seconds.extend(self.shard_reports[shard_id].query_seconds)
        return seconds

    def query_seconds_quantile(self, q: float) -> float:
        return _quantile(self.query_seconds, q)

    @classmethod
    def merged(cls, reports: Sequence["ClusterReport"]) -> "ClusterReport":
        """Fold many window reports into one run-level report.

        Per-shard batch reports concatenate across windows, so
        ``merged(run_a).signature() == merged(run_b).signature()`` compares
        two whole runs — the crash-recovery parity check uses exactly this.
        """
        by_shard: dict[str, list[BatchReport]] = {}
        for report in reports:
            for shard_id, shard_report in report.shard_reports.items():
                by_shard.setdefault(shard_id, []).append(shard_report)
        merged = cls(
            shard_reports={
                shard_id: merge_batch_reports(shard_reports)
                for shard_id, shard_reports in by_shard.items()
            },
            dispatch_seconds=sum(report.dispatch_seconds for report in reports),
        )
        if reports:
            merged.admission = reports[-1].admission
            merged.lost_batches = reports[-1].lost_batches
            merged.requeued_batches = reports[-1].requeued_batches
        return merged

    def signature(self) -> dict[str, dict[str, object]]:
        """The deterministic shape of the dispatch: per-shard counts, no clocks.

        Two coordinators with the same configuration and submissions produce
        identical signatures — the cluster determinism tests rely on it.
        """
        return {
            shard_id: {
                "queries": report.query_count,
                "distinct_graphs": report.distinct_graphs,
                "cache_hits": report.cache_hits,
                "delivered": sum(res.outcome.delivered for res in report.results),
                "total_query_rounds": report.total_query_rounds,
                "preprocess_rounds_incurred": report.preprocess_rounds_incurred,
                "preprocess_rounds_reused": report.preprocess_rounds_reused,
                # Semantic plan identities only: stable across kernels and
                # pool modes, like BatchReport.signature().
                "plans": sorted({res.plan_semantic_id for res in report.results}),
            }
            for shard_id, report in sorted(self.shard_reports.items())
        }

    def per_shard_rows(self) -> list[dict[str, object]]:
        rows = []
        for shard_id in sorted(self.shard_reports):
            report = self.shard_reports[shard_id]
            rows.append(
                {
                    "shard": shard_id,
                    "queries": report.query_count,
                    "cache_hit_rate": report.cache_hit_rate,
                    "preprocess_rounds_incurred": report.preprocess_rounds_incurred,
                    "query_rounds": report.total_query_rounds,
                    "p50_seconds": report.query_seconds_quantile(0.50),
                    "p99_seconds": report.query_seconds_quantile(0.99),
                }
            )
        return rows

    def summary(self) -> dict[str, object]:
        return {
            "shards": len(self.shard_reports),
            "queries": self.query_count,
            "distinct_plans": len(self.plan_counts),
            "cache_hit_rate": self.cache_hit_rate,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
            "total_query_rounds": self.total_query_rounds,
            "all_delivered": self.all_delivered,
            "p50_seconds": self.query_seconds_quantile(0.50),
            "p95_seconds": self.query_seconds_quantile(0.95),
            "p99_seconds": self.query_seconds_quantile(0.99),
            "dispatch_seconds": self.dispatch_seconds,
            "dropped": self.admission.dropped,
            "lost_batches": self.lost_batches,
            "requeued_batches": self.requeued_batches,
        }

    def render(self) -> str:
        parts = [format_kv(self.summary(), title="cluster")]
        if self.shard_reports:
            parts.append(format_table(self.per_shard_rows()))
        return "\n\n".join(parts)


class ClusterCoordinator:
    """Scatters fingerprinted queries over shard workers and merges the reports.

    Args:
        shard_count: initial number of shards (``shard-0`` .. ``shard-N-1``).
        epsilon / psi / hierarchy_params: service tradeoff parameters, shared
            by every shard (and by the coordinator's own fingerprinting).
        vnodes: virtual nodes per shard on the placement ring.
        cache_capacity: per-shard in-memory artifact slots.
        queue_capacity: per-shard admission queue bound (``None`` =
            unbounded).
        admission_policy: ``"reject"`` or ``"shed-oldest"``.
        replication_factor: ring owners per *hot* fingerprint (``1`` = no
            replication).  Keys whose traffic crosses the hot-key threshold
            are published to this many owners and reads round-robin across
            them — the hotspot workload's scaling knob.
        hot_key_threshold: smoothed submissions-per-dispatch above which a
            fingerprint counts as hot.
        hot_key_alpha: EWMA smoothing factor for the hot-key rate (``1`` =
            only the latest cycle counts).
        default_plan: the cluster's execution defaults as **one**
            :class:`~repro.planner.ExecutionPlan` — pool mode and width for
            every shard service, and the template fixed submissions execute
            under.  (The deprecated ``shard_parallelism`` /
            ``shard_max_workers`` property shims are gone as of this
            release; read the plan.)
        policy: central planning policy — ``"fixed"`` (default) executes the
            default plan / explicit kwargs, ``"cost"`` / ``"adaptive"``
            attach a :class:`~repro.planner.QueryPlanner` whose cost model
            is shared cluster-wide (every shard's observed timings calibrate
            the same model).
        planner: inject a preconfigured planner instead (wins over
            ``policy``).
        metrics: shared registry (default: the process-wide one).
        transport: ``"local"`` (default) keeps every shard in process;
            ``"tcp"`` runs each shard as a spawned server process behind the
            wire protocol (:mod:`repro.net`) — placement, admission, and
            planning stay here, and :class:`ClusterReport.signature` is
            byte-identical across the two transports.  Note the ``adaptive``
            policy's timing feedback does not cross the process boundary.
        net_family: listener family for ``transport="tcp"`` — ``"unix"``
            (default, CI-safe) or ``"inet"`` (real TCP on loopback).

    Shard services keep long-lived worker pools (and, under
    ``transport="tcp"``, server processes); :meth:`close` (or using the
    coordinator as a context manager) releases all of them, idempotently.
    """

    def __init__(
        self,
        shard_count: int = 4,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        vnodes: int = 64,
        cache_capacity: int = 8,
        queue_capacity: int | None = None,
        admission_policy: str = "reject",
        replication_factor: int = 1,
        hot_key_threshold: float = 4.0,
        hot_key_alpha: float = 0.5,
        default_plan: ExecutionPlan | None = None,
        policy: str | None = None,
        planner: QueryPlanner | None = None,
        metrics: MetricsRegistry | None = None,
        transport: str = "local",
        net_family: str = "unix",
        journal: "CoordinatorJournal | None" = None,
        shard_ids: Sequence[str] | None = None,
    ) -> None:
        if shard_ids is not None and len(shard_ids) < 1:
            raise ValueError("shard_ids must name at least one shard")
        if shard_ids is None and shard_count < 1:
            raise ValueError("a cluster needs at least one shard")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; use one of {TRANSPORTS}")
        if replication_factor < 1:
            raise ValueError("replication_factor must be at least 1")
        if hot_key_threshold <= 0:
            raise ValueError("hot_key_threshold must be positive")
        if not 0.0 < hot_key_alpha <= 1.0:
            raise ValueError("hot_key_alpha must be in (0, 1]")
        self.epsilon = epsilon
        self.psi = psi
        self.hierarchy_params = hierarchy_params
        self.cache_capacity = cache_capacity
        self.transport = transport
        self.net_family = net_family
        self._socket_dir: str | None = None
        self._closed = False
        self.metrics = metrics if metrics is not None else default_registry()
        if default_plan is None:
            default_plan = ExecutionPlan(
                backend=DEFAULT_BACKEND,
                kernel=active_kernel(),
                policy="fixed",
                reason="cluster execution defaults",
            )
        self.default_plan = default_plan
        if planner is None and policy is not None and policy != "fixed":
            planner = QueryPlanner(
                policy=policy,
                epsilon=epsilon,
                parallelism=default_plan.parallelism,
                max_workers=default_plan.max_workers,
                metrics=self.metrics,
            )
        self.planner = planner
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.admission = AdmissionController(
            capacity=queue_capacity, policy=admission_policy, metrics=self.metrics
        )
        self.workers: dict[str, ShardWorker] = {}
        self._next_shard_index = 0
        self._seen_fingerprints: set[str] = set()
        # Bumped on every membership change (add/remove/fail/rejoin); the
        # gateway watches it to invalidate fingerprint-negotiation caches
        # whose entries may be pinned to a stale placement.
        self.membership_version = 0
        # -- elasticity state: hot-key replication and failover accounting.
        self.replication_factor = replication_factor
        self.hot_key_threshold = hot_key_threshold
        self.hot_key_alpha = hot_key_alpha
        self.lost_batches = 0
        self.requeued_batches = 0
        self.failovers = 0
        self.duplicate_results = 0
        # -- durability state: exactly-once idempotency-key tracking.  Keys
        # are tracked for explicitly keyed submissions always, and for every
        # submission once a journal is attached (auto-generated keys).
        self.journal: "CoordinatorJournal | None" = None
        self._keys_lock = threading.Lock()
        self._pending_keys: dict[str, str] = {}  # key -> current owner shard
        self._completed_keys: set[str] = set()
        self._auto_key_counter = 0
        self._hot_ewma: dict[str, float] = {}
        self._window_counts: dict[str, int] = {}
        self._replicas: dict[str, tuple[str, ...]] = {}
        self._replica_rr: dict[str, int] = {}
        # The coordinator fingerprints with the same parameters the shard
        # services use, so placement keys and cache keys agree; its own cache
        # is never filled (placement never routes).
        self._keyer = RoutingService(
            epsilon=epsilon,
            psi=psi,
            hierarchy_params=hierarchy_params,
            cache=ArtifactCache(capacity=1),
            metrics=self.metrics,
        )
        self._m_dispatch_seconds = self.metrics.histogram(
            "repro_cluster_dispatch_seconds", "Wall-clock per scatter/gather cycle."
        )
        self._m_warm_handoffs = self.metrics.counter(
            "repro_cluster_warm_handoffs_total",
            "Warm artifacts migrated during rebalances, by carrier plane.",
            labels=("path",),
        )
        self._m_requeued = self.metrics.counter(
            "repro_cluster_requeued_batches_total",
            "Admitted batches re-owned by another shard, by cause.",
            labels=("reason",),
        )
        self._m_lost = self.metrics.counter(
            "repro_cluster_lost_batches_total",
            "Admitted batches lost because no shard survived to re-own them.",
        )
        self._m_failovers = self.metrics.counter(
            "repro_cluster_failovers_total",
            "Shards marked dead and removed outside a planned rebalance.",
            labels=("shard",),
        )
        self._m_heartbeat_failures = self.metrics.counter(
            "repro_cluster_heartbeat_failures_total",
            "Health checks that found a shard unreachable.",
            labels=("shard",),
        )
        self._m_replica_publishes = self.metrics.counter(
            "repro_cluster_replica_publishes_total",
            "Hot artifacts published to replica shards, by carrier plane.",
            labels=("path",),
        )
        self._m_replica_reads = self.metrics.counter(
            "repro_cluster_replica_reads_total",
            "Reads load-balanced across a replicated key's owners, by shard.",
            labels=("shard",),
        )
        self._m_hot_keys = self.metrics.gauge(
            "repro_cluster_replica_hot_keys",
            "Fingerprints currently above the hot-key EWMA threshold.",
        )
        self._m_dedup_hits = self.metrics.counter(
            "repro_journal_dedup_hits_total",
            "Submissions short-circuited because their idempotency key was "
            "already pending or completed.",
        )
        self._m_duplicate_results = self.metrics.counter(
            "repro_cluster_duplicate_results_total",
            "Completions observed for an already-completed idempotency key "
            "(double execution — zero when exactly-once holds).",
        )
        self._m_orphans_swept = self.metrics.counter(
            "repro_cluster_orphan_segments_swept_total",
            "Dead-owner shared-memory segments unlinked by the failover sweep.",
        )
        if shard_ids is not None:
            for shard_id in shard_ids:
                self.add_shard(shard_id)
        else:
            for _ in range(shard_count):
                self.add_shard()
        if journal is not None:
            self.attach_journal(journal)

    # -- durability ------------------------------------------------------------

    def attach_journal(self, journal: "CoordinatorJournal") -> None:
        """Start journaling into ``journal`` (writes a baseline checkpoint).

        Every subsequent admit and completion is appended durably, and
        membership changes checkpoint the full recoverable state —
        :func:`repro.durability.recover` replays it all into a fresh
        coordinator after a crash.
        """
        self.journal = journal
        journal.attach(self)
        journal.checkpoint_now()

    def pending_keys(self) -> dict[str, str]:
        """``idempotency key -> owner shard`` for every admitted, unfinished batch."""
        with self._keys_lock:
            return dict(self._pending_keys)

    def completed_key_count(self) -> int:
        with self._keys_lock:
            return len(self._completed_keys)

    def _record_completions(self, shard_id: str, items: Sequence[ShardQuery]) -> None:
        """Mark each served item's key completed (and journal it), dedup-safe."""
        for item in items:
            key = item.idempotency_key
            if not key:
                continue
            with self._keys_lock:
                if key in self._completed_keys:
                    self.duplicate_results += 1
                    self._m_duplicate_results.inc()
                    continue
                self._completed_keys.add(key)
                self._pending_keys.pop(key, None)
            if self.journal is not None:
                self.journal.record_complete(item, shard_id)

    def _sweep_orphan_segments(self) -> int:
        """Unlink shm segments whose owner process is gone (SIGKILLed shard)."""
        from repro.service.shm import leaked_segments

        swept = len(leaked_segments(reap=True))
        if swept:
            self._m_orphans_swept.inc(swept)
        return swept

    # -- membership -----------------------------------------------------------

    @property
    def shard_ids(self) -> list[str]:
        return self.ring.shard_ids

    @property
    def shard_count(self) -> int:
        return len(self.workers)

    def _make_worker(self, shard_id: str):
        """One shard for the configured transport: in-process or a server process."""
        if self.transport == "local":
            return ShardWorker(
                shard_id,
                epsilon=self.epsilon,
                psi=self.psi,
                hierarchy_params=self.hierarchy_params,
                cache_capacity=self.cache_capacity,
                default_plan=self.default_plan,
                planner=self.planner,
                metrics=self.metrics,
            )
        # Imported lazily: repro.net depends on this module.
        from repro.net.shard_server import ShardServerConfig, start_shard_server

        if self._socket_dir is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-net-")
        config = ShardServerConfig(
            shard_id=shard_id,
            family=self.net_family,
            socket_path=(
                f"{self._socket_dir}/{shard_id}.sock" if self.net_family == "unix" else None
            ),
            epsilon=self.epsilon,
            psi=self.psi,
            hierarchy_params=self.hierarchy_params,
            cache_capacity=self.cache_capacity,
            default_plan=self.default_plan,
        )
        return start_shard_server(config, metrics=self.metrics)

    def add_shard(self, shard_id: str | None = None) -> RebalanceStats:
        """Add a shard (and its worker); returns how placement moved.

        The rebalance stats are measured over every fingerprint the
        coordinator has seen — the moved fraction is the share of known
        artifacts whose cache locality the scale-up cost.
        """
        if shard_id is None:
            shard_id = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        seen = sorted(self._seen_fingerprints)
        before = self.ring.placement(seen) if len(self.ring) else {}
        before_count = len(self.ring)
        self.ring.add_shard(shard_id)
        self.workers[shard_id] = self._make_worker(shard_id)
        self._replicas.clear()  # replica sets are recomputed against the new ring
        self._migrate_warm(before)
        moved = sum(1 for key in seen if self.ring.assign(key) != before.get(key))
        expected = 1.0 / len(self.ring) if before_count else 1.0
        self.membership_version += 1
        if self.journal is not None:
            self.journal.record_membership()
        return RebalanceStats(total=len(seen), moved=moved, expected_fraction=expected)

    def remove_shard(self, shard_id: str) -> RebalanceStats:
        """Drop a shard; queued work is requeued on its new owners.

        Stranded items were already admitted, so they move via
        :meth:`~repro.cluster.admission.AdmissionController.requeue` — no
        second admission decision, no loss even if the new owner's queue is
        momentarily over capacity.
        """
        if len(self.workers) <= 1:
            raise ValueError("cannot remove the last shard")
        seen = sorted(self._seen_fingerprints)
        before = self.ring.placement(seen)
        stranded = self.admission.drain(shard_id)
        self.ring.remove_shard(shard_id)
        departing = self.workers.pop(shard_id)
        self._replicas.clear()
        # The departing shard's warm artifacts migrate to their new owners
        # (shm plane when available) before its pools and segments go away.
        self._migrate_warm(before, departed={shard_id: departing})
        departing.close()
        self._requeue_items(stranded, reason="rebalance")
        moved = sum(1 for key in seen if self.ring.assign(key) != before.get(key))
        self.membership_version += 1
        if self.journal is not None:
            self.journal.record_membership()
        return RebalanceStats(
            total=len(seen), moved=moved, expected_fraction=1.0 / (len(self.ring) + 1)
        )

    def _migrate_warm(
        self,
        before: Mapping[str, str],
        departed: Mapping[str, ShardWorker] | None = None,
    ) -> int:
        """Hand warm artifacts whose placement moved to their new owners.

        ``before`` maps each seen fingerprint to its pre-rebalance shard;
        ``departed`` supplies workers already removed from :attr:`workers`
        (still open, about to close).  Local workers hand the artifact over
        in-process; shard servers publish/attach a shared-memory segment via
        the artifact-handoff wire messages, so the tcp transport rides the
        same plane (with shm disabled a remote pair rebuilds instead).
        Returns how many artifacts migrated.
        """
        migrated = 0
        for fingerprint, old_owner in before.items():
            new_owner = self.ring.assign(fingerprint)
            if new_owner == old_owner:
                continue
            source = (departed or {}).get(old_owner) or self.workers.get(old_owner)
            target = self.workers.get(new_owner)
            if not hasattr(source, "export_artifact") or not hasattr(target, "adopt_artifact"):
                continue
            try:
                handoff = source.export_artifact(fingerprint)
            except (ConnectionError, OSError):
                continue  # an unreachable source cannot hand off; rebuild instead
            if handoff is None:
                continue
            try:
                adopted = target.adopt_artifact(handoff)
            except (ConnectionError, OSError):
                adopted = False
            if adopted:
                self._m_warm_handoffs.labels(path=handoff.path).inc()
                migrated += 1
        return migrated

    # -- failover: health checks and unplanned shard loss ----------------------

    def heartbeat(self) -> dict[str, bool]:
        """One liveness probe per shard, in shard-id order (no side effects)."""
        status: dict[str, bool] = {}
        for shard_id in sorted(self.workers):
            worker = self.workers[shard_id]
            try:
                status[shard_id] = bool(worker.healthy())
            except (ConnectionError, OSError, RuntimeError):
                status[shard_id] = False
        return status

    def check_health(self) -> dict[str, bool]:
        """Heartbeat every shard and fail the dead ones (work is re-owned).

        This is the crash-observation half of the failover contract: a shard
        that stops answering is marked dead and its admitted batches move to
        the surviving owners *before* the next dispatch, so an open-loop run
        through a kill sees requeues, never losses.
        """
        status = self.heartbeat()
        for shard_id, alive in status.items():
            if not alive:
                self._m_heartbeat_failures.labels(shard=shard_id).inc()
                self.fail_shard(shard_id)
        return status

    def fail_shard(self, shard_id: str, in_flight: Sequence[ShardQuery] = ()) -> int:
        """Unplanned removal after a crash or partition: re-own the dead shard's work.

        Unlike :meth:`remove_shard` there is no warm migration — the shard is
        unreachable, its cache is gone.  Queued (and caller-supplied
        in-flight) batches are requeued to the new ring owners and counted in
        :attr:`requeued_batches`; work is lost only when no shard survives.
        Returns how many batches were requeued.
        """
        worker = self.workers.get(shard_id)
        if worker is None:
            return 0
        stranded = self.admission.drain(shard_id)
        self.ring.remove_shard(shard_id)
        self.workers.pop(shard_id)
        self._replicas.clear()
        self.failovers += 1
        self._m_failovers.labels(shard=shard_id).inc()
        try:
            worker.close()
        except (ConnectionError, OSError, RuntimeError):
            pass  # a dead shard may not shut down cleanly
        if self.transport == "tcp":
            # A SIGKILLed server process never unlinks its published RSHM
            # segments, and its resource tracker dies with it — sweep the
            # dead-owner segments now instead of leaking them until exit.
            self._sweep_orphan_segments()
        requeued = self._requeue_items(list(in_flight) + stranded, reason="failover")
        self.membership_version += 1
        if self.journal is not None:
            self.journal.record_membership()
        return requeued

    def rejoin_shard(self, shard_id: str | None = None) -> RebalanceStats:
        """Bring a failed shard's identity back as a fresh worker.

        The replacement starts cold except for what the warm handoff migrates
        from the surviving shards — the same path :meth:`add_shard` takes,
        reusing the old shard id so placement returns to its pre-crash shape.
        """
        if shard_id is not None and shard_id in self.workers:
            raise ValueError(f"shard {shard_id!r} is already serving")
        return self.add_shard(shard_id)

    def _requeue_items(self, items: Sequence[ShardQuery], reason: str) -> int:
        """Re-own admitted items on the current ring; count requeues vs losses."""
        if not items:
            return 0
        if not len(self.ring):
            self.lost_batches += len(items)
            self._m_lost.inc(len(items))
            return 0
        by_owner: dict[str, list[ShardQuery]] = {}
        for item in items:
            owner = self.ring.assign(item.fingerprint)
            if item.plan is not None and item.plan.shard_hint != owner:
                item = replace(item, plan=item.plan.with_shard(owner))
            by_owner.setdefault(owner, []).append(item)
        for owner, owned in by_owner.items():
            self.admission.requeue(owner, owned)
        self.requeued_batches += len(items)
        self._m_requeued.labels(reason=reason).inc(len(items))
        return len(items)

    # -- hot-key replication ---------------------------------------------------

    def _place(self, fingerprint: str) -> str:
        """The shard a submission routes to.

        The ring's primary owner, unless the key has warmed replicas — then
        reads round-robin deterministically over primary + replicas, which is
        what spreads a hotspot's load without moving its placement.
        """
        primary = self.ring.assign(fingerprint)
        replicas = self._replicas.get(fingerprint)
        if not replicas:
            return primary
        candidates = [primary] + [s for s in replicas if s != primary and s in self.workers]
        if len(candidates) == 1:
            return primary
        turn = self._replica_rr.get(fingerprint, 0)
        self._replica_rr[fingerprint] = turn + 1
        choice = candidates[turn % len(candidates)]
        self._m_replica_reads.labels(shard=choice).inc()
        return choice

    def _update_hot_keys(self) -> None:
        """Fold this cycle's per-key traffic into the hot-key EWMA; replicate.

        A fingerprint whose smoothed submissions-per-cycle crosses
        :attr:`hot_key_threshold` is hot; under ``replication_factor > 1``
        its warm artifact is published to the extra ring owners so subsequent
        reads load-balance across them (:meth:`_place`).
        """
        alpha = self.hot_key_alpha
        for fingerprint in set(self._hot_ewma) | set(self._window_counts):
            previous = self._hot_ewma.get(fingerprint, 0.0)
            observed = float(self._window_counts.get(fingerprint, 0))
            self._hot_ewma[fingerprint] = (1.0 - alpha) * previous + alpha * observed
        self._window_counts.clear()
        if self.replication_factor > 1 and len(self.ring) > 1:
            self._replicate_hot_keys()
        self._m_hot_keys.set(
            sum(1 for rate in self._hot_ewma.values() if rate >= self.hot_key_threshold)
        )

    def _replicate_hot_keys(self) -> None:
        """Publish every hot key's artifact to its replica owners (idempotent)."""
        for fingerprint in sorted(self._hot_ewma):
            if self._hot_ewma[fingerprint] < self.hot_key_threshold:
                continue
            owners = self.ring.owners(fingerprint, self.replication_factor)
            current = set(self._replicas.get(fingerprint, ()))
            missing = [sid for sid in owners[1:] if sid not in current]
            if not missing:
                continue
            source = self.workers.get(owners[0])
            if not hasattr(source, "export_artifact"):
                continue
            try:
                handoff = source.export_artifact(fingerprint)
            except (ConnectionError, OSError):
                continue
            if handoff is None:
                continue  # the primary has not served it yet; retry next cycle
            for target_id in missing:
                target = self.workers.get(target_id)
                if target is None or not hasattr(target, "adopt_artifact"):
                    continue
                try:
                    adopted = target.adopt_artifact(handoff)
                except (ConnectionError, OSError):
                    adopted = False
                if adopted:
                    current.add(target_id)
                    self._m_replica_publishes.labels(path=handoff.path).inc()
            if current:
                self._replicas[fingerprint] = tuple(
                    sid for sid in owners[1:] if sid in current
                )

    def replicated_keys(self) -> dict[str, tuple[str, ...]]:
        """``fingerprint -> replica shards`` for every key currently replicated."""
        return dict(self._replicas)

    # -- submission -----------------------------------------------------------

    def fingerprint(
        self,
        graph: nx.Graph,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
    ) -> str:
        """The placement (and cache) key for ``graph`` under ``backend``."""
        return self._keyer.fingerprint(graph, backend=backend, backend_params=backend_params)

    def plan(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ) -> ExecutionPlan:
        """The execution plan one submission would ship (placement hint unset).

        Central planning: with a planner attached the policy decides (an
        explicitly named backend still pins a fixed plan); otherwise the
        cluster's :attr:`default_plan` is specialised with the caller's
        backend kwargs.
        """
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        if self.planner is not None:
            return self.planner.plan(
                self._keyer.graph_key(graph),
                graph.number_of_nodes(),
                request_count=len(requests),
                load=load,
                workload=workload,
                backend=backend,
                backend_params=backend_params,
            )
        if backend is None and backend_params is None:
            # The template verbatim — including its configured backend_params.
            return replace(self.default_plan, reason="cluster default plan")
        if backend is None:
            # Params override on the default backend; the template's own
            # params still back-fill anything the caller left unset.
            params = {**dict(self.default_plan.backend_params), **dict(backend_params)}
            return replace(
                self.default_plan,
                backend_params=params,
                reason="cluster default plan with caller params",
            )
        # A pinned backend never inherits the template's params — they are
        # specific to the template's backend.
        return replace(
            self.default_plan,
            backend=backend,
            backend_params=dict(backend_params or {}),
            reason=f"caller pinned backend={backend}",
        )

    def explain(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ):
        """The planner's EXPLAIN report for this submission (needs a planner)."""
        if self.planner is None:
            raise RuntimeError("explain() requires a cluster planner (policy=...)")
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        return self.planner.explain(
            self._keyer.graph_key(graph),
            graph.number_of_nodes(),
            request_count=len(requests),
            load=load,
            workload=workload,
            backend=backend,
            backend_params=backend_params,
        )

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
        idempotency_key: str | None = None,
    ) -> AdmissionDecision:
        """Plan, fingerprint, place, and offer one query; returns the admission outcome.

        ``idempotency_key`` makes the submission exactly-once: a key that is
        already pending or completed returns a ``duplicate`` decision without
        queueing anything (the earlier admission stands), which is what makes
        a client's crash-retry resubmission safe.  With a journal attached,
        unkeyed submissions get coordinator-generated keys so every admitted
        batch is dedupable after recovery.
        """
        key = idempotency_key
        if key is not None:
            with self._keys_lock:
                if key in self._completed_keys:
                    self._m_dedup_hits.inc()
                    return AdmissionDecision(shard_id="", accepted=False, duplicate=True)
                if key in self._pending_keys:
                    self._m_dedup_hits.inc()
                    return AdmissionDecision(
                        shard_id=self._pending_keys[key], accepted=False, duplicate=True
                    )
        elif self.journal is not None:
            with self._keys_lock:
                key = f"auto-{self._auto_key_counter}"
                self._auto_key_counter += 1
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        requests = tuple(requests)
        plan = self.plan(
            graph,
            requests,
            load=load,
            backend=backend,
            backend_params=backend_params,
            workload=workload,
        )
        fingerprint = self.fingerprint(
            graph, backend=plan.backend, backend_params=plan.backend_params
        )
        self._seen_fingerprints.add(fingerprint)
        self._window_counts[fingerprint] = self._window_counts.get(fingerprint, 0) + 1
        shard_id = self._place(fingerprint)
        item = ShardQuery(
            fingerprint=fingerprint,
            graph=graph,
            requests=requests,
            load=load,
            backend=plan.backend,
            backend_params=dict(plan.backend_params),
            workload=workload,
            plan=plan.with_shard(shard_id),
            idempotency_key=key or "",
        )
        decision = self.admission.offer(shard_id, item)
        if key:
            with self._keys_lock:
                if decision.accepted:
                    self._pending_keys[key] = shard_id
                for dropped in decision.shed:
                    dropped_key = getattr(dropped, "idempotency_key", "")
                    if dropped_key:
                        # Shed under overload: admitted once, then dropped —
                        # it will never complete, so it must not stay pending
                        # (recovery would wrongly resurrect it).
                        self._pending_keys.pop(dropped_key, None)
        if self.journal is not None:
            self.journal.record_admit(key or "", decision, item)
        return decision

    def submit_many(
        self, calls: Sequence[Mapping[str, Any]]
    ) -> list[AdmissionDecision | Exception]:
        """Admit a coalesced batch of submissions in one coordinator pass.

        Each element of ``calls`` is a kwargs mapping for :meth:`submit`,
        admitted in order.  With a journal attached, every admit record in
        the batch reaches disk as **one group commit** (one buffered write,
        one fsync) instead of one flush per submission — the gateway's
        micro-batch window rides on this.  Outcomes are returned only after
        the group is flushed, so the caller may acknowledge all of them the
        moment this returns; a crash mid-group loses only un-acked
        admissions.  A submission that raises is captured as the exception
        instance in its slot rather than aborting the rest of the batch.
        """
        outcomes: list[AdmissionDecision | Exception] = []
        group = self.journal.group() if self.journal is not None else nullcontext()
        with group:
            for kwargs in calls:
                try:
                    outcomes.append(self.submit(**kwargs))
                except Exception as error:  # noqa: BLE001 - per-slot capture
                    outcomes.append(error)
        return outcomes

    def queue_depths(self) -> dict[str, int]:
        return {shard_id: self.admission.depth(shard_id) for shard_id in self.workers}

    @property
    def pending_count(self) -> int:
        return sum(self.queue_depths().values())

    def admission_totals(self) -> AdmissionStats:
        """Cluster-lifetime admission totals (the client exposes the same call)."""
        return self.admission.total_stats()

    # -- execution ------------------------------------------------------------

    def drain_slices(self) -> dict[str, list[ShardQuery]]:
        """Drain every queue; the busy shards' slices, in shard-id order."""
        slices = {shard_id: self.admission.drain(shard_id) for shard_id in sorted(self.workers)}
        return {shard_id: items for shard_id, items in slices.items() if items}

    def process_shard(self, shard_id: str, items: Sequence[ShardQuery]) -> BatchReport:
        """Serve one shard's slice on its worker (local or remote).

        Completions are recorded (and journaled) only after the worker
        returns: a crash mid-batch leaves the keys pending, so recovery
        re-admits and re-serves them — at-least-once execution, exactly-once
        *results* via the completed-key dedup.
        """
        report = self.workers[shard_id].process(items)
        self._record_completions(shard_id, items)
        return report

    def merge_reports(
        self, shard_reports: Mapping[str, BatchReport], dispatch_seconds: float
    ) -> ClusterReport:
        """Merge per-shard reports into one cycle report (records the histogram)."""
        report = ClusterReport(
            shard_reports=dict(shard_reports),
            dispatch_seconds=dispatch_seconds,
            admission=self.admission.total_stats(),
            lost_batches=self.lost_batches,
            requeued_batches=self.requeued_batches,
        )
        self._m_dispatch_seconds.observe(dispatch_seconds)
        return report

    # Kept as a staticmethod alias: the gateway and older callers reach the
    # merge through the class.
    _merge_batch_reports = staticmethod(merge_batch_reports)

    def dispatch(self) -> ClusterReport:
        """Drain every queue, scatter to the shard workers, gather, merge.

        Failover lives here: a shard whose slice dies mid-scatter (crash,
        partition, killed server process) is marked failed, its whole slice —
        nothing partial ever merges from a failed shard — is requeued to the
        surviving owners, and the cycle repeats until every queue is empty or
        no shard remains.  Admitted work is therefore served exactly once in
        the merged report or counted in :attr:`lost_batches`, never dropped
        silently.

        The gateway composes the same three steps (:meth:`drain_slices`,
        :meth:`process_shard`, :meth:`merge_reports`) so it can stream each
        shard's report as it completes instead of gathering here.
        """
        started = time.perf_counter()
        collected: dict[str, list[BatchReport]] = {}
        for _ in range(len(self.workers) + 2):
            busy = self.drain_slices()
            if not busy:
                break
            failed: dict[str, list[ShardQuery]] = {}
            with ThreadPoolExecutor(max_workers=len(busy)) as pool:
                futures = {
                    shard_id: pool.submit(self.process_shard, shard_id, items)
                    for shard_id, items in busy.items()
                }
                for shard_id, future in futures.items():
                    try:
                        collected.setdefault(shard_id, []).append(future.result())
                    except ConnectionError:
                        failed[shard_id] = busy[shard_id]
            if not failed:
                break
            for shard_id, items in failed.items():
                self.fail_shard(shard_id, in_flight=items)
        self._update_hot_keys()
        shard_reports = {
            shard_id: self._merge_batch_reports(reports)
            for shard_id, reports in collected.items()
            if reports
        }
        return self.merge_reports(shard_reports, time.perf_counter() - started)

    def route_batch(
        self,
        graph: nx.Graph,
        workloads: Sequence[Workload | Sequence[RoutingRequest]],
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
    ) -> ClusterReport:
        """Submit every workload and dispatch once (drops are reflected in the report)."""
        for workload in workloads:
            self.submit(graph, workload, backend=backend, backend_params=backend_params)
        return self.dispatch()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every shard (pools or server processes) and the keyer; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.journal is not None:
            # A clean shutdown checkpoints, so recovery replays nothing.
            try:
                self.journal.checkpoint_now()
            finally:
                self.journal.close()
        for worker in self.workers.values():
            worker.close()
        self._keyer.close()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)
            self._socket_dir = None

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    # -- reporting ------------------------------------------------------------

    def shard_rows(self) -> list[dict[str, object]]:
        """Lifetime per-shard serving and cache stats (for operators' tables)."""
        rows = []
        for shard_id in sorted(self.workers):
            worker = self.workers[shard_id]
            row = worker.as_row()
            row["queue_depth"] = self.admission.depth(shard_id)
            rows.append(row)
        return rows
