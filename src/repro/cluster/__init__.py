"""The sharded cluster serving tier above :class:`~repro.service.RoutingService`.

The ROADMAP's north star — serving heavy traffic — needs more than one
process: this package adds the placement tier that maps work onto workers,
instrumented end to end and validated under generated load.

* :mod:`repro.cluster.ring` — consistent-hash placement of graph
  fingerprints onto shards (virtual nodes, deterministic rebalance with
  artifact-locality stats);
* :mod:`repro.cluster.worker` — each shard owns an isolated
  :class:`~repro.service.RoutingService` and
  :class:`~repro.service.ArtifactCache`, so the cluster's cache capacity
  scales with the shard count;
* :mod:`repro.cluster.admission` — bounded per-shard queues with ``reject``
  and ``shed-oldest`` overload policies;
* :mod:`repro.cluster.coordinator` — fingerprint, place, admit,
  scatter/gather, and merge into a :class:`ClusterReport`;
* :mod:`repro.cluster.loadgen` — seeded open-loop traffic (Poisson or
  bursty) that drives the coordinator and emits an :class:`SLOReport` with
  latency percentiles, shed rate, and per-shard cache hit rates — and can
  carry a :class:`~repro.elastic.FaultPlan` and
  :class:`~repro.elastic.Autoscaler` for chaos and elasticity runs.

See ``examples/cluster_load_test.py`` for the end-to-end tour and
``benchmarks/bench_cluster.py`` for the shard-scaling measurement.
"""

from repro.cluster.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.cluster.coordinator import (
    TRANSPORTS,
    ClusterCoordinator,
    ClusterReport,
    merge_batch_reports,
)
from repro.cluster.loadgen import DEFAULT_WORKLOAD_MIX, OpenLoopLoadGenerator, SLOReport
from repro.cluster.ring import ConsistentHashRing, RebalanceStats
from repro.cluster.worker import FAULT_KINDS, ShardCrashed, ShardQuery, ShardWorker, WarmHandoff

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "ClusterCoordinator",
    "ClusterReport",
    "ConsistentHashRing",
    "DEFAULT_WORKLOAD_MIX",
    "FAULT_KINDS",
    "OpenLoopLoadGenerator",
    "RebalanceStats",
    "SLOReport",
    "ShardCrashed",
    "ShardQuery",
    "ShardWorker",
    "TRANSPORTS",
    "WarmHandoff",
    "merge_batch_reports",
]
