"""Consistent-hash placement of graph fingerprints onto shard workers.

The cluster tier keys everything by the canonical graph fingerprint
(:func:`repro.service.fingerprint.graph_fingerprint`), so placement *is*
artifact locality: all queries for one (graph, backend, parameters) key land
on the same shard, whose :class:`~repro.service.ArtifactCache` then holds the
preprocessed artifact exactly once across the cluster.

:class:`ConsistentHashRing` is the classic construction: every shard owns
``vnodes`` virtual points on a 64-bit hash circle, and a key is assigned to
the owner of the first point at or after the key's own hash.  Virtual nodes
smooth the load split; the circle makes scaling *incremental* — adding a
shard to an ``N``-shard ring moves an expected ``1/(N+1)`` of the keys (only
the keys the new shard captures), and removing a shard moves exactly the keys
it owned.  :meth:`ConsistentHashRing.rebalance_stats` measures that against a
key population, which is the artifact-locality number operators care about:
moved keys are cold caches.

Everything is deterministic: placement depends only on the shard ids, the
vnode count, and SHA-256 — two rings built with the same configuration agree
on every key, in any process.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = ["ConsistentHashRing", "RebalanceStats"]

DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """The first 8 bytes of SHA-256 as an unsigned 64-bit position."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True)
class RebalanceStats:
    """How a ring change moved a key population.

    Attributes:
        total: keys measured.
        moved: keys whose owning shard changed.
        expected_fraction: the ideal moved fraction for the change (``k/N``
            for ``k`` shards added to or removed from the larger of the two
            rings): consistent hashing should move about this many and never
            dramatically more.
    """

    total: int
    moved: int
    expected_fraction: float

    @property
    def moved_fraction(self) -> float:
        return self.moved / self.total if self.total else 0.0

    def as_row(self) -> dict[str, object]:
        return {
            "keys": self.total,
            "moved": self.moved,
            "moved_fraction": self.moved_fraction,
            "expected_fraction": self.expected_fraction,
        }


class ConsistentHashRing:
    """Deterministic consistent hashing with virtual nodes.

    Args:
        shard_ids: initial shards (any iterable of strings).
        vnodes: virtual points per shard (more = smoother split, slower
            mutation; lookups stay ``O(log(shards * vnodes))``).
    """

    def __init__(self, shard_ids: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._shards: set[str] = set()
        self._points: list[int] = []  # sorted hash positions
        self._owners: list[str] = []  # owner of each position, same order
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # -- membership -----------------------------------------------------------

    @property
    def shard_ids(self) -> list[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._shards.add(shard_id)
        for replica in range(self.vnodes):
            position = _hash64(f"{shard_id}#{replica}")
            index = bisect.bisect_left(self._points, position)
            self._points.insert(index, position)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        self._shards.discard(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # -- placement ------------------------------------------------------------

    def assign(self, key: str) -> str:
        """The shard owning ``key``: first virtual point clockwise of its hash."""
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        index = bisect.bisect_right(self._points, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def owners(self, key: str, r: int = 1) -> list[str]:
        """The first ``r`` distinct shards clockwise of ``key`` (primary first).

        This is the replica set for replication factor ``r``: ``owners(key, 1)
        == [assign(key)]``, and growing ``r`` only appends shards — the primary
        never moves, so replicated reads stay consistent with unreplicated
        placement.  ``r`` larger than the ring is clamped to every shard.
        """
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        if r < 1:
            raise ValueError("replication factor must be at least 1")
        wanted = min(r, len(self._shards))
        start = bisect.bisect_right(self._points, _hash64(key))
        result: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in result:
                result.append(owner)
                if len(result) == wanted:
                    break
        return result

    def placement(self, keys: Iterable[str]) -> dict[str, str]:
        """``key -> shard`` for every key."""
        return {key: self.assign(key) for key in keys}

    def spread(self, keys: Iterable[str]) -> Counter:
        """How many of ``keys`` each shard owns (shards with none included)."""
        counts = Counter({shard_id: 0 for shard_id in self._shards})
        counts.update(self.assign(key) for key in keys)
        return counts

    # -- rebalance accounting --------------------------------------------------

    def rebalance_stats(
        self, other: "ConsistentHashRing | Mapping[str, str]", keys: Sequence[str]
    ) -> RebalanceStats:
        """How many of ``keys`` move between this ring and ``other``.

        ``other`` may be another ring or a previously captured
        :meth:`placement` mapping.  The expected fraction assumes the smaller
        ring's shards are a subset of the larger's (the add/remove-shards
        case); disjoint replacements naturally move more.
        """
        if isinstance(other, ConsistentHashRing):
            theirs = other.placement(keys)
            their_count = len(other)
        else:
            theirs = dict(other)
            their_count = len(set(theirs.values()))
        mine = self.placement(keys)
        moved = sum(1 for key in keys if mine[key] != theirs.get(key))
        larger = max(len(self), their_count)
        expected = abs(len(self) - their_count) / larger if larger else 0.0
        return RebalanceStats(total=len(keys), moved=moved, expected_fraction=expected)
