"""Open-loop load generation against the cluster, with an SLO report.

An *open-loop* generator draws arrival times from a stochastic process and
submits on schedule no matter how the system is doing — unlike a closed loop,
it never slows down to match service capacity, which is exactly what exposes
overload behaviour (queue growth, admission drops, tail latency).  Two
arrival processes are built in, both fully seeded:

* ``poisson`` — exponential inter-arrivals at ``rate`` per second, the
  classic memoryless stream;
* ``bursty`` — a piecewise-constant-rate Poisson process that alternates an
  ON window (``rate * burst_factor``) and a quiet remainder within each
  ``burst_period``, keeping the same average rate but concentrating arrivals.

Each arrival picks a (graph, workload) pair from the generator's catalog with
a seeded RNG — workloads are drawn from :mod:`repro.workloads`, built once
per pair and replayed, so repeated traffic exercises the per-shard artifact
caches the way real repeat queries would.  Arrivals are grouped into dispatch
windows of ``dispatch_interval`` simulated seconds: every window's arrivals
are submitted (the admission queues accept or drop) and then the coordinator
dispatches once — the scatter/gather that serves that window.

:meth:`OpenLoopLoadGenerator.run` returns an :class:`SLOReport`: offered vs
completed traffic, drop/shed rate, throughput, exact latency percentiles
(p50/p95/p99 over every served query), and per-shard cache hit rates — the
numbers an operator would put an SLO on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import networkx as nx

from repro.analysis.reporting import format_kv, format_table
from repro.cluster.coordinator import ClusterCoordinator, ClusterReport
from repro.metrics import quantile as _quantile
from repro.service.service import DEFAULT_BACKEND
from repro.workloads import Workload, make_workload

if TYPE_CHECKING:  # deferred: repro.elastic imports this module
    from repro.elastic.autoscaler import Autoscaler
    from repro.elastic.faults import FaultPlan

__all__ = ["SLOReport", "OpenLoopLoadGenerator", "DEFAULT_WORKLOAD_MIX"]

#: The default (workload, params) mix an arrival draws from.
DEFAULT_WORKLOAD_MIX: tuple[tuple[str, dict], ...] = (
    ("permutation", {"shift": 1}),
    ("permutation", {"shift": 5}),
    ("hotspot", {"load": 2, "seed": 11}),
    ("multi-token", {"load": 2}),
)

ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass
class SLOReport:
    """What the load run achieved, in SLO terms.

    Attributes:
        offered: arrivals the generator produced.
        admitted: arrivals the admission queues accepted.
        completed: queries actually served by shards.
        rejected / shed: arrivals dropped by admission, split by policy path
            (deltas across this run only).
        simulated_seconds: the arrival-process horizon.
        wall_seconds: real time spent serving.
        cluster_reports: one :class:`ClusterReport` per dispatch window.
        round_trip_seconds: client-observed wall-clock of each dispatch call
            — over a network transport this includes serialization and
            transit, so comparing it with the server-side
            ``dispatch_seconds`` isolates the transport overhead instead of
            folding it into route time.
        lost_batches / requeued_batches / failovers: the coordinator's
            elastic counters as deltas across this run.  A chaos run is
            correct exactly when ``lost_batches == 0`` while ``failovers``
            and ``requeued_batches`` are non-zero — crashes were observed and
            their work re-owned, never dropped.
        duplicate_results: completions observed for an already-completed
            idempotency key, as a delta across this run.  The exactly-once
            check: zero even when a coordinator crash forces journal
            recovery to re-admit in-flight work.
        scale_events: autoscaler decisions applied during the run (rows).
        fault_events: the injector's applied-fault log for the run (rows).
        failover_windows: indexes into ``cluster_reports`` of windows whose
            dispatch absorbed a failover — their latencies are reported
            separately so recovery cost doesn't hide inside the overall p99.
    """

    offered: int = 0
    admitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    cluster_reports: list[ClusterReport] = field(default_factory=list)
    round_trip_seconds: list[float] = field(default_factory=list)
    lost_batches: int = 0
    requeued_batches: int = 0
    failovers: int = 0
    duplicate_results: int = 0
    scale_events: list[dict[str, object]] = field(default_factory=list)
    fault_events: list[dict[str, object]] = field(default_factory=list)
    failover_windows: list[int] = field(default_factory=list)

    @property
    def drop_rate(self) -> float:
        return (self.rejected + self.shed) / self.offered if self.offered else 0.0

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def query_seconds(self) -> list[float]:
        seconds: list[float] = []
        for report in self.cluster_reports:
            seconds.extend(report.query_seconds)
        return seconds

    @property
    def preprocess_rounds_incurred(self) -> int:
        return sum(report.preprocess_rounds_incurred for report in self.cluster_reports)

    @property
    def all_delivered(self) -> bool:
        return all(report.all_delivered for report in self.cluster_reports)

    def latency_quantile(self, q: float) -> float:
        return _quantile(self.query_seconds, q)

    @property
    def clean_query_seconds(self) -> list[float]:
        """Latencies from windows that did not absorb a failover."""
        affected = set(self.failover_windows)
        seconds: list[float] = []
        for index, report in enumerate(self.cluster_reports):
            if index not in affected:
                seconds.extend(report.query_seconds)
        return seconds

    @property
    def failover_query_seconds(self) -> list[float]:
        """Latencies from the windows whose dispatch rode out a failover."""
        affected = set(self.failover_windows)
        seconds: list[float] = []
        for index, report in enumerate(self.cluster_reports):
            if index in affected:
                seconds.extend(report.query_seconds)
        return seconds

    def clean_latency_quantile(self, q: float) -> float:
        return _quantile(self.clean_query_seconds, q)

    def failover_latency_quantile(self, q: float) -> float:
        return _quantile(self.failover_query_seconds, q)

    @property
    def service_dispatch_seconds(self) -> list[float]:
        """Server-side scatter/gather wall-clock, one entry per window."""
        return [report.dispatch_seconds for report in self.cluster_reports]

    @property
    def transport_overhead_seconds(self) -> list[float]:
        """Per-window round trip minus server dispatch time (>= 0 each).

        Zero-ish for ``transport="local"`` (the dispatch call *is* the
        service); over a socket it is the serialization + transit cost the
        SLO report would otherwise hide inside latency.
        """
        return [
            max(0.0, rtt - service)
            for rtt, service in zip(self.round_trip_seconds, self.service_dispatch_seconds)
        ]

    def round_trip_quantile(self, q: float) -> float:
        return _quantile(self.round_trip_seconds, q)

    def cache_hit_rate_by_shard(self) -> dict[str, float]:
        """Aggregate cache hit rate per shard across every dispatch window."""
        hits: dict[str, int] = {}
        queries: dict[str, int] = {}
        for report in self.cluster_reports:
            for shard_id, shard_report in report.shard_reports.items():
                hits[shard_id] = hits.get(shard_id, 0) + shard_report.cache_hits
                queries[shard_id] = queries.get(shard_id, 0) + shard_report.query_count
        return {
            shard_id: hits[shard_id] / queries[shard_id] if queries[shard_id] else 0.0
            for shard_id in sorted(queries)
        }

    def summary(self) -> dict[str, object]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "drop_rate": self.drop_rate,
            "all_delivered": self.all_delivered,
            "throughput_qps": self.throughput_qps,
            "p50_seconds": self.latency_quantile(0.50),
            "p95_seconds": self.latency_quantile(0.95),
            "p99_seconds": self.latency_quantile(0.99),
            "rtt_p50_seconds": self.round_trip_quantile(0.50),
            "rtt_p99_seconds": self.round_trip_quantile(0.99),
            "transport_overhead_seconds": sum(self.transport_overhead_seconds),
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "lost_batches": self.lost_batches,
            "requeued_batches": self.requeued_batches,
            "failovers": self.failovers,
            "duplicate_results": self.duplicate_results,
            "scale_events": len(self.scale_events),
            "fault_events": len(self.fault_events),
            "clean_p99_seconds": self.clean_latency_quantile(0.99),
            "failover_p99_seconds": self.failover_latency_quantile(0.99),
        }

    def render(self) -> str:
        parts = [format_kv(self.summary(), title="slo")]
        hit_rates = self.cache_hit_rate_by_shard()
        if hit_rates:
            parts.append(
                format_table(
                    [
                        {"shard": shard_id, "cache_hit_rate": rate}
                        for shard_id, rate in hit_rates.items()
                    ]
                )
            )
        if self.scale_events:
            parts.append(format_table(self.scale_events))
        if self.fault_events:
            parts.append(format_table(self.fault_events))
        return "\n\n".join(parts)


class OpenLoopLoadGenerator:
    """Seeded open-loop traffic over a graph pool and a workload mix.

    Args:
        graphs: the expanders traffic is spread across (drawn uniformly per
            arrival).
        workload_mix: ``(name, params)`` pairs from
            :data:`~repro.workloads.WORKLOAD_GENERATORS` (default
            :data:`DEFAULT_WORKLOAD_MIX`); built once per (graph, spec) pair
            and replayed.
        rate: average arrivals per simulated second.
        duration: simulated horizon in seconds.
        arrival: ``"poisson"`` or ``"bursty"``.
        burst_factor / burst_period / burst_fraction: the bursty process — an
            ON window of ``burst_period * burst_fraction`` at
            ``rate * burst_factor``, then quiet at whatever rate keeps the
            average at ``rate``.
        dispatch_interval: simulated seconds per dispatch window.
        backend: the routing backend every query names.
        seed: master seed for the arrival process and the traffic picks.
    """

    def __init__(
        self,
        graphs: Sequence[nx.Graph],
        workload_mix: Sequence[tuple[str, Mapping[str, Any]]] = DEFAULT_WORKLOAD_MIX,
        rate: float = 200.0,
        duration: float = 1.0,
        arrival: str = "poisson",
        burst_factor: float = 4.0,
        burst_period: float = 0.25,
        burst_fraction: float = 0.25,
        dispatch_interval: float = 0.05,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
        seed: int = 0,
    ) -> None:
        if not graphs:
            raise ValueError("the load generator needs at least one graph")
        if rate <= 0 or duration <= 0 or dispatch_interval <= 0:
            raise ValueError("rate, duration, and dispatch_interval must be positive")
        if arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {arrival!r}; use one of {ARRIVAL_PROCESSES}")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if burst_period <= 0 or burst_factor <= 0:
            raise ValueError("burst_period and burst_factor must be positive")
        self.graphs = list(graphs)
        self.workload_mix = [(name, dict(params)) for name, params in workload_mix]
        self.rate = rate
        self.duration = duration
        self.arrival = arrival
        self.burst_factor = burst_factor
        self.burst_period = burst_period
        self.burst_fraction = burst_fraction
        self.dispatch_interval = dispatch_interval
        self.backend = backend
        self.backend_params = dict(backend_params or {})
        self.seed = seed
        self._workload_cache: dict[tuple[int, int], Workload] = {}

    # -- the arrival process ---------------------------------------------------

    def _rate_segments(self) -> list[tuple[float, float, float]]:
        """``(start, end, rate)`` pieces covering the simulated horizon."""
        if self.arrival == "poisson":
            return [(0.0, self.duration, self.rate)]
        on = self.burst_period * self.burst_fraction
        on_rate = self.rate * self.burst_factor
        # Solve the quiet rate so the average over a full period equals
        # ``rate``; clamp at zero when the burst alone carries the average.
        off_rate = max(
            0.0,
            (self.rate * self.burst_period - on_rate * on) / (self.burst_period - on),
        )
        segments = []
        start = 0.0
        while start < self.duration:
            segments.append((start, min(start + on, self.duration), on_rate))
            if start + on < self.duration:
                segments.append(
                    (start + on, min(start + self.burst_period, self.duration), off_rate)
                )
            start += self.burst_period
        return segments

    def arrival_times(self) -> list[float]:
        """Every arrival's simulated timestamp, deterministic for the seed."""
        rng = random.Random(self.seed)
        times: list[float] = []
        for start, end, rate in self._rate_segments():
            if rate <= 0:
                continue
            t = start
            while True:
                t += rng.expovariate(rate)
                if t >= end:
                    break
                times.append(t)
        return times

    # -- traffic --------------------------------------------------------------

    def _pick(self, rng: random.Random) -> tuple[nx.Graph, Workload]:
        graph_index = rng.randrange(len(self.graphs))
        spec_index = rng.randrange(len(self.workload_mix))
        key = (graph_index, spec_index)
        workload = self._workload_cache.get(key)
        if workload is None:
            name, params = self.workload_mix[spec_index]
            workload = make_workload(name, self.graphs[graph_index], **params)
            self._workload_cache[key] = workload
        return self.graphs[graph_index], workload

    def run(
        self,
        coordinator: ClusterCoordinator,
        fault_plan: "FaultPlan | None" = None,
        autoscaler: "Autoscaler | None" = None,
        supervisor: Any = None,
    ) -> SLOReport:
        """Drive the cluster with the whole arrival schedule; report SLOs.

        ``coordinator`` is anything with the coordinator's driving surface —
        ``submit`` / ``dispatch`` / ``admission_totals`` — so a
        :class:`~repro.net.client.ClusterClient` pointed at a gateway runs the
        identical schedule over the network (the per-window round trip is
        recorded either way, so the two transports are directly comparable).

        With a ``fault_plan``, a :class:`~repro.elastic.FaultInjector` applies
        the plan's events on the simulated clock at each window boundary and a
        coordinator health check reaps dead shards before the window's
        submits, so requeued work routes straight to its new owners.  With an
        ``autoscaler``, the policy is evaluated once per window — after the
        window's arrivals are queued (depth at its peak), before dispatch.
        Both require a real :class:`ClusterCoordinator`; after the schedule,
        any still-queued work (requeued by failovers or left by a trailing
        scale-down) is drained so the report accounts for every admitted
        batch.

        ``supervisor`` enables the plan's *process-level* events
        (``coordinator-crash`` / ``gateway-crash``): anything with the
        ``crash_coordinator()`` / ``crash_gateway()`` hooks, typically a
        :class:`~repro.durability.CoordinatorSupervisor`.  Process crashes
        are applied after a window's submits and before its dispatch — the
        crash point where admitted work is journaled but unserved — and the
        run transparently continues against the recovered replacement.
        """
        injector = None
        if fault_plan is not None:
            from repro.elastic.faults import FaultInjector

            injector = FaultInjector(coordinator, fault_plan, supervisor=supervisor)
        arrivals = self.arrival_times()
        windows: dict[int, int] = {}
        for t in arrivals:
            windows[int(t / self.dispatch_interval)] = (
                windows.get(int(t / self.dispatch_interval), 0) + 1
            )
        rng = random.Random(self.seed + 1)
        before = coordinator.admission_totals()
        lost0 = getattr(coordinator, "lost_batches", 0)
        requeued0 = getattr(coordinator, "requeued_batches", 0)
        failovers0 = getattr(coordinator, "failovers", 0)
        duplicates0 = getattr(coordinator, "duplicate_results", 0)
        scale_events0 = len(autoscaler.events) if autoscaler is not None else 0
        report = SLOReport(offered=len(arrivals), simulated_seconds=self.duration)
        started = time.perf_counter()
        for window in sorted(windows):
            now = (window + 1) * self.dispatch_interval
            failovers_before = getattr(coordinator, "failovers", 0)
            if injector is not None:
                injector.advance(now)
                check_health = getattr(coordinator, "check_health", None)
                if check_health is not None:
                    check_health()
            for _ in range(windows[window]):
                graph, workload = self._pick(rng)
                decision = coordinator.submit(
                    graph,
                    workload,
                    backend=self.backend,
                    backend_params=self.backend_params,
                )
                # A duplicate means the earlier admission of the same key
                # stands (a crash-retry resubmission) — still admitted work,
                # not a drop.
                if decision.accepted or getattr(decision, "duplicate", False):
                    report.admitted += 1
            if injector is not None and injector.advance_process(now):
                # A process crash landed between submit and dispatch; drive
                # the recovered replacement from here on.
                coordinator = injector.coordinator
            if autoscaler is not None:
                autoscaler.evaluate(now)
            self._dispatch_once(coordinator, report, failovers_before)
            if autoscaler is not None:
                autoscaler.observe(report.cluster_reports[-1])
        # Flush plan events past the last arrival (a late rejoin, say), then
        # drain whatever failovers or scale-downs pushed back onto the queues
        # — admitted work must complete, not linger.
        if injector is not None:
            injector.advance(self.duration)
            if injector.advance_process(self.duration):
                coordinator = injector.coordinator
            check_health = getattr(coordinator, "check_health", None)
            if check_health is not None:
                check_health()
        while getattr(coordinator, "pending_count", 0) > 0:
            failovers_before = getattr(coordinator, "failovers", 0)
            drained = self._dispatch_once(coordinator, report, failovers_before)
            if drained.query_count == 0 and getattr(coordinator, "pending_count", 0) > 0:
                break  # nothing is serving; the remainder is genuinely lost
        report.wall_seconds = time.perf_counter() - started
        after = coordinator.admission_totals()
        report.rejected = after.rejected - before.rejected
        report.shed = after.shed - before.shed
        # Shed items were admitted once and then dropped from the queue; they
        # never complete, so subtract them from the admitted count.
        report.admitted -= report.shed
        report.lost_batches = getattr(coordinator, "lost_batches", 0) - lost0
        report.requeued_batches = getattr(coordinator, "requeued_batches", 0) - requeued0
        report.failovers = getattr(coordinator, "failovers", 0) - failovers0
        report.duplicate_results = getattr(coordinator, "duplicate_results", 0) - duplicates0
        if autoscaler is not None:
            report.scale_events = [
                event.as_row() for event in autoscaler.events[scale_events0:]
            ]
        if injector is not None:
            report.fault_events = injector.as_rows()
        return report

    @staticmethod
    def _dispatch_once(
        coordinator: ClusterCoordinator, report: SLOReport, failovers_before: int
    ) -> ClusterReport:
        """One timed dispatch, tagging the window if it absorbed a failover."""
        dispatch_started = time.perf_counter()
        cluster_report = coordinator.dispatch()
        report.round_trip_seconds.append(time.perf_counter() - dispatch_started)
        if getattr(coordinator, "failovers", failovers_before) != failovers_before:
            report.failover_windows.append(len(report.cluster_reports))
        report.cluster_reports.append(cluster_report)
        report.completed += cluster_report.query_count
        return cluster_report
