"""Fused cross-query batch kernels — one stacked call for many queries.

The numpy kernels of :mod:`repro.kernels.dispersion` and
:mod:`repro.kernels.scheduler` removed the per-*token* Python loops, but the
serving layer still ran one full kernel invocation per query: a warm batch of
``B`` same-graph queries paid ``B`` times the fixed per-call cost (counts
matrix setup, per-origin partner loops, the scheduler's round loop).  This
module gives those kernels a *batch axis*:

* :func:`plan_transfers_batched` plans one shuffler iteration for ``B``
  dispersion states at once — the counts matrix grows a leading batch
  dimension and the largest-remainder rounding, tie-breaking, and emission
  order are reproduced per batch entry bit for bit (the batch index becomes
  the outermost ``lexsort`` key, so each entry's block orders exactly as the
  single-query kernel orders it);
* :func:`disperse_many_numpy` replays a whole shuffler on ``B`` states with
  one planning pass per matching, using a *union* mark axis.  Marks a state
  does not hold occupy all-zero columns, and zero columns are inert under the
  rounding rule (zero amounts, zero floors, zero remainders — bumps are
  confined to each ``(batch, mark)`` block), so every state's transfers,
  statistics, and charged rounds are identical to a solo
  :func:`~repro.kernels.dispersion.disperse_numpy` run;
* :func:`schedule_token_batches_numpy` resolves edge conflicts for ``B``
  independent scheduler instances in a single pending loop — per-batch edge
  codes are offset into disjoint ranges, so the one ``np.unique`` winner
  scan per round settles every batch's contested edges simultaneously.

``tests/test_fused.py`` asserts the equivalences with hypothesis over random
expanders and the workload catalog.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.scheduler import ScheduledToken, ScheduleResult
    from repro.core.dispersion import DispersionState, DispersionStats
    from repro.cutmatching.shuffler import Shuffler

__all__ = [
    "plan_transfers_batched",
    "disperse_many_numpy",
    "schedule_token_batches_numpy",
]


def plan_transfers_batched(counts: np.ndarray, matching) -> list[list[tuple[int, int, int, int]]]:
    """One iteration's transfers for every batch entry at once.

    Args:
        counts: int64 array of shape ``(B, t, m)`` — per batch entry, the
            per-(part, mark) token counts snapshot.
        matching: the shuffler matching being replayed.

    Returns:
        Per batch entry, the ``(origin, target, mark_index, amount)`` list in
        exactly the order :func:`repro.kernels.dispersion._plan_transfers`
        produces for that entry's counts alone.
    """
    from repro.kernels.dispersion import _partner_table

    batch = counts.shape[0]
    transfers: list[list[tuple[int, int, int, int]]] = [[] for _ in range(batch)]
    for origin, (half_values, targets, target_order, sorted_targets) in _partner_table(
        matching
    ).items():
        rows = counts[:, origin, :]
        if targets.size == 1:
            # One partner: allocation is the plain floor (see the solo kernel).
            allocation = np.floor(half_values[0] * rows).astype(np.int64)
            target = int(targets[0])
            for entry, mark_index in np.argwhere(allocation > 0):
                transfers[entry].append(
                    (origin, target, int(mark_index), int(allocation[entry, mark_index]))
                )
            continue

        group_size = targets.size
        mark_count = rows.shape[1]
        amounts = half_values[None, :, None] * rows[:, None, :]
        floors = np.floor(amounts)
        allocation = floors.astype(np.int64)
        # Sequential accumulation over partners, matching the reference's
        # builtins.sum order bit for bit (independent per batch entry).
        totals = amounts[:, 0, :].copy()
        for i in range(1, group_size):
            totals += amounts[:, i, :]
        budget = np.minimum(rows, np.floor(totals).astype(np.int64))
        remaining = budget - allocation.sum(axis=1)
        if (remaining > 0).any():
            fractions = amounts - floors
            # The batch index is the outermost lexsort key: within one
            # entry's block the order is exactly the solo kernel's
            # (mark, -fraction, target) order.
            mark_key = np.tile(np.repeat(np.arange(mark_count), group_size), batch)
            batch_key = np.repeat(np.arange(batch), mark_count * group_size)
            fraction_key = fractions.transpose(0, 2, 1).ravel()
            target_key = np.tile(targets, batch * mark_count)
            order = np.lexsort((target_key, -fraction_key, mark_key, batch_key))
            position_in_mark = np.arange(batch * mark_count * group_size) % group_size
            bump = position_in_mark < np.repeat(remaining.ravel(), group_size)
            flat = allocation.transpose(0, 2, 1).copy().ravel()
            flat[order[bump]] += 1
            allocation = flat.reshape(batch, mark_count, group_size).transpose(0, 2, 1)
        emitted = allocation[:, target_order, :]
        for entry, mark_index, target_position in np.argwhere(emitted.transpose(0, 2, 1) > 0):
            transfers[entry].append(
                (
                    origin,
                    int(sorted_targets[target_position]),
                    int(mark_index),
                    int(emitted[entry, target_position, mark_index]),
                )
            )
    return transfers


def disperse_many_numpy(
    states: Sequence["DispersionState"],
    shuffler: "Shuffler",
    part_sizes,
    flatten_quality: int,
) -> list["DispersionStats"]:
    """Replay the shuffler on every state with one planning pass per matching.

    Token movements, statistics, and round counts per state are identical to
    calling :func:`~repro.kernels.dispersion.disperse_numpy` on each state
    alone; the batching only amortizes the per-iteration planning work.
    """
    from repro.core.cost import send_round_cost, sort_round_cost
    from repro.core.dispersion import DispersionStats

    batch = len(states)
    if batch == 0:
        return []
    t = states[0].part_count

    own_marks = [state.marks() for state in states]
    union_marks = sorted(set().union(*[set(marks) for marks in own_marks]), key=repr)
    mark_column = {mark: column for column, mark in enumerate(union_marks)}
    counts = np.zeros((batch, t, max(len(union_marks), 1)), dtype=np.int64)
    for entry, state in enumerate(states):
        for part, per_mark in state.queues.items():
            for mark, items in per_mark.items():
                if items:
                    counts[entry, part, mark_column[mark]] = len(items)

    stats_list = [DispersionStats() for _ in range(batch)]
    max_part_size = max(part_sizes) if part_sizes else 1
    part_of = shuffler.part_of
    rounds = [0] * batch
    for matching in shuffler.matchings:
        planned = (
            plan_transfers_batched(counts, matching)
            if union_marks
            else [[] for _ in range(batch)]
        )
        for entry, state in enumerate(states):
            stats = stats_list[entry]
            stats.iterations += 1
            outgoing: dict[tuple[int, int], int] = {}
            for origin, target, mark_index, amount in planned[entry]:
                mark = union_marks[mark_index]
                items = state.pop_front(origin, mark, amount)
                state.push_back(target, mark, items)
                moved = len(items)
                counts[entry, origin, mark_index] -= moved
                counts[entry, target, mark_index] += moved
                outgoing[(origin, target)] = outgoing.get((origin, target), 0) + moved

            # -- round accounting for this iteration (Lemma 6.7) -------------
            current_max_load = int(counts[entry].sum(axis=1).max(initial=0))
            stats.max_part_load = max(stats.max_part_load, current_max_load)
            per_part_load = max(1, math.ceil(current_max_load / max(1, max_part_size)))
            portal_sort = sort_round_cost(max_part_size, per_part_load, flatten_quality)
            tokens_per_portal = 1
            for (origin, target), amount in outgoing.items():
                portal_pairs = max(1, matching.portal_pair_count(part_of, origin, target))
                tokens_per_portal = max(tokens_per_portal, math.ceil(amount / portal_pairs))
            send = send_round_cost(tokens_per_portal, matching.quality * max(1, flatten_quality))
            rounds[entry] += portal_sort + send

    # -- Definition 6.1 window check, per state over its own marks -------------
    total_vertices = sum(part_sizes) if part_sizes else t
    for entry, state in enumerate(states):
        stats = stats_list[entry]
        stats.rounds = rounds[entry]
        for mark in own_marks[entry]:
            column = mark_column[mark]
            total = int(counts[entry, :, column].sum())
            stats.mark_totals[mark] = total
            lower = 0.9 * total / t - 0.1 * total_vertices / (t * t)
            upper = 1.1 * total / t + 0.1 * total_vertices / (t * t)
            slack = stats.iterations * 1.0
            for part in range(t):
                count = int(counts[entry, part, column])
                stats.final_counts[(part, mark)] = count
                stats.total_cells += 1
                if lower - slack <= count <= upper + slack:
                    stats.within_window += 1
    return stats_list


def _interned_paths(tokens: Sequence["ScheduledToken"]):
    """Flat vertex array + per-token lengths for one scheduler instance.

    Mirrors the interning of :func:`repro.kernels.scheduler.schedule_tokens_numpy`
    (wholesale integer conversion with a dict-intern fallback).
    """
    path_lengths = np.fromiter(
        (len(token.path) for token in tokens), dtype=np.int64, count=len(tokens)
    )
    flat_list = [vertex for token in tokens for vertex in token.path]
    try:
        flat = np.asarray(flat_list)
        if flat.ndim != 1 or not np.issubdtype(flat.dtype, np.integer):
            raise TypeError("non-integer vertex ids")
        flat = flat.astype(np.int64)
        if flat.size and int(flat.min()) < 0:
            raise ValueError("negative vertex ids; intern instead")
        vertex_count = int(flat.max()) + 1 if flat.size else 1
        if vertex_count >= 2**31:
            raise ValueError("vertex id range too wide for direct edge codes")
    except (TypeError, ValueError, OverflowError):
        vertex_index: dict = {}
        flat = np.empty(len(flat_list), dtype=np.int64)
        for position, vertex in enumerate(flat_list):
            index = vertex_index.get(vertex)
            if index is None:
                index = vertex_index[vertex] = len(vertex_index)
            flat[position] = index
        vertex_count = len(vertex_index)
    return flat, path_lengths, max(vertex_count, 1)


def schedule_token_batches_numpy(
    batches: Sequence[Sequence["ScheduledToken"]],
) -> list["ScheduleResult"]:
    """Schedule ``B`` independent instances through one conflict-resolution loop.

    Per-batch edge codes are offset into disjoint integer ranges, so batches
    can never contend for the same code and the single first-occurrence scan
    per round resolves every batch's conflicts exactly as a solo run would.
    Rounds, congestion, dilation, and arrival rounds per batch are identical
    to :func:`~repro.kernels.scheduler.schedule_tokens_numpy` on that batch.
    """
    from repro.congest.scheduler import ScheduleResult

    results: list[ScheduleResult | None] = [None] * len(batches)
    code_parts: list[np.ndarray] = []
    length_parts: list[np.ndarray] = []
    token_meta: list[tuple[int, int]] = []  # flat token index -> (batch, token_id)
    congestions: list[int] = []
    dilations: list[int] = []
    round_limits: list[int] = []
    code_base = 0
    for batch_index, tokens in enumerate(batches):
        if not tokens:
            results[batch_index] = ScheduleResult(rounds=0, congestion=0, dilation=0)
            congestions.append(0)
            dilations.append(0)
            round_limits.append(1)
            continue
        flat, path_lengths, vertex_count = _interned_paths(tokens)
        lengths = path_lengths - 1
        dilation = int(lengths.max(initial=0))
        offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
        np.cumsum(path_lengths, out=offsets[1:])
        if flat.size >= 2:
            hop_mask = np.ones(flat.size - 1, dtype=bool)
            boundaries = offsets[1:-1] - 1
            hop_mask[boundaries[boundaries < hop_mask.size]] = False
            u, v = flat[:-1][hop_mask], flat[1:][hop_mask]
            flat_codes = np.minimum(u, v) * vertex_count + np.maximum(u, v)
        else:
            flat_codes = np.empty(0, dtype=np.int64)
        congestion = 0
        if flat_codes.size:
            congestion = int(np.bincount(np.unique(flat_codes, return_inverse=True)[1]).max())
        congestions.append(congestion)
        dilations.append(dilation)
        round_limits.append(max(1, congestion * dilation + dilation + 1))
        code_span = vertex_count * vertex_count + 1
        if code_base > 2**62 - code_span:
            # Offset range exhausted (absurdly large batches): the caller
            # falls back to per-batch scheduling.
            raise OverflowError("edge-code offset range exhausted")
        code_parts.append(flat_codes + code_base)
        code_base += code_span
        length_parts.append(lengths)
        # Per-batch token-id order is preserved under one global sort by
        # keying (batch, token_id); batches share no edge codes, so the
        # cross-batch interleave cannot change any winner.
        token_ids = np.fromiter(
            (token.token_id for token in tokens), dtype=np.int64, count=len(tokens)
        )
        token_meta.extend((batch_index, int(token_id)) for token_id in token_ids)
    all_codes = (
        np.concatenate(code_parts) if code_parts else np.empty(0, dtype=np.int64)
    )
    all_lengths = (
        np.concatenate(length_parts) if length_parts else np.empty(0, dtype=np.int64)
    )
    token_batch = np.fromiter((b for b, _ in token_meta), dtype=np.int64, count=len(token_meta))
    token_id_of = np.fromiter((t for _, t in token_meta), dtype=np.int64, count=len(token_meta))
    offsets = np.zeros(len(token_meta) + 1, dtype=np.int64)
    np.cumsum(all_lengths, out=offsets[1:])

    arrivals: list[dict[int, int]] = [dict() for _ in batches]
    for index in range(len(token_meta)):
        if all_lengths[index] == 0:
            arrivals[int(token_batch[index])][int(token_id_of[index])] = 0

    # Pending token indices sorted by (batch, token_id): within each batch the
    # order matches the solo kernel's sorted-by-token-id pending array.
    order_key = np.lexsort((token_id_of, token_batch))
    pending = order_key[all_lengths[order_key] > 0]
    position = np.zeros(len(token_meta), dtype=np.int64)
    max_rounds = [0] * len(batches)

    rounds = 0
    round_limit = max(round_limits, default=1)
    while pending.size and rounds < round_limit:
        rounds += 1
        codes = all_codes[offsets[pending] + position[pending]]
        _, first = np.unique(codes, return_index=True)
        advanced = np.zeros(pending.size, dtype=bool)
        advanced[first] = True
        movers = pending[advanced]
        position[movers] += 1
        done = position[movers] == all_lengths[movers]
        for index in movers[done]:
            entry = int(token_batch[index])
            arrivals[entry][int(token_id_of[index])] = rounds
            max_rounds[entry] = max(max_rounds[entry], rounds)
        finished = np.zeros(pending.size, dtype=bool)
        finished[np.flatnonzero(advanced)[done]] = True
        pending = pending[~finished]
    if pending.size:
        raise RuntimeError("scheduler failed to deliver all tokens within the round limit")

    for batch_index, tokens in enumerate(batches):
        if results[batch_index] is not None:
            continue
        results[batch_index] = ScheduleResult(
            rounds=max_rounds[batch_index],
            congestion=congestions[batch_index],
            dilation=dilations[batch_index],
            arrival_round=arrivals[batch_index],
        )
    return [result for result in results if result is not None]
