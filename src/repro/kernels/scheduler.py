"""Vectorized token scheduler (Fact 2.2) — numpy twin of :mod:`repro.congest.scheduler`.

The reference scheduler advances tokens one hop per round with a Python loop
over every pending token.  The numpy kernel simulates the *same* deterministic
policy on integer arrays:

* vertices are interned to dense integers once, and every hop becomes one
  integer edge code ``min(u, v) * n + max(u, v)``;
* within one round, the winner of each contested edge is the pending token
  with the smallest ``token_id`` — with the pending array kept sorted by
  token id, that is exactly the first occurrence of each edge code, which
  ``np.unique(..., return_index=True)`` yields directly.

The outcome (rounds, congestion, dilation, per-token arrival rounds) is
identical to the reference implementation; ``tests/test_kernels.py`` asserts
this over random expanders and workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.scheduler import ScheduledToken, ScheduleResult

__all__ = ["schedule_tokens_numpy"]


def schedule_tokens_numpy(tokens: Sequence["ScheduledToken"]) -> "ScheduleResult":
    """Numpy implementation of ``schedule_tokens_along_paths`` (identical results)."""
    from repro.congest.scheduler import ScheduleResult

    if not tokens:
        return ScheduleResult(rounds=0, congestion=0, dilation=0)

    # Flatten every path into one vertex array (one conversion for the whole
    # instance).  Integer vertex ids — the common case — convert wholesale;
    # anything else falls back to a dict intern.  Only identity matters.
    path_lengths = np.fromiter(
        (len(token.path) for token in tokens), dtype=np.int64, count=len(tokens)
    )
    flat_list = [vertex for token in tokens for vertex in token.path]
    try:
        flat = np.asarray(flat_list)
        if flat.ndim != 1 or not np.issubdtype(flat.dtype, np.integer):
            # Floats would silently truncate under an int cast; intern instead.
            raise TypeError("non-integer vertex ids")
        flat = flat.astype(np.int64)
        if flat.size and int(flat.min()) < 0:
            raise ValueError("negative vertex ids; intern instead")
        vertex_count = int(flat.max()) + 1 if flat.size else 1
        if vertex_count >= 2**31:
            # Edge codes are min*count+max; huge sparse labels would overflow
            # int64 and alias distinct edges.  Intern to dense ids instead.
            raise ValueError("vertex id range too wide for direct edge codes")
    except (TypeError, ValueError, OverflowError):
        vertex_index: dict = {}
        flat = np.empty(len(flat_list), dtype=np.int64)
        for position, vertex in enumerate(flat_list):
            index = vertex_index.get(vertex)
            if index is None:
                index = vertex_index[vertex] = len(vertex_index)
            flat[position] = index
        vertex_count = len(vertex_index)
    vertex_count = max(vertex_count, 1)

    lengths = path_lengths - 1
    dilation = int(lengths.max(initial=0))

    # Hop edge codes for all tokens at once: consecutive flat pairs, with the
    # pairs that straddle two paths masked out.
    vertex_offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
    np.cumsum(path_lengths, out=vertex_offsets[1:])
    if flat.size >= 2:
        hop_mask = np.ones(flat.size - 1, dtype=bool)
        boundaries = vertex_offsets[1:-1] - 1
        hop_mask[boundaries[boundaries < hop_mask.size]] = False
        u, v = flat[:-1][hop_mask], flat[1:][hop_mask]
        flat_codes = np.minimum(u, v) * vertex_count + np.maximum(u, v)
    else:
        flat_codes = np.empty(0, dtype=np.int64)
    offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])

    congestion = 0
    if flat_codes.size:
        congestion = int(np.bincount(np.unique(flat_codes, return_inverse=True)[1]).max())

    token_ids = np.array([token.token_id for token in tokens], dtype=np.int64)
    arrival: dict[int, int] = {
        int(token_ids[i]): 0 for i in range(len(tokens)) if lengths[i] == 0
    }

    # Pending token *indices*, kept sorted by token id (matching the
    # reference's sorted(pending, key=token_id) per-round order).
    pending = np.argsort(token_ids, kind="stable")
    pending = pending[lengths[pending] > 0]
    position = np.zeros(len(tokens), dtype=np.int64)

    rounds = 0
    round_limit = max(1, congestion * dilation + dilation + 1)
    while pending.size and rounds < round_limit:
        rounds += 1
        codes = flat_codes[offsets[pending] + position[pending]]
        # First occurrence per distinct edge code == smallest token id, since
        # `pending` is sorted by token id.
        _, first = np.unique(codes, return_index=True)
        advanced = np.zeros(pending.size, dtype=bool)
        advanced[first] = True
        movers = pending[advanced]
        position[movers] += 1
        done = position[movers] == lengths[movers]
        for index in movers[done]:
            arrival[int(token_ids[index])] = rounds
        finished = np.zeros(pending.size, dtype=bool)
        finished[np.flatnonzero(advanced)[done]] = True
        pending = pending[~finished]
    if pending.size:
        raise RuntimeError("scheduler failed to deliver all tokens within the round limit")
    return ScheduleResult(
        rounds=rounds,
        congestion=congestion,
        dilation=dilation,
        arrival_round=arrival,
    )
