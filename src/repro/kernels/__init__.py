"""Selectable compute kernels for the simulation hot paths.

The reproduction has two implementations of every hot inner loop:

* ``reference`` — the original dict-and-loop implementations, kept as the
  faithful (and slow) executable specification.  Selecting it also disables
  the deterministic memoizations (shuffler-quality caches, portal tables,
  dummy-dispersion replay cache), so the reference mode reproduces the
  pre-kernel serving behaviour end to end — it is the baseline the
  perf-regression harness (``benchmarks/harness.py``) measures against.
* ``numpy`` — vectorized kernels over integer-indexed arrays plus the
  memoized fast paths.  This is the default.  The kernels are *equivalent by
  construction and by test*: rounds, deliveries, congestion/dilation and
  every backend :class:`~repro.backends.base.RouteResult` are identical to
  the reference implementations (``tests/test_kernels.py`` asserts this
  property-based over random expanders and workloads).

Selection: the ``REPRO_KERNEL`` environment variable (read lazily, so tests
and the harness can flip it), or programmatically via :func:`set_kernel` /
the :func:`kernel` context manager, which override the environment.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "KERNELS",
    "active_kernel",
    "use_numpy",
    "set_kernel",
    "kernel",
]

#: The recognised kernel implementations.
KERNELS = ("reference", "numpy")

_DEFAULT = "numpy"
_override: str | None = None


def _validated(name: str) -> str:
    value = name.strip().lower()
    if value not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of {', '.join(KERNELS)}")
    return value


def active_kernel() -> str:
    """The kernel in effect: the programmatic override, else ``REPRO_KERNEL``, else numpy."""
    if _override is not None:
        return _override
    value = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if not value:
        return _DEFAULT
    return _validated(value)


def use_numpy() -> bool:
    """True when the vectorized kernels (and the memoized fast paths) are active."""
    return active_kernel() == "numpy"


def set_kernel(name: str | None) -> None:
    """Set (or with ``None`` clear) the programmatic kernel override."""
    global _override
    _override = None if name is None else _validated(name)


@contextmanager
def kernel(name: str) -> Iterator[None]:
    """Context manager selecting a kernel for the enclosed block (used by tests)."""
    global _override
    previous = _override
    _override = _validated(name)
    try:
        yield
    finally:
        _override = previous
