"""Vectorized comparator-network simulation — numpy twin of the merge-split engine.

The reference :class:`~repro.sorting.expander_sort.ComparatorSortEngine`
executes every comparator of the Batcher network with a Python ``sorted`` over
the two touched vertices' token lists.  The kernel simulates the identical
network on an integer slot matrix:

* every token is interned once and given a dense *key rank* by a single
  stable sort over the same ``(comparable key, repr(tag))`` tuples the
  reference engine compares — equal tuples share a rank;
* padding slots carry a rank after every real rank (the "+infinity" token);
* one network layer = one batched merge-split: gather the touched slot rows,
  one stable ``argsort`` per row pair, scatter the lower/upper halves back.
  Comparators within a layer are disjoint by :class:`SortingNetwork`'s
  contract, so a whole layer is a single vectorized step.

Stable rank sorting reproduces Python's stable ``sorted`` on the concatenated
slot lists exactly, so the final placement (including the order of equal-key
tokens) is identical to the reference engine's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sorting.expander_sort import ExpanderSortResult, SortItem
    from repro.sorting.networks import SortingNetwork

__all__ = ["comparator_sort_numpy"]


def comparator_sort_numpy(
    vertex_order: Sequence[Hashable],
    items_at: dict[Hashable, list["SortItem"]],
    load: int,
    exchange_quality: int,
    network: "SortingNetwork",
) -> "ExpanderSortResult":
    """Numpy implementation of ``ComparatorSortEngine.sort`` (identical results)."""
    from repro.sorting.expander_sort import (
        ExpanderSortResult,
        SortPlacement,
        _comparable_key,
        _sorting_round_cost,
    )

    vertices = list(vertex_order)
    padded_load = max(
        load, max((len(value) for value in items_at.values()), default=0), 1
    )

    # Intern all tokens; initial slots are each vertex's locally sorted list,
    # exactly as the reference engine lays them out before the network runs.
    tokens: list["SortItem"] = []
    token_keys: list[tuple] = []
    initial: list[list[int]] = []
    for vertex in vertices:
        local = sorted(
            items_at.get(vertex, []),
            key=lambda item: (_comparable_key(item.key), repr(item.tag)),
        )
        row = []
        for item in local:
            row.append(len(tokens))
            tokens.append(item)
            token_keys.append((_comparable_key(item.key), repr(item.tag)))
        initial.append(row)

    # Dense key ranks: equal sort tuples share a rank, so a stable argsort on
    # ranks reproduces the reference's stable sorted() on the tuples.
    order = sorted(range(len(tokens)), key=lambda index: token_keys[index])
    ranks = np.empty(len(tokens) + 1, dtype=np.int64)
    next_rank = -1
    previous_key = object()
    for position in order:
        key = token_keys[position]
        if key != previous_key:
            next_rank += 1
            previous_key = key
        ranks[position] = next_rank
    pad_rank = next_rank + 1
    ranks[-1] = pad_rank  # index -1 = the padding token

    slot_ids = np.full((len(vertices), padded_load), -1, dtype=np.int64)
    for row_index, row in enumerate(initial):
        slot_ids[row_index, : len(row)] = row

    exchanges = 0
    for layer in network.layers:
        if not layer:
            continue
        lows = np.fromiter((low for low, _ in layer), dtype=np.int64, count=len(layer))
        highs = np.fromiter((high for _, high in layer), dtype=np.int64, count=len(layer))
        merged = np.concatenate((slot_ids[lows], slot_ids[highs]), axis=1)
        merged_ranks = ranks[merged]
        ordering = np.argsort(merged_ranks, axis=1, kind="stable")
        merged = np.take_along_axis(merged, ordering, axis=1)
        slot_ids[lows] = merged[:, :padded_load]
        slot_ids[highs] = merged[:, padded_load:]
        exchanges += len(layer)

    placement = SortPlacement(
        items_at={
            vertex: [tokens[index] for index in slot_ids[row_index] if index >= 0]
            for row_index, vertex in enumerate(vertices)
        }
    )
    max_load = max((len(value) for value in placement.items_at.values()), default=0)
    rounds = _sorting_round_cost(network.depth, padded_load, exchange_quality)
    return ExpanderSortResult(
        placement=placement,
        rounds=rounds,
        network_depth=network.depth,
        max_load=max_load,
        comparator_exchanges=exchanges,
    )
