"""Vectorized cut-matching matrix steps — numpy twins of the potential/cut-player loops.

* :func:`walk_matrix_numpy` builds the lazy-walk matrix ``R_M`` of
  Definition 5.2 with ``np.add.at`` scatters instead of a Python loop over
  the fractional matching.  ``np.add.at`` applies its updates sequentially in
  input order, i.e. the exact floating-point addition sequence the reference
  loop performs, so the matrices are bit-identical.
* :func:`pairwise_separation_numpy` evaluates the cut player's diagnostic
  ``sum_{y in S} min_{s in S'} ||R[y] - R[s]||^2`` with one broadcasted
  distance matrix instead of ``|S| * |S'|`` row loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cutmatching.potential import FractionalMatching

__all__ = ["walk_matrix_numpy", "pairwise_separation_numpy"]


def walk_matrix_numpy(size: int, matching: "FractionalMatching") -> np.ndarray:
    """Numpy implementation of :func:`repro.cutmatching.potential.walk_matrix`."""
    matrix = np.zeros((size, size), dtype=float)
    degree = np.zeros(size, dtype=float)
    if matching:
        pairs = np.array(
            [(i, j) for (i, j) in matching.keys()], dtype=np.int64
        ).reshape(-1, 2)
        values = np.fromiter(matching.values(), dtype=float, count=len(matching))
        off_diagonal = pairs[:, 0] != pairs[:, 1]
        pairs, values = pairs[off_diagonal], values[off_diagonal]
        if pairs.size:
            if pairs.min() < 0 or pairs.max() >= size:
                bad = pairs[(pairs < 0).any(axis=1) | (pairs >= size).any(axis=1)][0]
                raise ValueError(
                    f"matching edge ({bad[0]}, {bad[1]}) outside the cluster graph"
                )
            if values.min() < -1e-12:
                raise ValueError("fractional matching values must be non-negative")
            half = 0.5 * values
            np.add.at(matrix, (pairs[:, 0], pairs[:, 1]), half)
            np.add.at(matrix, (pairs[:, 1], pairs[:, 0]), half)
            np.add.at(degree, pairs[:, 0], values)
            np.add.at(degree, pairs[:, 1], values)
    if np.any(degree > 1.0 + 1e-9):
        raise ValueError("fractional degree exceeds one; not a fractional matching")
    diagonal = 0.5 + 0.5 * (1.0 - degree)
    matrix[np.arange(size), np.arange(size)] = diagonal
    return matrix


def pairwise_separation_numpy(
    walk_matrix: np.ndarray, small: Sequence[int], large: Sequence[int]
) -> float:
    """Sum over ``small`` of the squared distance to the nearest ``large`` row."""
    if not len(small) or not len(large):
        return 0.0
    rows_small = walk_matrix[np.asarray(small, dtype=np.int64)]
    rows_large = walk_matrix[np.asarray(large, dtype=np.int64)]
    differences = rows_small[:, None, :] - rows_large[None, :, :]
    distances = np.einsum("ijk,ijk->ij", differences, differences)
    return float(distances.min(axis=1).sum())
