"""Vectorized cut/expansion estimators — numpy twins of :mod:`repro.graphs.conductance`.

Two kernels:

* :func:`exact_conductance_numpy` / :func:`exact_sparsity_numpy` — brute-force
  minimisation over all cuts, with subsets encoded as bitmasks.  Each edge
  contributes ``in(u) XOR in(v)`` to the boundary of every subset at once, so
  the whole enumeration is ``O(E * 2^(n-1))`` vectorized word operations
  instead of ``2^(n-1)`` Python set constructions.
* :func:`sweep_cut_best_prefix_numpy` — the Fiedler sweep's prefix scan: when
  the prefix grows by one vertex ``v``, the boundary changes by
  ``deg(v) - 2 * |N(v) ∩ prefix|``, so all prefix conductances come from two
  cumulative sums over the reordered adjacency matrix.

Every division performed here is the same IEEE-754 operation the reference
implementations perform on the same integers, so minima (and therefore the
selected cuts) are identical, not merely close.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx
import numpy as np

__all__ = [
    "exact_conductance_numpy",
    "exact_sparsity_numpy",
    "sweep_cut_best_prefix_numpy",
]


def _subset_boundaries(graph: nx.Graph, nodes: list) -> tuple[np.ndarray, np.ndarray]:
    """Boundary size and volume of every subset containing ``nodes[0]``.

    Subsets are encoded as masks over ``nodes[1:]`` (bit ``i`` = ``nodes[i+1]``
    in the subset); ``nodes[0]`` is always a member, which enumerates each cut
    exactly once.  Returns ``(boundary, volume)`` arrays of length ``2^(n-1)``.
    """
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}
    masks = np.arange(1 << (n - 1), dtype=np.int64)

    # Membership indicator per vertex per mask; vertex 0 is always inside.
    member = np.empty((n, masks.size), dtype=bool)
    member[0] = True
    for i in range(1, n):
        member[i] = (masks >> (i - 1)) & 1 == 1

    boundary = np.zeros(masks.size, dtype=np.int64)
    for u, v in graph.edges():
        iu, iv = index[u], index[v]
        if iu == iv:
            continue
        boundary += member[iu] ^ member[iv]

    degrees = np.array([graph.degree(node) for node in nodes], dtype=np.int64)
    volume = np.zeros(masks.size, dtype=np.int64)
    for i in range(n):
        volume += degrees[i] * member[i]
    return boundary, volume


def exact_conductance_numpy(graph: nx.Graph) -> float:
    """Exact ``Phi(G)`` by vectorized brute force (identical to the reference)."""
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        return math.inf
    boundary, volume = _subset_boundaries(graph, nodes)
    total_volume = int(sum(graph.degree(node) for node in nodes))
    denominator = np.minimum(volume, total_volume - volume)
    with np.errstate(divide="ignore", invalid="ignore"):
        phi = np.where(denominator > 0, boundary / denominator, math.inf)
    phi[-1] = math.inf  # the full vertex set is not a cut
    return float(phi.min())


def exact_sparsity_numpy(graph: nx.Graph) -> float:
    """Exact ``Psi(G)`` by vectorized brute force (identical to the reference)."""
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        return math.inf
    boundary, _ = _subset_boundaries(graph, nodes)
    masks = np.arange(1 << (n - 1), dtype=np.uint64)
    sizes = np.ones(masks.size, dtype=np.int64)
    for i in range(n - 1):
        sizes += ((masks >> np.uint64(i)) & np.uint64(1)).astype(np.int64)
    denominator = np.minimum(sizes, n - sizes)
    with np.errstate(divide="ignore", invalid="ignore"):
        psi = np.where(denominator > 0, boundary / denominator, math.inf)
    psi[-1] = math.inf
    return float(psi.min())


def sweep_cut_best_prefix_numpy(
    graph: nx.Graph, nodes: list, order: Sequence[int]
) -> int:
    """Index ``k`` so that ``order[: k + 1]`` is the best (first-minimum) sweep prefix.

    ``order`` is the Fiedler sweep order over positions into ``nodes``; the
    caller builds the final :class:`~repro.graphs.conductance.CutReport` from
    the returned prefix.  Ties resolve to the earliest prefix, matching the
    reference's strict-improvement scan.
    """
    n = len(nodes)
    adjacency = nx.to_numpy_array(graph, nodelist=nodes, dtype=np.int64)
    ordered = adjacency[np.asarray(order)][:, np.asarray(order)]
    degrees = np.array([graph.degree(nodes[i]) for i in order], dtype=np.int64)
    total_volume = int(degrees.sum())

    # Neighbours of each vertex that precede it in the sweep order.
    preceding = np.tril(ordered, k=-1).sum(axis=1)
    internal = 2 * np.cumsum(preceding)
    cumulative_volume = np.cumsum(degrees)
    boundary = cumulative_volume - internal

    prefix_volume = cumulative_volume[: n - 1]
    prefix_boundary = boundary[: n - 1]
    denominator = np.minimum(prefix_volume, total_volume - prefix_volume)
    with np.errstate(divide="ignore", invalid="ignore"):
        conductance = np.where(
            denominator > 0, prefix_boundary / denominator, math.inf
        )
    return int(np.argmin(conductance))
