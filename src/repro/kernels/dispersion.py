"""Vectorized dispersion (Lemma 6.2) — numpy twin of :func:`repro.core.dispersion.disperse`.

The reference implementation rebuilds a ``(part, mark) -> count`` snapshot
dict and re-derives every desired transfer with nested Python loops on each
shuffler iteration.  The kernel keeps one integer counts matrix ``C[t, m]``
(parts × marks) and, per iteration:

* computes every desired fractional amount at once —
  ``(value / 2) * C[origin]`` broadcast over the matching's pairs;
* applies the same deterministic largest-remainder rounding per
  ``(origin, mark)`` cell, in the same ``(origin, repr(mark))`` group order
  and the same ``(-fraction, target)`` tie-break the reference uses;
* replays the resulting transfers on the *same* queue structure
  (``pop_front`` / ``push_back``), so item movement, arrival order, and every
  downstream pairing are identical.

Portal-pair counts and the sorted fractional matchings come from the
memoized :class:`~repro.cutmatching.shuffler.ShufflerMatching` accessors
instead of being recomputed per iteration.  Sums that feed ``math.floor``
use Python's sequential ``sum`` so the float results match the reference
bit for bit.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cost import CostLedger
    from repro.core.dispersion import DispersionState, DispersionStats
    from repro.cutmatching.shuffler import Shuffler

__all__ = ["disperse_numpy"]


def _partner_table(matching) -> dict[int, tuple]:
    """Per-origin partner arrays in sorted-pair order, cached per matching.

    Each record is ``(half_values, targets, target_order, sorted_targets)``
    where ``half_values`` is ``value / 2`` per partner (floats), ``targets``
    the partner part indices, ``target_order`` the argsort of the targets
    (emission order), and ``sorted_targets`` the targets in that order.  The
    table is static per shuffler matching; lazily attached so pickled
    artifacts rebuild it on first use.
    """
    cached = getattr(matching, "_partner_table", None)
    if cached is None:
        table: dict[int, tuple[list[int], list[float]]] = {}
        pairs, values = matching.sorted_fractional()
        for (u, v), value in zip(pairs, values):
            table.setdefault(u, ([], []))
            table[u][0].append(v)
            table[u][1].append(value)
            table.setdefault(v, ([], []))
            table[v][0].append(u)
            table[v][1].append(value)
        cached = {}
        for origin, (targets, vals) in sorted(table.items()):
            target_array = np.asarray(targets, dtype=np.int64)
            order = np.argsort(target_array, kind="stable")
            cached[origin] = (
                np.asarray(vals, dtype=float) * 0.5,
                target_array,
                order,
                target_array[order],
            )
        matching._partner_table = cached
    return cached


def _plan_transfers(counts: np.ndarray, matching) -> list[tuple[int, int, int, int]]:
    """The iteration's transfers as ``(origin, target, mark_index, amount)``.

    Reproduces the reference's ordering exactly: groups sorted by
    ``(origin, mark)`` (mark columns are already in repr order), amounts in
    sorted-pair order, largest-remainder rounding tie-broken by
    ``(-fraction, target)``, emission by target.  All marks of one origin are
    planned at once; the largest-remainder bumps only ever land on entries
    with a positive fractional part (there are strictly fewer leftover units
    than such entries), so including zero-amount partners in the vectorized
    ordering cannot change the allocation the reference computes.
    """
    transfers: list[tuple[int, int, int, int]] = []
    for origin, (half_values, targets, target_order, sorted_targets) in _partner_table(
        matching
    ).items():
        row = counts[origin]
        if targets.size == 1:
            # One partner: the budget always equals floor(amount) (amounts
            # never exceed the snapshot), so the allocation is the plain
            # floor, every mark at once.
            allocation = np.floor(half_values[0] * row).astype(np.int64)
            target = int(targets[0])
            for mark_index in np.flatnonzero(allocation):
                transfers.append((origin, target, int(mark_index), int(allocation[mark_index])))
            continue

        group_size = targets.size
        mark_count = row.size
        amounts = half_values[:, None] * row[None, :]
        floors = np.floor(amounts)
        allocation = floors.astype(np.int64)
        # Sequential accumulation matches the reference's builtins.sum order
        # (zero-amount partners add +0.0, which is exact).
        totals = amounts[0].copy()
        for i in range(1, group_size):
            totals += amounts[i]
        budget = np.minimum(row, np.floor(totals).astype(np.int64))
        remaining = budget - allocation.sum(axis=0)
        if (remaining > 0).any():
            fractions = amounts - floors
            # Per-mark (-fraction, target) order, all marks at once: lexsort
            # with the mark as the primary key yields blocks of `group_size`.
            mark_key = np.repeat(np.arange(mark_count), group_size)
            fraction_key = fractions.T.ravel()
            target_key = np.tile(targets, mark_count)
            order = np.lexsort((target_key, -fraction_key, mark_key))
            position_in_mark = np.arange(mark_count * group_size) % group_size
            bump = position_in_mark < np.repeat(remaining, group_size)
            flat = allocation.T.copy().ravel()
            flat[order[bump]] += 1
            allocation = flat.reshape(mark_count, group_size).T
        emitted = allocation[target_order]
        for mark_index, target_position in np.argwhere(emitted.T > 0):
            transfers.append(
                (
                    origin,
                    int(sorted_targets[target_position]),
                    int(mark_index),
                    int(emitted[target_position, mark_index]),
                )
            )
    return transfers


def disperse_numpy(
    state: "DispersionState",
    shuffler: "Shuffler",
    part_sizes,
    load: int,
    flatten_quality: int,
    ledger: "CostLedger | None",
    phase: str,
) -> "DispersionStats":
    """Numpy implementation of ``disperse`` (identical movements and rounds)."""
    from repro.core.cost import send_round_cost, sort_round_cost
    from repro.core.dispersion import DispersionStats

    stats = DispersionStats()
    t = state.part_count
    marks = state.marks()
    counts = np.zeros((t, max(len(marks), 1)), dtype=np.int64)
    for part in range(t):
        for mark_index, mark in enumerate(marks):
            counts[part, mark_index] = state.count(part, mark)

    max_part_size = max(part_sizes) if part_sizes else 1
    part_of = shuffler.part_of
    rounds = 0
    for matching in shuffler.matchings:
        stats.iterations += 1
        transfers = _plan_transfers(counts, matching) if marks else []
        outgoing: dict[tuple[int, int], int] = {}
        for origin, target, mark_index, amount in transfers:
            mark = marks[mark_index]
            items = state.pop_front(origin, mark, amount)
            state.push_back(target, mark, items)
            moved = len(items)
            counts[origin, mark_index] -= moved
            counts[target, mark_index] += moved
            outgoing[(origin, target)] = outgoing.get((origin, target), 0) + moved

        # -- round accounting for this iteration (Lemma 6.7) -----------------
        current_max_load = int(counts.sum(axis=1).max(initial=0))
        stats.max_part_load = max(stats.max_part_load, current_max_load)
        per_part_load = max(1, math.ceil(current_max_load / max(1, max_part_size)))
        portal_sort = sort_round_cost(max_part_size, per_part_load, flatten_quality)
        tokens_per_portal = 1
        for (origin, target), amount in outgoing.items():
            portal_pairs = max(1, matching.portal_pair_count(part_of, origin, target))
            tokens_per_portal = max(tokens_per_portal, math.ceil(amount / portal_pairs))
        send = send_round_cost(tokens_per_portal, matching.quality * max(1, flatten_quality))
        rounds += portal_sort + send

    stats.rounds = rounds
    if ledger is not None:
        ledger.charge(phase, rounds)

    # -- Definition 6.1 window check ------------------------------------------
    total_vertices = sum(part_sizes) if part_sizes else t
    for mark_index, mark in enumerate(marks):
        total = int(counts[:, mark_index].sum())
        stats.mark_totals[mark] = total
        lower = 0.9 * total / t - 0.1 * total_vertices / (t * t)
        upper = 1.1 * total / t + 0.1 * total_vertices / (t * t)
        slack = stats.iterations * 1.0
        for part in range(t):
            count = int(counts[part, mark_index])
            stats.final_counts[(part, mark)] = count
            stats.total_cells += 1
            if lower - slack <= count <= upper + slack:
                stats.within_window += 1
    return stats
