"""The cut player of the cut-matching game (Appendix B.1).

At iteration ``i`` the cut player examines the current walk matrix ``R_{i-1}``
on the cluster graph ``Y`` and produces two disjoint vertex subsets ``S`` and
``S'`` with (Property B.1):

1. ``|S_X| < |S'_X|`` (the corresponding base-graph sets, so the matching
   player can saturate ``S_X``), and
2. for *any* mapping ``sigma : S -> S'``,
   ``sum_{y in S} ||R[y] - R[sigma(y)]||^2 >= Pi(i-1) / 720``.

The KRV/RST construction projects the rows of ``R`` onto a random unit vector
``r`` orthogonal to the all-ones vector and splits the projections around
their mean using Lemma B.4 ("A_l / A_r" split).  The paper derandomizes by
brute-force subset enumeration on the (locally known, small) cluster graph.

We provide both:

* :class:`SpectralCutPlayer` — fully deterministic: the projection direction
  is the dominant non-trivial right singular vector of the centred walk
  matrix, i.e. the direction in which the rows of ``R`` are most spread out.
  This maximises (rather than merely preserves in expectation) the separation
  Lemma B.3 gives for a random direction, so the potential-drop argument goes
  through with the same constants.
* :class:`ExhaustiveCutPlayer` — literal derandomization by enumeration for
  very small cluster graphs (used in tests to validate the spectral player).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.kernels import use_numpy

__all__ = ["CutPlayerResult", "lemma_b4_split", "SpectralCutPlayer", "ExhaustiveCutPlayer"]


@dataclass(frozen=True)
class CutPlayerResult:
    """Two disjoint cluster-vertex subsets chosen by the cut player.

    ``small_side`` plays the role of ``S`` (to be saturated by the matching
    player) and ``large_side`` plays ``S'``.
    """

    small_side: tuple[int, ...]
    large_side: tuple[int, ...]
    separation: float

    def as_sets(self) -> tuple[set[int], set[int]]:
        return set(self.small_side), set(self.large_side)


def lemma_b4_split(values: Sequence[float]) -> tuple[list[int], list[int], float]:
    """The A_l / A_r split of Lemma B.4 (RST14 Lemma 3.3).

    Given a map ``mu`` on a finite set (here: projected walk rows), return two
    disjoint index sets ``A_l`` (size <= |A|/8) and ``A_r`` (size >= |A|/2)
    separated by a value ``gamma`` such that every element of ``A_l`` is at
    least a third as far from ``gamma`` as from the mean, and ``A_l`` carries
    at least 1/80 of the total variance.

    The construction mirrors the proof: look at the side of the mean with the
    larger variance contribution, take its farthest |A|/8 elements as ``A_l``,
    and take the opposite half as ``A_r``.
    """
    count = len(values)
    if count < 2:
        return list(range(count)), [], 0.0
    array = np.asarray(values, dtype=float)
    mean = float(array.mean())
    deviations = array - mean
    order = np.argsort(array, kind="stable")

    left_half = order[: count // 2]
    right_half = order[count - count // 2:]
    left_variance = float(np.sum(deviations[array <= mean] ** 2))
    right_variance = float(np.sum(deviations[array > mean] ** 2))

    if right_variance >= left_variance:
        # A_l = farthest-above-the-mean eighth, A_r = lower half.
        take = max(1, count // 8)
        a_l = list(order[count - take:])
        a_r = list(left_half)
        gamma_candidates = array[a_l]
        gamma = float(gamma_candidates.min())
    else:
        take = max(1, count // 8)
        a_l = list(order[:take])
        a_r = list(right_half)
        gamma = float(array[a_l].max())
    a_l = [int(i) for i in a_l]
    a_r = [int(i) for i in a_r if int(i) not in set(a_l)]
    return a_l, a_r, gamma


class SpectralCutPlayer:
    """Deterministic cut player using the principal spread direction of ``R``.

    Two split policies are supported:

    * ``bisection=True`` (default): split the projected values into a lower
      and an upper half.  This is the aggressive KRV-style choice — the
      matching player then embeds near-perfect matchings and the potential
      drops by a constant factor per iteration in practice, which is what the
      shuffler-iteration experiments (E3) measure.
    * ``bisection=False``: the literal Lemma B.4 split (``|A_l| <= t/8``,
      ``|A_r| >= t/2``), matching the paper's worst-case analysis constants.
    """

    def __init__(self, bisection: bool = True) -> None:
        self.bisection = bisection

    def choose(self, walk_matrix: np.ndarray, part_sizes: Sequence[int]) -> CutPlayerResult:
        """Choose ``(S, S')`` from the current walk matrix.

        Args:
            walk_matrix: the ``t x t`` matrix ``R_{i-1}``.
            part_sizes: ``|X*_i|`` for each cluster vertex, used to enforce
                ``|S_X| < |S'_X|`` (Property B.1(1)).
        """
        t = walk_matrix.shape[0]
        if t < 2:
            return CutPlayerResult(small_side=(), large_side=tuple(range(t)), separation=0.0)
        uniform = np.full(t, 1.0 / t)
        centred = walk_matrix - uniform[None, :]
        # Dominant right singular direction of the centred rows; deterministic
        # up to sign, which we fix by the first nonzero coordinate.
        _, _, vt = np.linalg.svd(centred, full_matrices=False)
        direction = vt[0]
        nonzero = np.flatnonzero(np.abs(direction) > 1e-12)
        if nonzero.size and direction[nonzero[0]] < 0:
            direction = -direction
        projections = centred @ direction

        if self.bisection:
            order = sorted(range(t), key=lambda i: (projections[i], i))
            half = t // 2
            a_l = order[:half]
            a_r = order[half:]
        else:
            a_l, a_r, _ = lemma_b4_split(list(projections))
        small, large = self._balance_sides(a_l, a_r, part_sizes)
        separation = self._separation(walk_matrix, small, large)
        return CutPlayerResult(
            small_side=tuple(small), large_side=tuple(large), separation=separation
        )

    @staticmethod
    def _balance_sides(
        a_l: list[int], a_r: list[int], part_sizes: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Ensure the S side is the lighter one in base-graph vertices."""
        weight_l = sum(part_sizes[i] for i in a_l)
        weight_r = sum(part_sizes[i] for i in a_r)
        if weight_l < weight_r:
            return a_l, a_r
        if weight_r < weight_l:
            return a_r, a_l
        # Tie: drop the largest-index element from one side to break it.
        if len(a_l) > 1:
            return a_l[:-1], a_r
        if len(a_r) > 1:
            return a_l, a_r[:-1]
        return a_l, a_r

    @staticmethod
    def _separation(walk_matrix: np.ndarray, small: Sequence[int], large: Sequence[int]) -> float:
        """Worst-case pairwise separation sum over greedy pairings (diagnostic)."""
        if not small or not large:
            return 0.0
        if use_numpy():
            from repro.kernels.matrixops import pairwise_separation_numpy

            return pairwise_separation_numpy(walk_matrix, small, large)
        total = 0.0
        for y in small:
            distances = [
                float(np.sum((walk_matrix[y] - walk_matrix[s]) ** 2)) for s in large
            ]
            total += min(distances)
        return total


class ExhaustiveCutPlayer:
    """Literal derandomization: enumerate subset pairs on a tiny cluster graph.

    Only usable for ``t <= 12`` or so; tests use it as the ground truth the
    spectral player is compared against.
    """

    def __init__(self, max_size: int = 12) -> None:
        self.max_size = max_size

    def choose(self, walk_matrix: np.ndarray, part_sizes: Sequence[int]) -> CutPlayerResult:
        t = walk_matrix.shape[0]
        if t > self.max_size:
            raise ValueError(f"exhaustive cut player limited to t <= {self.max_size}")
        if t < 2:
            return CutPlayerResult(small_side=(), large_side=tuple(range(t)), separation=0.0)
        best: CutPlayerResult | None = None
        indices = list(range(t))
        for small_size in range(1, max(2, t // 8 + 1)):
            for small in itertools.combinations(indices, small_size):
                remaining = [i for i in indices if i not in small]
                for large_size in range(max(1, t // 2), len(remaining) + 1):
                    for large in itertools.combinations(remaining, large_size):
                        weight_small = sum(part_sizes[i] for i in small)
                        weight_large = sum(part_sizes[i] for i in large)
                        if weight_small >= weight_large:
                            continue
                        separation = self._worst_case_separation(walk_matrix, small, large)
                        if best is None or separation > best.separation:
                            best = CutPlayerResult(
                                small_side=tuple(small),
                                large_side=tuple(large),
                                separation=separation,
                            )
        assert best is not None
        return best

    @staticmethod
    def _worst_case_separation(
        walk_matrix: np.ndarray, small: Sequence[int], large: Sequence[int]
    ) -> float:
        total = 0.0
        for y in small:
            distances = [
                float(np.sum((walk_matrix[y] - walk_matrix[s]) ** 2)) for s in large
            ]
            total += min(distances)
        return total
