"""The cut-matching game driver (Section 5.1, Appendix B).

The game is played on the cluster graph ``Y`` (cut player) and the base graph
``X`` (matching player):

1. the cut player inspects the current walk matrix and names two disjoint
   cluster-vertex sets ``(S, S')`` (Property B.1);
2. the matching player embeds a base-graph matching from ``S_X`` into
   ``S'_X`` saturating ``S_X`` (Lemma 2.3) and converts it to a natural
   fractional matching of ``Y``;
3. the fractional matching is applied to the lazy-walk matrix and the
   potential ``Pi`` is re-evaluated.

The game stops when ``Pi <= 1/(9 n^3)`` (success: the collected matchings form
a :class:`~repro.cutmatching.shuffler.Shuffler`) or when the matching player
fails to saturate its side (a sparse cut of the base graph was found — which
cannot happen when ``X`` really is an expander and ``psi`` was chosen at most
half its sparsity).

Round accounting follows Lemma 5.5 / B.2: each iteration costs the cluster
graph learning (``poly(k)`` plus the base-graph diameter) plus the matching
player's embedding work; the iteration count is ``O(log n)`` by Lemma B.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.cutmatching.cut_player import SpectralCutPlayer
from repro.cutmatching.matching_player import MatchingPlayer
from repro.cutmatching.potential import WalkState
from repro.cutmatching.shuffler import Shuffler, ShufflerMatching
from repro.graphs.cluster import ClusterGraph, build_cluster_graph

__all__ = ["CutMatchingOutcome", "CutMatchingGame", "build_shuffler"]


@dataclass
class CutMatchingOutcome:
    """Result of playing the cut-matching game on one good node.

    Attributes:
        shuffler: the constructed shuffler (None if the game found a cut).
        sparse_cut: base-graph sparse cut certificate when construction failed.
        iterations: number of matchings played.
        potential_history: potential value after every iteration.
        rounds: CONGEST rounds charged for the construction.
    """

    shuffler: Shuffler | None
    sparse_cut: frozenset = frozenset()
    iterations: int = 0
    potential_history: list[float] = field(default_factory=list)
    rounds: int = 0

    @property
    def succeeded(self) -> bool:
        return self.shuffler is not None


class CutMatchingGame:
    """Plays the cut-matching game for one good node and its partition."""

    def __init__(
        self,
        base_graph: nx.Graph,
        parts: Sequence[Sequence],
        psi: float = 0.1,
        max_iterations: int | None = None,
    ) -> None:
        if len(parts) < 1:
            raise ValueError("the partition must contain at least one part")
        self.base_graph = base_graph
        self.cluster: ClusterGraph = build_cluster_graph(base_graph, parts)
        self.psi = psi
        n = base_graph.number_of_nodes()
        # Lemma B.5: lambda = O(log n) iterations (with a large worst-case
        # constant); with the bisection cut player the practical decay is a
        # constant factor per iteration, so this cap is rarely approached.
        self.max_iterations = max_iterations or max(16, int(16 * math.log2(max(n, 2))) + 16)
        self.cut_player = SpectralCutPlayer()
        self.matching_player = MatchingPlayer(base_graph, self.cluster, psi=psi)

    def play(self) -> CutMatchingOutcome:
        """Run the game to completion and return the shuffler or a sparse cut."""
        t = self.cluster.size
        n = self.base_graph.number_of_nodes()
        part_sizes = [len(part) for part in self.cluster.parts]
        normalizer = float(max(part_sizes)) if part_sizes else 1.0
        state = WalkState(t)
        matchings: list[ShufflerMatching] = []
        rounds = 0
        potential_history: list[float] = []

        if t == 1:
            # A single part is trivially mixed; an empty shuffler suffices.
            shuffler = Shuffler(
                part_count=1,
                part_of=dict(self.cluster.part_of),
                matchings=[],
                final_potential=0.0,
                build_rounds=0,
            )
            return CutMatchingOutcome(shuffler=shuffler, iterations=0, rounds=0)

        for iteration in range(self.max_iterations):
            if state.is_mixed(n):
                break
            cut = self.cut_player.choose(state.matrix, part_sizes)
            if not cut.small_side or not cut.large_side:
                break
            response = self.matching_player.respond(
                cut.small_side, cut.large_side, normalizer=normalizer
            )
            # Round accounting (Lemma B.2 / Lemma 5.5): learning Y costs
            # poly(k) + diameter; the matching embedding costs its quality^2.
            rounds += t * t + max(1, response.quality) ** 2
            if not response.saturated:
                return CutMatchingOutcome(
                    shuffler=None,
                    sparse_cut=response.cut,
                    iterations=iteration + 1,
                    potential_history=potential_history,
                    rounds=rounds,
                )
            if not response.fractional:
                # Degenerate matching (all pairs inside one part); nothing to apply.
                continue
            potential = state.apply(response.fractional)
            potential_history.append(potential)
            matchings.append(
                ShufflerMatching(
                    matching_edges=response.matching_edges,
                    embedding=response.embedding,
                    fractional=response.fractional,
                )
            )

        shuffler = Shuffler(
            part_count=t,
            part_of=dict(self.cluster.part_of),
            matchings=matchings,
            final_potential=state.potential(),
            build_rounds=rounds,
        )
        return CutMatchingOutcome(
            shuffler=shuffler,
            iterations=len(matchings),
            potential_history=potential_history,
            rounds=rounds,
        )


def build_shuffler(
    base_graph: nx.Graph,
    parts: Sequence[Sequence],
    psi: float = 0.1,
    max_iterations: int | None = None,
) -> Shuffler:
    """Convenience wrapper: play the game and return the shuffler.

    Raises ``RuntimeError`` if the game terminates with a sparse cut instead —
    callers construct shufflers only on certified expanders, so a cut here
    indicates the partition or the sparsity parameter was wrong.
    """
    outcome = CutMatchingGame(base_graph, parts, psi=psi, max_iterations=max_iterations).play()
    if outcome.shuffler is None:
        raise RuntimeError(
            "cut-matching game found a sparse cut while building a shuffler; "
            "the base graph is not the expected expander"
        )
    return outcome.shuffler
