"""Shufflers: the sequence of matching embeddings produced by the cut-matching game.

Definition 5.4: a *shuffler* of a good node ``X`` with parts
``X*_1, ..., X*_t`` is a sequence of matching embeddings
``M_X = ((M^1_X, f_{M^1_X}), ..., (M^lambda_X, f_{M^lambda_X}))`` on ``X``
whose corresponding natural fractional matchings on the cluster graph ``Y``
make the induced lazy random walk mix:
``sum_y ||R_lambda[y] - 1/|Y|||^2 <= 1/(9 n^3)``.

Routing a token set to a *dispersed configuration* (Section 6.1) replays the
shuffler matchings: in iteration ``q``, for every ordered pair of parts
``(i, j)`` with fractional value ``m_ij``, a ``m_ij / 2`` fraction of every
destination class currently on part ``i`` is sent to part ``j`` through the
embedded matching paths whose endpoints (the *portals*) live in the two parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.cutmatching.potential import WalkState
from repro.embedding.embedding import Embedding
from repro.embedding.paths import PathCollection

__all__ = ["ShufflerMatching", "Shuffler"]


@dataclass
class ShufflerMatching:
    """One iteration of the shuffler: a base-graph matching and its cluster shadow.

    Attributes:
        matching_edges: base-graph matched pairs realised by embedded paths.
        embedding: the path embedding of those pairs in the base graph.
        fractional: the natural fractional matching on the cluster graph.
    """

    matching_edges: list[tuple[Hashable, Hashable]]
    embedding: Embedding
    fractional: dict[tuple[int, int], float]

    @property
    def quality(self) -> int:
        return self.embedding.quality

    def portals(self, part_of: dict, i: int, j: int) -> list[tuple[Hashable, Hashable]]:
        """Matched base pairs whose endpoints lie in parts ``i`` and ``j``.

        The first element of each returned pair lies in part ``i`` (these are
        the *portals* of part ``i`` towards part ``j``).
        """
        pairs: list[tuple[Hashable, Hashable]] = []
        for a, b in self.matching_edges:
            pa, pb = part_of.get(a), part_of.get(b)
            if pa == i and pb == j:
                pairs.append((a, b))
            elif pa == j and pb == i:
                pairs.append((b, a))
        return pairs


@dataclass
class Shuffler:
    """The full shuffler of a good node: all matchings plus quality metadata.

    Attributes:
        part_count: number of parts ``t`` of the owning good node.
        part_of: base vertex -> part index map.
        matchings: the matching embeddings in application order.
        final_potential: potential value after the last matching.
        build_rounds: CONGEST rounds charged for constructing the shuffler.
    """

    part_count: int
    part_of: dict
    matchings: list[ShufflerMatching] = field(default_factory=list)
    final_potential: float = float("inf")
    build_rounds: int = 0

    def __iter__(self) -> Iterator[ShufflerMatching]:
        return iter(self.matchings)

    def __len__(self) -> int:
        return len(self.matchings)

    @property
    def quality(self) -> int:
        """``Q(M_X)``: quality of the union of all matching embeddings (Definition 5.4)."""
        collections = [m.embedding.path_collection() for m in self.matchings]
        if not collections:
            return 0
        return PathCollection.union(collections).quality

    def verify_mixing(self, n: int) -> bool:
        """Re-verify the mixing condition from scratch (used by tests)."""
        state = WalkState(self.part_count)
        for matching in self.matchings:
            state.apply(matching.fractional)
        return state.is_mixed(n)

    def walk_state(self) -> WalkState:
        """Replay the fractional matchings and return the resulting walk state."""
        state = WalkState(self.part_count)
        for matching in self.matchings:
            state.apply(matching.fractional)
        return state
