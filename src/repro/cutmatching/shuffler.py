"""Shufflers: the sequence of matching embeddings produced by the cut-matching game.

Definition 5.4: a *shuffler* of a good node ``X`` with parts
``X*_1, ..., X*_t`` is a sequence of matching embeddings
``M_X = ((M^1_X, f_{M^1_X}), ..., (M^lambda_X, f_{M^lambda_X}))`` on ``X``
whose corresponding natural fractional matchings on the cluster graph ``Y``
make the induced lazy random walk mix:
``sum_y ||R_lambda[y] - 1/|Y|||^2 <= 1/(9 n^3)``.

Routing a token set to a *dispersed configuration* (Section 6.1) replays the
shuffler matchings: in iteration ``q``, for every ordered pair of parts
``(i, j)`` with fractional value ``m_ij``, a ``m_ij / 2`` fraction of every
destination class currently on part ``i`` is sent to part ``j`` through the
embedded matching paths whose endpoints (the *portals*) live in the two parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.cutmatching.potential import WalkState
from repro.embedding.embedding import Embedding
from repro.embedding.paths import PathCollection

__all__ = ["ShufflerMatching", "Shuffler"]


@dataclass
class ShufflerMatching:
    """One iteration of the shuffler: a base-graph matching and its cluster shadow.

    Attributes:
        matching_edges: base-graph matched pairs realised by embedded paths.
        embedding: the path embedding of those pairs in the base graph.
        fractional: the natural fractional matching on the cluster graph.
    """

    matching_edges: list[tuple[Hashable, Hashable]]
    embedding: Embedding
    fractional: dict[tuple[int, int], float]

    @property
    def quality(self) -> int:
        return self.embedding.quality

    def portals(self, part_of: dict, i: int, j: int) -> list[tuple[Hashable, Hashable]]:
        """Matched base pairs whose endpoints lie in parts ``i`` and ``j``.

        The first element of each returned pair lies in part ``i`` (these are
        the *portals* of part ``i`` towards part ``j``).
        """
        pairs: list[tuple[Hashable, Hashable]] = []
        for a, b in self.matching_edges:
            pa, pb = part_of.get(a), part_of.get(b)
            if pa == i and pb == j:
                pairs.append((a, b))
            elif pa == j and pb == i:
                pairs.append((b, a))
        return pairs

    # -- memoized fast-path accessors (numpy kernel only) -------------------
    #
    # Both caches are lazily attached attributes rather than dataclass fields
    # so that shufflers pickled before this change (service artifacts on disk)
    # still unpickle and simply rebuild the caches on first use.

    def sorted_fractional(self) -> tuple[list[tuple[int, int]], list[float]]:
        """The fractional matching as parallel (pairs, values) lists in sorted pair order."""
        cached = getattr(self, "_sorted_fractional", None)
        if cached is None:
            items = sorted(self.fractional.items())
            cached = ([pair for pair, _ in items], [value for _, value in items])
            self._sorted_fractional = cached
        return cached

    def portal_pair_count(self, part_of: dict, i: int, j: int) -> int:
        """``len(self.portals(part_of, i, j))`` from a table built once per matching."""
        cached = getattr(self, "_portal_counts", None)
        if cached is None or cached[0] is not part_of:
            counts: dict[tuple[int, int], int] = {}
            for a, b in self.matching_edges:
                pa, pb = part_of.get(a), part_of.get(b)
                counts[(pa, pb)] = counts.get((pa, pb), 0) + 1
                if pa != pb:
                    counts[(pb, pa)] = counts.get((pb, pa), 0) + 1
            cached = (part_of, counts)
            self._portal_counts = cached
        return cached[1].get((i, j), 0)


@dataclass
class Shuffler:
    """The full shuffler of a good node: all matchings plus quality metadata.

    Attributes:
        part_count: number of parts ``t`` of the owning good node.
        part_of: base vertex -> part index map.
        matchings: the matching embeddings in application order.
        final_potential: potential value after the last matching.
        build_rounds: CONGEST rounds charged for constructing the shuffler.
    """

    part_count: int
    part_of: dict
    matchings: list[ShufflerMatching] = field(default_factory=list)
    final_potential: float = float("inf")
    build_rounds: int = 0

    def __iter__(self) -> Iterator[ShufflerMatching]:
        return iter(self.matchings)

    def __len__(self) -> int:
        return len(self.matchings)

    @property
    def quality(self) -> int:
        """``Q(M_X)``: quality of the union of all matching embeddings (Definition 5.4).

        The union is a static property of the preprocessed shuffler but was
        recomputed on every routing query; the fast path caches it (lazily
        attached, so pre-change pickled artifacts still load).
        """
        from repro.kernels import use_numpy

        cached = getattr(self, "_quality_cache", None)
        if cached is not None and use_numpy():
            return cached
        collections = [m.embedding.path_collection() for m in self.matchings]
        value = PathCollection.union(collections).quality if collections else 0
        self._quality_cache = value
        return value

    def verify_mixing(self, n: int) -> bool:
        """Re-verify the mixing condition from scratch (used by tests)."""
        state = WalkState(self.part_count)
        for matching in self.matchings:
            state.apply(matching.fractional)
        return state.is_mixed(n)

    def walk_state(self) -> WalkState:
        """Replay the fractional matchings and return the resulting walk state."""
        state = WalkState(self.part_count)
        for matching in self.matchings:
            state.apply(matching.fractional)
        return state
