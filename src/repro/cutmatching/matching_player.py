"""The matching player of the cut-matching game (Appendix B.2).

Given the cut player's subsets ``(S, S')`` on the cluster graph ``Y``, the
matching player works on the *base graph* ``X``: it expands the cluster sets
to base vertex sets ``(S_X, S'_X)`` and embeds a matching of base vertices
from ``S_X`` into ``S'_X`` saturating ``S_X`` (Lemma 2.3), returning both the
virtual matching edges and their low-congestion path embedding.  The matching
is then normalised to a *natural fractional matching* of ``Y``
(Definition 5.1) for the potential bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from repro.embedding.embedding import Embedding
from repro.embedding.matching_embed import embed_matching
from repro.graphs.cluster import ClusterGraph, natural_fractional_matching

__all__ = ["MatchingPlayerResult", "MatchingPlayer"]


@dataclass
class MatchingPlayerResult:
    """One iteration's output on the base graph and its cluster-graph shadow.

    Attributes:
        matching_edges: base-graph matched pairs ``(a, b)`` with ``a in S_X``.
        embedding: path embedding of the matching in the base graph.
        fractional: the natural fractional matching on the cluster graph.
        saturated: whether every vertex of ``S_X`` was matched.
        cut: sparse-cut certificate when saturation failed (empty otherwise).
    """

    matching_edges: list[tuple[Hashable, Hashable]] = field(default_factory=list)
    embedding: Embedding = field(default_factory=Embedding)
    fractional: dict[tuple[int, int], float] = field(default_factory=dict)
    saturated: bool = False
    cut: frozenset = frozenset()

    @property
    def quality(self) -> int:
        """Quality of the matching's path embedding in the base graph."""
        return self.embedding.quality


class MatchingPlayer:
    """Embeds base-graph matchings realising the cut player's requests."""

    def __init__(self, base_graph: nx.Graph, cluster: ClusterGraph, psi: float = 0.1) -> None:
        self.base_graph = base_graph
        self.cluster = cluster
        self.psi = psi

    def respond(
        self, small_side: Sequence[int], large_side: Sequence[int], normalizer: float | None = None
    ) -> MatchingPlayerResult:
        """Embed a matching from ``S_X`` (small side) into ``S'_X`` (large side).

        Args:
            small_side: cluster vertices forming ``S``.
            large_side: cluster vertices forming ``S'``.
            normalizer: the ``n'`` used for the natural fractional matching;
                defaults to the maximum part size of the cluster graph.
        """
        sources = sorted(self.cluster.expand(small_side))
        sinks = sorted(self.cluster.expand(large_side))
        if not sources or not sinks:
            return MatchingPlayerResult(saturated=True)
        if len(sources) > len(sinks):
            # Property B.1(1) guarantees |S_X| < |S'_X|; if a degenerate call
            # violates it we truncate deterministically so Lemma 2.3 applies.
            sources = sources[: len(sinks)]

        result = embed_matching(self.base_graph, sources, sinks, psi=self.psi)
        fractional = natural_fractional_matching(
            self.cluster,
            ((a, b) for a, b in result.matching.items()),
            normalizer=normalizer,
        )
        return MatchingPlayerResult(
            matching_edges=sorted(result.matching.items()),
            embedding=result.embedding,
            fractional=fractional,
            saturated=result.saturated,
            cut=result.cut,
        )
