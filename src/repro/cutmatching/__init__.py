"""Cut-matching game, walk potentials, and shuffler construction (Section 5.1, Appendix B)."""

from repro.cutmatching.cut_player import (
    CutPlayerResult,
    ExhaustiveCutPlayer,
    SpectralCutPlayer,
    lemma_b4_split,
)
from repro.cutmatching.game import CutMatchingGame, CutMatchingOutcome, build_shuffler
from repro.cutmatching.matching_player import MatchingPlayer, MatchingPlayerResult
from repro.cutmatching.potential import (
    FractionalMatching,
    WalkState,
    mixing_threshold,
    walk_matrix,
)
from repro.cutmatching.shuffler import Shuffler, ShufflerMatching

__all__ = [
    "CutPlayerResult",
    "ExhaustiveCutPlayer",
    "SpectralCutPlayer",
    "lemma_b4_split",
    "CutMatchingGame",
    "CutMatchingOutcome",
    "build_shuffler",
    "MatchingPlayer",
    "MatchingPlayerResult",
    "FractionalMatching",
    "WalkState",
    "mixing_threshold",
    "walk_matrix",
    "Shuffler",
    "ShufflerMatching",
]
