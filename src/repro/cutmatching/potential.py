"""Random-walk matrices and the cut-matching potential function.

Definitions 5.2 and 5.3 of the paper: a fractional matching ``M = {x_uv}`` on
the cluster graph ``Y`` induces the lazy-walk transition matrix

    R_M[i, j] = 1/2 * x_{v_i v_j}                          for i != j
    R_M[i, i] = 1/2 + 1/2 * (1 - sum_{k != i} x_{v_i v_k})

The product ``R_i = R_{M_i} ... R_{M_1}`` describes the distribution of the
natural lazy random walk over the matching sequence, and the potential

    Pi(i) = sum_y || R_i[y] - 1/|Y| ||^2

measures how far the walk is from uniform.  The shuffler is complete once
``Pi(i) <= 1/(9 n^3)`` (Definition 5.4); Lemma B.5 shows the potential drops
by a ``(1 - 1/(36*720))`` factor per round, hence ``O(log n)`` rounds suffice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.kernels import use_numpy

__all__ = [
    "FractionalMatching",
    "walk_matrix",
    "WalkState",
    "mixing_threshold",
]

#: A fractional matching on the cluster graph: (i, j) with i < j -> x_ij in [0, 1].
FractionalMatching = Mapping[tuple[int, int], float]


def walk_matrix(size: int, matching: FractionalMatching) -> np.ndarray:
    """Build the lazy-walk matrix ``R_M`` of Definition 5.2 for a cluster graph of ``size`` vertices.

    Dispatches to the scatter-based kernel unless ``REPRO_KERNEL=reference``;
    both produce bit-identical matrices (``np.add.at`` performs the same
    addition sequence as the loop below).  Tiny cluster graphs stay on the
    loop — below ~48 vertices the scatter setup costs more than it saves.
    """
    if use_numpy() and size >= 48:
        from repro.kernels.matrixops import walk_matrix_numpy

        return walk_matrix_numpy(size, matching)
    matrix = np.zeros((size, size), dtype=float)
    degree = np.zeros(size, dtype=float)
    for (i, j), value in matching.items():
        if i == j:
            continue
        if not (0 <= i < size and 0 <= j < size):
            raise ValueError(f"matching edge ({i}, {j}) outside the cluster graph")
        if value < -1e-12:
            raise ValueError("fractional matching values must be non-negative")
        matrix[i, j] += 0.5 * value
        matrix[j, i] += 0.5 * value
        degree[i] += value
        degree[j] += value
    if np.any(degree > 1.0 + 1e-9):
        raise ValueError("fractional degree exceeds one; not a fractional matching")
    for i in range(size):
        matrix[i, i] = 0.5 + 0.5 * (1.0 - degree[i])
    return matrix


def mixing_threshold(n: int) -> float:
    """The paper's termination threshold ``1 / (9 n^3)`` for the potential (Definition 5.4)."""
    return 1.0 / (9.0 * max(n, 2) ** 3)


@dataclass
class WalkState:
    """Tracks ``R_i`` and the potential ``Pi(i)`` across cut-matching iterations.

    Attributes:
        size: number of cluster vertices ``t = |Y|``.
        matrix: the current product ``R_i`` (identity before any matching).
        history: potential value after each applied matching.
    """

    size: int
    matrix: np.ndarray = field(init=False)
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("cluster graph must have at least one vertex")
        self.matrix = np.eye(self.size, dtype=float)

    def apply(self, matching: FractionalMatching) -> float:
        """Apply one fractional matching; return the new potential value."""
        step = walk_matrix(self.size, matching)
        self.matrix = step @ self.matrix
        value = self.potential()
        self.history.append(value)
        return value

    def potential(self) -> float:
        """Current potential ``Pi = sum_y ||R[y] - 1/t||^2`` (Definition 5.3)."""
        uniform = np.full(self.size, 1.0 / self.size)
        deviation = self.matrix - uniform[None, :]
        return float(np.sum(deviation * deviation))

    def row(self, index: int) -> np.ndarray:
        """The row vector ``R_i[y]`` for cluster vertex ``index``."""
        return self.matrix[index].copy()

    def is_mixed(self, n: int) -> bool:
        """True once the potential has dropped below the ``1/(9 n^3)`` threshold."""
        return self.potential() <= mixing_threshold(n)
