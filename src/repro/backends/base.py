"""The pluggable routing-backend layer: one protocol, one result schema, a registry.

The paper's headline claim is a *comparison* — deterministic expander routing
(Theorem 1.1) against the CS20-style rebuild-per-query approach and the
randomized GKS baseline — but the reference implementations of those
strategies each grew their own ad-hoc API (:class:`ExpanderRouter`,
:class:`RebuildPerQueryRouter`, :func:`route_randomized`,
:func:`route_directly`).  This module defines the neutral layer they all plug
into:

* :class:`RoutingBackend` — the protocol: ``name``, ``preprocess()`` and
  ``route(requests, load)``, plus the optional artifact hooks
  (``export_artifact`` / ``from_artifact``) that let the serving layer cache
  a backend's preprocessed state;
* :class:`PreprocessInfo` / :class:`RouteResult` — the shared result schema
  every backend normalizes into (delivered / total / query rounds /
  preprocess rounds), so results are comparable row by row;
* the registry — :func:`register_backend`, :func:`get_backend`,
  :func:`available_backends` — through which the serving layer, the
  applications, and the benchmarks construct backends by name.

The concrete adapters live in :mod:`repro.backends.adapters` and register
themselves on import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Hashable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

import networkx as nx

from repro.core.tokens import RoutingRequest, Token

__all__ = [
    "PreprocessInfo",
    "RouteResult",
    "RoutingBackend",
    "register_backend",
    "get_backend",
    "backend_factory",
    "available_backends",
    "supports_artifacts",
    "supports_fusion",
    "canonical_backend_params",
]


@dataclass
class PreprocessInfo:
    """What a backend's preprocessing phase built and what it cost.

    Attributes:
        backend: the backend's registry name.
        rounds: CONGEST rounds charged to preprocessing (0 for backends that
            keep no reusable state).
        details: backend-specific diagnostics (hierarchy levels, shuffler
            counts, ...), for reporting only.
    """

    backend: str
    rounds: int
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class RouteResult:
    """One routing query's outcome, normalized across every backend.

    Attributes:
        backend: the registry name of the backend that produced it.
        delivered: tokens that reached their requested destination.
        total_tokens: tokens routed.
        query_rounds: CONGEST rounds charged to this query (for the
            rebuild-per-query comparator this *includes* its per-query
            rebuild, which is the point of that comparator).
        preprocess_rounds: rounds of reusable preprocessing in effect (0 for
            backends without a preprocessing phase).
        load: the load bound ``L`` of the instance.
        extra: backend-specific measurements (congestion, dilation, walk
            steps, dispersion diagnostics, ...).
        raw: the backend's native outcome object, for callers that need more
            than the shared schema.
    """

    backend: str
    delivered: int
    total_tokens: int
    query_rounds: int
    preprocess_rounds: int
    load: int = 1
    extra: dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    @property
    def total(self) -> int:
        """Alias for :attr:`total_tokens` (the schema's short name)."""
        return self.total_tokens

    @property
    def all_delivered(self) -> bool:
        return self.delivered == self.total_tokens

    @property
    def total_rounds_including_preprocessing(self) -> int:
        return self.query_rounds + self.preprocess_rounds

    @property
    def tokens(self) -> list[Token]:
        """The routed tokens when the backend materializes them (else empty)."""
        return getattr(self.raw, "tokens", [])

    def as_row(self) -> dict[str, object]:
        """The shared schema as a flat reporting row."""
        return {
            "backend": self.backend,
            "delivered": self.delivered,
            "total": self.total_tokens,
            "query_rounds": self.query_rounds,
            "preprocess_rounds": self.preprocess_rounds,
            "load": self.load,
        }


@runtime_checkable
class RoutingBackend(Protocol):
    """What every routing backend exposes (structural; adapters just conform).

    Optional capability: backends whose preprocessing produces reusable,
    picklable state additionally provide ``export_artifact(fingerprint)`` and
    a class-level ``from_artifact(graph, artifact)`` constructor; the serving
    layer detects those with :func:`supports_artifacts` and caches the
    artifacts by fingerprint.
    """

    name: str
    graph: nx.Graph

    def preprocess(self) -> PreprocessInfo: ...

    def route(
        self, requests: Sequence[RoutingRequest], load: int | None = None
    ) -> RouteResult: ...


_REGISTRY: dict[str, Callable[..., RoutingBackend]] = {}


def _ensure_adapters_loaded() -> None:
    # The bundled adapters register themselves on import; importing the repro
    # package pulls them in, but a bare `from repro.backends.base import ...`
    # must not see an empty registry.
    if not _REGISTRY:
        from repro.backends import adapters  # noqa: F401


def register_backend(name: str, factory: Callable[..., RoutingBackend]) -> None:
    """Register ``factory`` (``factory(graph, **params) -> backend``) under ``name``."""
    if name in _REGISTRY and _REGISTRY[name] is not factory:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """The registered backend names, sorted."""
    _ensure_adapters_loaded()
    return sorted(_REGISTRY)


def backend_factory(name: str) -> Callable[..., RoutingBackend]:
    """The registered factory for ``name`` (``factory(graph, **params) -> backend``)."""
    _ensure_adapters_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def get_backend(name: str, graph: nx.Graph, **params) -> RoutingBackend:
    """Construct the named backend on ``graph`` with backend-specific ``params``."""
    return backend_factory(name)(graph, **params)


def supports_artifacts(backend: RoutingBackend | Callable[..., RoutingBackend]) -> bool:
    """True when the backend (instance or factory class) has *both* artifact hooks.

    The serving layer needs the pair: ``export_artifact`` to fill the cache
    and ``from_artifact`` to serve from it.  Function-style factories carry
    neither, so their backends bypass the artifact cache entirely.
    """
    return hasattr(backend, "export_artifact") and hasattr(backend, "from_artifact")


def supports_fusion(backend: RoutingBackend | Callable[..., RoutingBackend]) -> bool:
    """True when the backend (instance or factory class) can route fused batches.

    Fusion-capable backends expose ``route_many(request_groups, loads)``
    returning one :class:`RouteResult` per group, result-identical to calling
    ``route`` per group.  The serving layer checks this before honoring
    ``ExecutionPlan.fused`` on a same-fingerprint query group.
    """
    return callable(getattr(backend, "route_many", None))


def canonical_backend_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, str], ...]:
    """Backend parameters as a deterministic, hashable tuple (for cache keys)."""
    if not params:
        return ()
    return tuple((str(key), repr(params[key])) for key in sorted(params))
