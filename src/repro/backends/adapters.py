"""Adapters normalizing the four routing strategies behind :class:`RoutingBackend`.

Each adapter wraps one of the repo's routing implementations and translates
its native outcome into the shared :class:`~repro.backends.base.RouteResult`
schema:

* ``deterministic`` — the paper's :class:`ExpanderRouter` (Theorem 1.1), the
  only backend with reusable preprocessed state; it exposes the artifact
  hooks the serving layer caches through.
* ``rebuild-per-query`` — the CS20-style comparator
  (:class:`RebuildPerQueryRouter`): correct and deterministic, but its query
  rounds *include* a full rebuild plus the sequential pair-iteration factor.
* ``randomized-gks`` — the GKS17-style two-phase randomized strategy
  (:func:`route_randomized`): lazy-walk redistribution then delivery.
* ``direct`` — naive shortest-path store-and-forward
  (:func:`route_directly`), the "no machinery" comparator.

All four register themselves in the backend registry on import, so
``get_backend("direct", graph)`` etc. work as soon as :mod:`repro.backends`
is imported.
"""

from __future__ import annotations

import time
from typing import Sequence

import networkx as nx

from repro.backends.base import (
    PreprocessInfo,
    RouteResult,
    register_backend,
)
from repro.baselines.cs20_model import RebuildPerQueryRouter
from repro.baselines.direct_routing import route_directly, route_directly_many
from repro.baselines.randomized_gks import route_randomized
from repro.core.router import ExpanderRouter, PreprocessArtifact
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.metrics import default_registry
from repro.workloads import infer_load

__all__ = [
    "DeterministicBackend",
    "RebuildPerQueryBackend",
    "RandomizedGKSBackend",
    "DirectBackend",
]


def _observe_route(name: str, result: RouteResult, started: float) -> RouteResult:
    """Record one route() call into the default metrics registry.

    Adapters are constructed by registry factories with no injection point,
    so the ``repro_backend_*`` families always land in the *process-wide*
    registry (:func:`repro.metrics.default_registry`) — swap it with
    :func:`repro.metrics.set_default_registry` to isolate them.  Per-service
    and per-cluster registries carry the ``repro_service_*`` /
    ``repro_cluster_*`` views of the same traffic.
    """
    registry = default_registry()
    registry.histogram(
        "repro_backend_route_seconds", "Wall-clock per backend route() call.", labels=("backend",)
    ).labels(backend=name).observe(time.perf_counter() - started)
    registry.counter(
        "repro_backend_route_rounds_total", "Query rounds charged per backend.", labels=("backend",)
    ).labels(backend=name).inc(result.query_rounds)
    return result


def _observe_preprocess(info: PreprocessInfo) -> PreprocessInfo:
    """Record one preprocess() call into the default metrics registry."""
    default_registry().counter(
        "repro_backend_preprocess_rounds_total",
        "Preprocessing rounds charged per backend.",
        labels=("backend",),
    ).labels(backend=info.backend).inc(info.rounds)
    return info


class DeterministicBackend:
    """The paper's deterministic expander router behind the backend protocol.

    The one backend with a real preprocessing/query tradeoff: ``preprocess``
    builds the hierarchy + shufflers once, ``route`` answers queries off the
    shared structures, and the artifact hooks let the serving layer cache the
    preprocessed state by graph fingerprint.
    """

    name = "deterministic"

    def __init__(
        self,
        graph: nx.Graph,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        router: ExpanderRouter | None = None,
    ) -> None:
        self.graph = graph
        self.router = (
            router
            if router is not None
            else ExpanderRouter(graph, epsilon=epsilon, psi=psi, hierarchy_params=hierarchy_params)
        )

    def preprocess(self) -> PreprocessInfo:
        if not self.router.preprocessed:
            self.router.preprocess()
        summary = self.router.artifact.summary if self.router.artifact else None
        details = (
            {
                "hierarchy_levels": summary.hierarchy_levels,
                "node_count": summary.node_count,
                "shuffler_count": summary.shuffler_count,
                "best_vertex_count": summary.best_vertex_count,
            }
            if summary is not None
            else {}
        )
        return _observe_preprocess(
            PreprocessInfo(
                backend=self.name,
                rounds=self.router.preprocess_ledger.total("preprocess"),
                details=details,
            )
        )

    def route(
        self, requests: Sequence[RoutingRequest], load: int | None = None
    ) -> RouteResult:
        started = time.perf_counter()
        outcome = self.router.route(requests, load=load)
        result = RouteResult(
            backend=self.name,
            delivered=outcome.delivered,
            total_tokens=outcome.total_tokens,
            query_rounds=outcome.query_rounds,
            preprocess_rounds=outcome.preprocessing_rounds,
            load=outcome.load,
            extra={
                "max_intermediate_part_load": outcome.max_intermediate_part_load,
                "dispersion_window_fraction": outcome.dispersion_window_fraction,
                "fallback_assignments": outcome.fallback_assignments,
            },
            raw=outcome,
        )
        return _observe_route(self.name, result, started)

    # -- fused batch capability (detected by the serving layer) ---------------

    def route_many(
        self,
        request_groups: Sequence[Sequence[RoutingRequest]],
        loads: Sequence[int | None] | None = None,
    ) -> list[RouteResult]:
        """Route several queries through one fused recursion (identical results).

        Wraps :meth:`ExpanderRouter.route_many`: all groups share one walk of
        the hierarchy with batched dispersion kernels, and every
        :class:`RouteResult` matches what :meth:`route` returns for that
        group alone.
        """
        started = time.perf_counter()
        outcomes = self.router.route_many(request_groups, loads)
        elapsed = time.perf_counter() - started
        results = []
        # Wall-clock is a batch-level measurement; attribute an equal share
        # per query so the per-backend histograms stay comparable.
        per_query = elapsed / max(1, len(outcomes))
        for outcome in outcomes:
            result = RouteResult(
                backend=self.name,
                delivered=outcome.delivered,
                total_tokens=outcome.total_tokens,
                query_rounds=outcome.query_rounds,
                preprocess_rounds=outcome.preprocessing_rounds,
                load=outcome.load,
                extra={
                    "max_intermediate_part_load": outcome.max_intermediate_part_load,
                    "dispersion_window_fraction": outcome.dispersion_window_fraction,
                    "fallback_assignments": outcome.fallback_assignments,
                },
                raw=outcome,
            )
            results.append(
                _observe_route(self.name, result, time.perf_counter() - per_query)
            )
        return results

    # -- artifact capability (detected by the serving layer) ------------------

    def export_artifact(self, fingerprint: str | None = None) -> PreprocessArtifact:
        return self.router.export_artifact(fingerprint=fingerprint)

    @classmethod
    def from_artifact(cls, graph: nx.Graph, artifact: PreprocessArtifact) -> "DeterministicBackend":
        return cls(graph, router=ExpanderRouter.from_artifact(graph, artifact))


class RebuildPerQueryBackend:
    """CS20-style comparator: no reusable state, every query rebuilds everything."""

    name = "rebuild-per-query"

    def __init__(self, graph: nx.Graph, epsilon: float = 0.5) -> None:
        self.graph = graph
        self.epsilon = epsilon
        self._router = RebuildPerQueryRouter(graph, epsilon=epsilon)

    def preprocess(self) -> PreprocessInfo:
        # Nothing survives between queries — the rebuild cost is charged to
        # every query's rounds instead, which is what the comparison measures.
        return _observe_preprocess(
            PreprocessInfo(backend=self.name, rounds=0, details={"rebuilds_per_query": True})
        )

    def route(
        self, requests: Sequence[RoutingRequest], load: int | None = None
    ) -> RouteResult:
        started = time.perf_counter()
        outcome = self._router.route(requests, load=load)
        result = RouteResult(
            backend=self.name,
            delivered=outcome.delivered,
            total_tokens=outcome.total_tokens,
            query_rounds=outcome.query_rounds,
            preprocess_rounds=0,
            load=load if load is not None else infer_load(requests),
            raw=outcome,
        )
        return _observe_route(self.name, result, started)


class RandomizedGKSBackend:
    """GKS17-style randomized two-phase routing behind the backend protocol."""

    name = "randomized-gks"

    def __init__(self, graph: nx.Graph, seed: int = 0, phi: float | None = None) -> None:
        self.graph = graph
        self.seed = seed
        self.phi = phi

    def preprocess(self) -> PreprocessInfo:
        return _observe_preprocess(
            PreprocessInfo(backend=self.name, rounds=0, details={"randomized": True})
        )

    def route(
        self, requests: Sequence[RoutingRequest], load: int | None = None
    ) -> RouteResult:
        started = time.perf_counter()
        outcome = route_randomized(self.graph, requests, seed=self.seed, phi=self.phi)
        result = RouteResult(
            backend=self.name,
            delivered=outcome.delivered,
            total_tokens=len(requests),
            query_rounds=outcome.rounds,
            preprocess_rounds=0,
            load=load if load is not None else infer_load(requests),
            extra={
                "congestion": outcome.congestion,
                "dilation": outcome.dilation,
                "walk_steps": outcome.walk_steps,
                "seed": outcome.seed,
            },
            raw=outcome,
        )
        return _observe_route(self.name, result, started)


class DirectBackend:
    """Naive shortest-path store-and-forward behind the backend protocol."""

    name = "direct"

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph

    def preprocess(self) -> PreprocessInfo:
        return _observe_preprocess(PreprocessInfo(backend=self.name, rounds=0, details={}))

    def route(
        self, requests: Sequence[RoutingRequest], load: int | None = None
    ) -> RouteResult:
        started = time.perf_counter()
        outcome = route_directly(self.graph, requests)
        result = RouteResult(
            backend=self.name,
            delivered=outcome.delivered,
            total_tokens=len(requests),
            query_rounds=outcome.rounds,
            preprocess_rounds=0,
            load=load if load is not None else infer_load(requests),
            extra={"congestion": outcome.congestion, "dilation": outcome.dilation},
            raw=outcome,
        )
        return _observe_route(self.name, result, started)

    def route_many(
        self,
        request_groups: Sequence[Sequence[RoutingRequest]],
        loads: Sequence[int | None] | None = None,
    ) -> list[RouteResult]:
        """Route several groups through one stacked scheduler pass."""
        if loads is None:
            loads = [None] * len(request_groups)
        started = time.perf_counter()
        outcomes = route_directly_many(self.graph, request_groups)
        per_query = (time.perf_counter() - started) / max(1, len(outcomes))
        results = []
        for requests, load, outcome in zip(request_groups, loads, outcomes):
            result = RouteResult(
                backend=self.name,
                delivered=outcome.delivered,
                total_tokens=len(requests),
                query_rounds=outcome.rounds,
                preprocess_rounds=0,
                load=load if load is not None else infer_load(requests),
                extra={"congestion": outcome.congestion, "dilation": outcome.dilation},
                raw=outcome,
            )
            results.append(
                _observe_route(self.name, result, time.perf_counter() - per_query)
            )
        return results


register_backend(DeterministicBackend.name, DeterministicBackend)
register_backend(RebuildPerQueryBackend.name, RebuildPerQueryBackend)
register_backend(RandomizedGKSBackend.name, RandomizedGKSBackend)
register_backend(DirectBackend.name, DirectBackend)
