"""Pluggable routing backends: one protocol over all four routing strategies.

``repro.backends`` turns the repo's routing implementations — the paper's
deterministic :class:`~repro.core.router.ExpanderRouter`, the CS20-style
rebuild-per-query comparator, the randomized GKS baseline, and naive direct
routing — into interchangeable :class:`RoutingBackend` instances with one
shared result schema, constructed by name through :func:`get_backend`.  The
serving layer (:class:`repro.service.RoutingService`), the applications, and
the benchmarks all speak this protocol, which is what makes the paper's
headline comparison runnable end to end.
"""

from repro.backends.adapters import (
    DeterministicBackend,
    DirectBackend,
    RandomizedGKSBackend,
    RebuildPerQueryBackend,
)
from repro.backends.base import (
    PreprocessInfo,
    RouteResult,
    RoutingBackend,
    available_backends,
    backend_factory,
    canonical_backend_params,
    get_backend,
    register_backend,
    supports_artifacts,
)

__all__ = [
    "PreprocessInfo",
    "RouteResult",
    "RoutingBackend",
    "available_backends",
    "backend_factory",
    "canonical_backend_params",
    "get_backend",
    "register_backend",
    "supports_artifacts",
    "DeterministicBackend",
    "DirectBackend",
    "RandomizedGKSBackend",
    "RebuildPerQueryBackend",
]
