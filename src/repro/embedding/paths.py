"""Path collections and their quality (congestion + dilation).

Section 2 of the paper defines the *quality* of a set of paths ``P`` as
``Q(P) = congestion(P) + dilation(P)`` where

* congestion ``c = max_e |{P in P : e in P}|`` and
* dilation ``d = max_P |P|`` (edges on the longest path).

One round of communication along every path can be executed in ``Q(P)^2``
deterministic rounds (Fact 2.2) or ``~O(Q(P))`` randomized rounds.  The
routing engine stores every embedded structure (virtual expander edges,
matchings, shuffler matchings) as a :class:`PathCollection` so quality — and
therefore round cost — is always available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

__all__ = ["Path", "PathCollection"]


def _edge_key(u: Hashable, v: Hashable) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class Path:
    """A simple path, stored as the tuple of its vertices.

    A single-vertex path is allowed (length 0); it arises when an embedded
    edge connects a vertex to itself after contraction or when a token's
    source equals its destination.
    """

    vertices: tuple

    def __post_init__(self) -> None:
        if len(self.vertices) < 1:
            raise ValueError("a path must contain at least one vertex")

    @property
    def source(self) -> Hashable:
        return self.vertices[0]

    @property
    def target(self) -> Hashable:
        return self.vertices[-1]

    @property
    def length(self) -> int:
        """Number of edges on the path."""
        return len(self.vertices) - 1

    def edges(self) -> Iterator[tuple]:
        """Undirected edge keys along the path."""
        for u, v in zip(self.vertices, self.vertices[1:]):
            yield _edge_key(u, v)

    def reversed(self) -> "Path":
        """The same path traversed target-to-source."""
        return Path(tuple(reversed(self.vertices)))

    def concatenate(self, other: "Path") -> "Path":
        """Join two paths where ``self.target == other.source``."""
        if self.target != other.source:
            raise ValueError("paths do not share an endpoint")
        return Path(self.vertices + other.vertices[1:])

    def __len__(self) -> int:
        return len(self.vertices)


class PathCollection:
    """A multiset of paths with cached congestion/dilation bookkeeping."""

    def __init__(self, paths: Iterable[Path] = ()) -> None:
        self._paths: list[Path] = []
        self._edge_load: dict[tuple, int] = {}
        self._dilation = 0
        for path in paths:
            self.add(path)

    # -- construction -----------------------------------------------------

    def add(self, path: Path) -> None:
        """Add one path to the collection."""
        self._paths.append(path)
        self._dilation = max(self._dilation, path.length)
        for edge in path.edges():
            self._edge_load[edge] = self._edge_load.get(edge, 0) + 1

    def extend(self, paths: Iterable[Path]) -> None:
        """Add many paths."""
        for path in paths:
            self.add(path)

    @classmethod
    def union(cls, collections: Iterable["PathCollection"]) -> "PathCollection":
        """Union (as multisets) of several collections."""
        merged = cls()
        for collection in collections:
            merged.extend(collection.paths)
        return merged

    # -- measures ----------------------------------------------------------

    @property
    def paths(self) -> list[Path]:
        return list(self._paths)

    @property
    def congestion(self) -> int:
        """Maximum number of paths sharing a single edge."""
        return max(self._edge_load.values(), default=0)

    @property
    def dilation(self) -> int:
        """Maximum number of edges on any path."""
        return self._dilation

    @property
    def quality(self) -> int:
        """``Q(P) = congestion + dilation`` (Section 2)."""
        return self.congestion + self.dilation

    def edge_load(self, u: Hashable, v: Hashable) -> int:
        """Number of paths using the undirected edge ``(u, v)``."""
        return self._edge_load.get(_edge_key(u, v), 0)

    def deterministic_round_cost(self, tokens_per_path: int = 1) -> int:
        """Rounds to send ``tokens_per_path`` tokens along every path (Fact 2.2).

        One token per path costs ``Q(P)^2`` rounds; ``L`` tokens per path can
        be pipelined for ``L * Q(P)^2`` rounds in the deterministic setting the
        paper uses.
        """
        if not self._paths:
            return 0
        return max(1, tokens_per_path) * self.quality * self.quality

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathCollection(paths={len(self._paths)}, congestion={self.congestion}, "
            f"dilation={self.dilation})"
        )
