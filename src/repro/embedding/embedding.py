"""Embeddings of virtual graphs into base graphs.

Section 2: an embedding of ``H1`` into ``H2`` (with ``V(H1) ⊆ V(H2)``) is a
map ``f : E(H1) -> P(H2)`` from virtual edges to base-graph paths.  The
quality of the embedding is the quality of the union of its paths.  Embeddings
compose (``g ∘ f``) and union (``f ∪ g`` on disjoint virtual graphs); the
hierarchical decomposition uses composition to "flatten" a virtual edge at
level ``i`` all the way down to a path in the original graph ``G``
(Definition 3.3), and Corollary 3.4 bounds the quality blow-up of flattening.

An :class:`Embedding` here maps *undirected virtual edges* (stored as sorted
pairs) to :class:`~repro.embedding.paths.Path` objects whose endpoints are the
edge's endpoints in the base graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import networkx as nx

from repro.embedding.paths import Path, PathCollection

__all__ = ["Embedding", "identity_embedding", "compose", "union"]


def _virtual_edge_key(u: Hashable, v: Hashable) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Embedding:
    """A map from virtual edges to base-graph paths.

    Attributes:
        mapping: virtual edge key -> base path realising the edge.
        name: optional label used in diagnostics ("H_X1 -> H_X", ...).
    """

    mapping: dict[tuple, Path] = field(default_factory=dict)
    name: str = ""

    # -- construction -----------------------------------------------------

    def add_edge(self, u: Hashable, v: Hashable, path: Path) -> None:
        """Record that virtual edge ``(u, v)`` is realised by ``path``.

        The path's endpoints must be ``{u, v}`` (in either orientation) unless
        the edge is a self-loop surrogate of length 0.
        """
        key = _virtual_edge_key(u, v)
        endpoints = {path.source, path.target}
        if endpoints != {u, v} and not (u == v and len(endpoints) == 1):
            raise ValueError(
                f"path endpoints {endpoints} do not match virtual edge ({u!r}, {v!r})"
            )
        self.mapping[key] = path
        self._quality_cache = None

    def path_for(self, u: Hashable, v: Hashable) -> Path:
        """Base path realising the virtual edge ``(u, v)``, oriented ``u -> v``."""
        key = _virtual_edge_key(u, v)
        path = self.mapping[key]
        if path.source == u:
            return path
        return path.reversed()

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return _virtual_edge_key(u, v) in self.mapping

    # -- measures ----------------------------------------------------------

    def path_collection(self) -> PathCollection:
        """All base paths of the embedding as a collection (for quality)."""
        return PathCollection(self.mapping.values())

    @property
    def quality(self) -> int:
        """Quality ``Q(f)`` of the embedding (Section 2).

        Embeddings are frozen once preprocessing built them, but their quality
        is read on every routing query; the fast path caches the value (as a
        lazily attached attribute, so previously pickled artifacts still
        load).  Mutating an embedding via :meth:`add_edge` invalidates it.
        """
        from repro.kernels import use_numpy

        cached = getattr(self, "_quality_cache", None)
        if cached is not None and use_numpy():
            return cached
        value = self.path_collection().quality
        self._quality_cache = value
        return value

    def virtual_edges(self) -> Iterator[tuple]:
        return iter(self.mapping.keys())

    def virtual_graph(self) -> nx.Graph:
        """The virtual graph induced by the embedded edges."""
        graph = nx.Graph()
        for u, v in self.mapping.keys():
            graph.add_edge(u, v)
        return graph

    def embed_path(self, virtual_path: Path) -> Path:
        """Map a path of virtual edges to the concatenated base path.

        This is the paper's extension of ``f`` from edges to paths
        (``f(e1, ..., el) = (f(e1), ..., f(el))``).
        """
        vertices = virtual_path.vertices
        if len(vertices) == 1:
            return Path(vertices)
        result: Path | None = None
        for u, v in zip(vertices, vertices[1:]):
            segment = self.path_for(u, v)
            result = segment if result is None else result.concatenate(segment)
        assert result is not None
        return result

    def __len__(self) -> int:
        return len(self.mapping)


def identity_embedding(graph: nx.Graph, name: str = "identity") -> Embedding:
    """The identity embedding: every edge maps to itself (the root of the hierarchy)."""
    embedding = Embedding(name=name)
    for u, v in graph.edges():
        embedding.add_edge(u, v, Path((u, v)))
    return embedding


def compose(outer: Embedding, inner: Embedding, name: str = "") -> Embedding:
    """Compose two embeddings: ``(outer ∘ inner)(e) = outer(inner(e))``.

    ``inner`` embeds ``H1`` into ``H2`` and ``outer`` embeds ``H2`` into
    ``H3``; the result embeds ``H1`` into ``H3``.  Every inner path is mapped
    edge by edge through ``outer`` and concatenated.
    """
    result = Embedding(name=name or f"{outer.name}∘{inner.name}")
    for (u, v), inner_path in inner.mapping.items():
        if inner_path.length == 0:
            result.mapping[_virtual_edge_key(u, v)] = inner_path
            continue
        flattened = outer.embed_path(inner_path)
        result.mapping[_virtual_edge_key(u, v)] = flattened
    return result


def union(embeddings: Iterable[Embedding], name: str = "union") -> Embedding:
    """Union of embeddings over disjoint virtual edge sets (``f ∪ g`` in Section 2)."""
    result = Embedding(name=name)
    for embedding in embeddings:
        for key, path in embedding.mapping.items():
            if key in result.mapping:
                raise ValueError(f"virtual edge {key} embedded twice in a union")
            result.mapping[key] = path
    return result
