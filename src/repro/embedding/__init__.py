"""Path collections, graph embeddings, and the deterministic matching embedder."""

from repro.embedding.embedding import Embedding, compose, identity_embedding, union
from repro.embedding.matching_embed import MatchingEmbedResult, embed_matching
from repro.embedding.paths import Path, PathCollection

__all__ = [
    "Embedding",
    "compose",
    "identity_embedding",
    "union",
    "MatchingEmbedResult",
    "embed_matching",
    "Path",
    "PathCollection",
]
