"""Matching embedder: Lemma 2.3 of the paper (after CS20 / HHS23).

Given disjoint vertex sets ``S`` (sources) and ``T`` (sinks) with
``|S| <= |T|`` in a bounded-degree graph, deterministically either

* embed a matching ``M`` between ``S`` and ``T`` that saturates ``S``, as a
  set of vertex-disjoint-*enough* paths of quality ``poly(1/psi) * polylog n``,
  or
* return a cut ``C`` of sparsity at most ``psi`` separating the unmatched
  sources from the unmatched sinks.

The paper realises this with a deterministic length-constrained flow / parallel
DFS machinery; we implement the same guarantee with a deterministic
congestion-capped multi-source BFS packing:

1. process sources in increasing ID order;
2. for the current source run a BFS restricted to edges whose current load is
   below the congestion cap and whose depth is below the dilation cap, looking
   for the nearest unmatched sink;
3. if every source is matched, return the matching embedding;
4. otherwise double the caps and retry; if the caps exceed the theoretical
   bound and sources remain unmatched, return the cut consisting of all
   vertices reachable from the unmatched sources within the capped region — by
   construction few edges leave that region, so its sparsity is small.

This preserves the behaviour the routing algorithm relies on: a saturating
matching embedding with quantified (and measured) congestion + dilation, or an
explicit sparse cut certificate.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.embedding.embedding import Embedding
from repro.embedding.paths import Path

__all__ = ["MatchingEmbedResult", "embed_matching"]


@dataclass
class MatchingEmbedResult:
    """Outcome of :func:`embed_matching`.

    Exactly one of the following holds:

    * ``saturated`` is True: ``matching`` pairs every source with a distinct
      sink and ``embedding`` holds a base-graph path per matched pair.
    * ``saturated`` is False: ``cut`` is a non-empty vertex set containing the
      unmatched sources with small sparsity (reported in ``cut_sparsity``).
    """

    matching: dict[Hashable, Hashable] = field(default_factory=dict)
    embedding: Embedding = field(default_factory=Embedding)
    saturated: bool = False
    cut: frozenset = frozenset()
    cut_sparsity: float = math.inf
    congestion_cap_used: int = 0
    dilation_cap_used: int = 0

    @property
    def quality(self) -> int:
        """Quality of the matching's path embedding."""
        return self.embedding.quality


def _capped_bfs_to_sink(
    graph: nx.Graph,
    source: Hashable,
    free_sinks: set,
    edge_load: dict[tuple, int],
    congestion_cap: int,
    dilation_cap: int,
) -> list | None:
    """Shortest path from ``source`` to any free sink using only under-loaded edges."""
    if source in free_sinks:
        return [source]
    parent: dict[Hashable, Hashable] = {source: source}
    queue: deque = deque([(source, 0)])
    while queue:
        node, depth = queue.popleft()
        if depth >= dilation_cap:
            continue
        for neighbour in sorted(graph.neighbors(node)):
            if neighbour in parent:
                continue
            key = (node, neighbour) if repr(node) <= repr(neighbour) else (neighbour, node)
            if edge_load.get(key, 0) >= congestion_cap:
                continue
            parent[neighbour] = node
            if neighbour in free_sinks:
                path = [neighbour]
                current = neighbour
                while current != source:
                    current = parent[current]
                    path.append(current)
                path.reverse()
                return path
            queue.append((neighbour, depth + 1))
    return None


def _reachable_region(
    graph: nx.Graph,
    seeds: Iterable[Hashable],
    edge_load: dict[tuple, int],
    congestion_cap: int,
    dilation_cap: int,
) -> set:
    """Vertices reachable from ``seeds`` through under-loaded edges within the depth cap."""
    region: set = set(seeds)
    queue: deque = deque((seed, 0) for seed in seeds)
    while queue:
        node, depth = queue.popleft()
        if depth >= dilation_cap:
            continue
        for neighbour in sorted(graph.neighbors(node)):
            if neighbour in region:
                continue
            key = (node, neighbour) if repr(node) <= repr(neighbour) else (neighbour, node)
            if edge_load.get(key, 0) >= congestion_cap:
                continue
            region.add(neighbour)
            queue.append((neighbour, depth + 1))
    return region


def embed_matching(
    graph: nx.Graph,
    sources: Iterable[Hashable],
    sinks: Iterable[Hashable],
    psi: float = 0.1,
    max_cap_doublings: int = 6,
) -> MatchingEmbedResult:
    """Embed a matching from ``sources`` into ``sinks`` saturating the sources (Lemma 2.3).

    Args:
        graph: the base graph (assumed connected, bounded degree).
        sources: the set ``S``; every source must be matched for success.
        sinks: the set ``T`` (disjoint from ``S``); ``|S| <= |T|`` required.
        psi: target sparsity of the fallback cut.
        max_cap_doublings: how many times the congestion/dilation caps are
            doubled before giving up and reporting a cut.

    Returns:
        A :class:`MatchingEmbedResult` with either a saturating matching or a
        sparse cut containing the unmatched sources.
    """
    source_list = sorted(set(sources))
    sink_set = set(sinks)
    if set(source_list) & sink_set:
        raise ValueError("sources and sinks must be disjoint")
    if len(source_list) > len(sink_set):
        raise ValueError("|S| must be at most |T| (Lemma 2.3 precondition)")
    if not source_list:
        return MatchingEmbedResult(saturated=True)

    n = graph.number_of_nodes()
    # Initial caps follow the lemma's quality target; the ball-growing diameter
    # bound O(psi^-1 log n) caps the dilation.
    base_dilation = max(2, int(math.ceil(2.0 * math.log(max(n, 2)) / max(psi, 1e-6))))
    base_congestion = max(2, int(math.ceil(1.0 / max(psi * psi, 1e-6))))
    base_congestion = min(base_congestion, 4 * n)
    base_dilation = min(base_dilation, 2 * n)

    congestion_cap = max(2, min(base_congestion, 8))
    dilation_cap = max(2, min(base_dilation, 16))

    for _ in range(max_cap_doublings + 1):
        matching: dict[Hashable, Hashable] = {}
        embedding = Embedding(name="matching")
        edge_load: dict[tuple, int] = {}
        free_sinks = set(sink_set)
        unmatched: list[Hashable] = []
        for source in source_list:
            path = _capped_bfs_to_sink(
                graph, source, free_sinks, edge_load, congestion_cap, dilation_cap
            )
            if path is None:
                unmatched.append(source)
                continue
            sink = path[-1]
            matching[source] = sink
            free_sinks.discard(sink)
            embedding.add_edge(source, sink, Path(tuple(path)))
            for u, v in zip(path, path[1:]):
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                edge_load[key] = edge_load.get(key, 0) + 1
        if not unmatched:
            return MatchingEmbedResult(
                matching=matching,
                embedding=embedding,
                saturated=True,
                congestion_cap_used=congestion_cap,
                dilation_cap_used=dilation_cap,
            )
        if congestion_cap >= base_congestion and dilation_cap >= base_dilation:
            # Report the sparse-cut certificate around the stuck sources.
            region = _reachable_region(
                graph, unmatched, edge_load, congestion_cap, dilation_cap
            )
            region -= sink_set
            if not region:
                region = set(unmatched)
            boundary = sum(
                1
                for u in region
                for v in graph.neighbors(u)
                if v not in region
            )
            denominator = min(len(region), n - len(region)) or 1
            return MatchingEmbedResult(
                matching=matching,
                embedding=embedding,
                saturated=False,
                cut=frozenset(region),
                cut_sparsity=boundary / denominator,
                congestion_cap_used=congestion_cap,
                dilation_cap_used=dilation_cap,
            )
        congestion_cap = min(base_congestion, congestion_cap * 2)
        dilation_cap = min(base_dilation, dilation_cap * 2)

    raise RuntimeError("embed_matching exhausted its cap doublings unexpectedly")
