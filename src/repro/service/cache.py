"""Artifact cache: in-memory LRU over :class:`PreprocessArtifact`, plus disk tier.

The paper's amortization story — expensive preprocessing, cheap queries — only
materialises when the preprocessed structures survive between queries.  The
cache is where they survive:

* a bounded in-memory LRU (``capacity`` artifacts, least-recently-*used*
  evicted first), sized for the working set of hot expanders;
* an optional on-disk pickle store (one ``<fingerprint>.pkl`` per artifact)
  that outlives the process; memory misses fall through to disk and promote
  back into memory on a hit.  The disk tier is bounded too when
  ``disk_capacity`` is set: oldest files (by modification time) are evicted
  first, counted in :attr:`CacheStats.evictions_disk`.

When a :class:`~repro.metrics.MetricsRegistry` is attached, every lookup,
store, and eviction is also recorded as ``repro_cache_*`` metrics, so the
cluster tier's per-shard caches show up in the shared exposition.

Entries are keyed by the canonical fingerprint of
:func:`repro.service.fingerprint.graph_fingerprint`, so invalidation is
structural: a changed graph or parameter set simply hashes to a new key, and
stale artifacts age out of the LRU (or sit inert on disk) instead of ever
being served for the wrong graph.  Disk entries additionally re-check the
stored fingerprint and format version at load time; anything inconsistent or
unreadable is treated as a miss and deleted.

All public methods are thread-safe — the serving layer resolves artifacts from
worker threads.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.router import PreprocessArtifact
from repro.metrics import MetricsRegistry

__all__ = ["CacheStats", "ArtifactCache"]


@dataclass
class CacheStats:
    """Counters the cache accumulates across its lifetime.

    Attributes:
        hits: memory hits.
        disk_hits: misses in memory that were served from the disk tier.
        misses: lookups nothing could serve (caller must preprocess).
        evictions: artifacts dropped from the LRU because of capacity.
        evictions_disk: disk files dropped because of ``disk_capacity``.
        stores: artifacts written via :meth:`ArtifactCache.put`.
        disk_rejects: disk entries discarded as corrupt, stale, or mismatched.
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    evictions_disk: int = 0
    stores: int = 0
    disk_rejects: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without preprocessing (memory or disk)."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evictions_disk": self.evictions_disk,
            "stores": self.stores,
            "disk_rejects": self.disk_rejects,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ArtifactCache:
    """Bounded LRU of preprocessed artifacts with an optional disk tier.

    Attributes:
        capacity: maximum number of artifacts held in memory (>= 1).
        disk_dir: directory for the pickle tier; ``None`` disables it.
        disk_capacity: maximum number of pickles kept on disk (``None`` =
            unbounded); oldest files are evicted first when exceeded.
        stats: lifetime :class:`CacheStats`.
        metrics: optional registry the cache also records ``repro_cache_*``
            metrics into (``None`` keeps the cache metrics-silent).
    """

    capacity: int = 8
    disk_dir: str | os.PathLike | None = None
    disk_capacity: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    metrics: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if self.disk_capacity is not None and self.disk_capacity < 1:
            raise ValueError("disk capacity must be at least 1 (or None for unbounded)")
        self._entries: OrderedDict[str, PreprocessArtifact] = OrderedDict()
        self._lock = threading.RLock()
        self._disk_lock = threading.Lock()
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        if self.metrics is not None:
            self._m_lookups = self.metrics.counter(
                "repro_cache_lookups_total", "Artifact cache lookups by result.", labels=("result",)
            )
            self._m_stores = self.metrics.counter(
                "repro_cache_stores_total", "Artifacts stored in the cache."
            )
            self._m_evictions = self.metrics.counter(
                "repro_cache_evictions_total", "Artifacts evicted, by tier.", labels=("tier",)
            )
        else:
            self._m_lookups = self._m_stores = self._m_evictions = None

    def _record_lookup(self, result: str) -> None:
        if self._m_lookups is not None:
            self._m_lookups.labels(result=result).inc()

    # -- lookups -------------------------------------------------------------

    def get(self, fingerprint: str) -> PreprocessArtifact | None:
        """The cached artifact for ``fingerprint``, or ``None`` (a miss)."""
        with self._lock:
            artifact = self._entries.get(fingerprint)
            if artifact is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                self._record_lookup("hit")
                return artifact
        # Pickle I/O happens outside the lock so concurrent workers are not
        # serialized behind it; worst case two workers both read the same disk
        # entry, which is harmless.
        artifact = self._load_from_disk(fingerprint)
        with self._lock:
            if artifact is not None:
                self.stats.disk_hits += 1
                self._record_lookup("disk_hit")
                self._insert(fingerprint, artifact)
                return artifact
            self.stats.misses += 1
            self._record_lookup("miss")
            return None

    def peek(self, fingerprint: str) -> PreprocessArtifact | None:
        """The in-memory entry without stats, LRU, or disk side effects.

        The cluster's warm-key handoff uses this to export artifacts during
        rebalances — an administrative read that should not distort the
        hit-rate the operators watch.
        """
        with self._lock:
            return self._entries.get(fingerprint)

    def fingerprints(self) -> list[str]:
        """Every in-memory fingerprint, coldest first (LRU order)."""
        with self._lock:
            return list(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._entries:
                return True
            path = self._disk_path(fingerprint)
            return path is not None and path.exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- stores --------------------------------------------------------------

    def put(self, fingerprint: str, artifact: PreprocessArtifact) -> None:
        """Cache ``artifact`` under ``fingerprint`` (memory, and disk if enabled)."""
        artifact.fingerprint = fingerprint
        with self._lock:
            self.stats.stores += 1
            if self._m_stores is not None:
                self._m_stores.inc()
            self._insert(fingerprint, artifact)
        # Disk write outside the lock: the atomic tmp-file rename keeps
        # concurrent writers of the same fingerprint consistent.
        self._store_to_disk(fingerprint, artifact)

    def adopt(self, fingerprint: str, artifact: PreprocessArtifact) -> None:
        """Insert an artifact handed off from another cache, memory tier only.

        Unlike :meth:`put` this neither counts as a store nor writes the disk
        tier: adopted artifacts arrive via the shared-memory plane during
        cluster rebalances, and re-pickling a zero-copy view to disk would
        duplicate exactly the bytes the handoff avoided copying.
        """
        artifact.fingerprint = fingerprint
        with self._lock:
            self._insert(fingerprint, artifact)

    def clear(self, *, disk: bool = False) -> None:
        """Drop every in-memory entry (and the disk tier too if ``disk``)."""
        with self._lock:
            self._entries.clear()
            if disk and self.disk_dir is not None:
                for path in Path(self.disk_dir).glob("*.pkl"):
                    path.unlink(missing_ok=True)

    # -- internals -----------------------------------------------------------

    def _insert(self, fingerprint: str, artifact: PreprocessArtifact) -> None:
        self._entries[fingerprint] = artifact
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.labels(tier="memory").inc()

    def _disk_path(self, fingerprint: str) -> Path | None:
        if self.disk_dir is None:
            return None
        return Path(self.disk_dir) / f"{fingerprint}.pkl"

    def _store_to_disk(self, fingerprint: str, artifact: PreprocessArtifact) -> None:
        path = self._disk_path(fingerprint)
        if path is None:
            return
        tmp = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._enforce_disk_capacity()

    def _enforce_disk_capacity(self) -> None:
        """Evict the oldest disk pickles until the tier fits ``disk_capacity``."""
        if self.disk_capacity is None or self.disk_dir is None:
            return
        # One enforcement pass at a time; concurrent writers would otherwise
        # race the directory scan and double-count evictions.
        with self._disk_lock:
            entries = []
            for path in Path(self.disk_dir).glob("*.pkl"):
                try:
                    entries.append((path.stat().st_mtime_ns, path.name, path))
                except OSError:
                    continue  # concurrently evicted or cleared
            entries.sort()
            evicted = 0
            for _, _, path in entries[: max(0, len(entries) - self.disk_capacity)]:
                path.unlink(missing_ok=True)
                evicted += 1
            if evicted:
                with self._lock:
                    self.stats.evictions_disk += evicted
                if self._m_evictions is not None:
                    self._m_evictions.labels(tier="disk").inc(evicted)

    def _load_from_disk(self, fingerprint: str) -> PreprocessArtifact | None:
        path = self._disk_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except Exception:
            self.stats.disk_rejects += 1
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(artifact, PreprocessArtifact)
            or artifact.format_version != PreprocessArtifact.FORMAT_VERSION
            or artifact.fingerprint != fingerprint
        ):
            self.stats.disk_rejects += 1
            path.unlink(missing_ok=True)
            return None
        return artifact
