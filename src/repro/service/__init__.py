"""The serving layer: fingerprinted artifact cache + batched parallel routing.

``repro.service`` operationalises the paper's preprocessing/query tradeoff:
preprocess each expander once, cache the resulting
:class:`~repro.core.router.PreprocessArtifact` by canonical graph fingerprint
(in memory and optionally on disk), and serve batches of routing queries in
parallel off the shared artifacts.  See :class:`RoutingService` for the entry
point and ``examples/serving_demo.py`` for a tour.
"""

from repro.service.cache import ArtifactCache, CacheStats
from repro.service.fingerprint import canonical_graph_payload, graph_fingerprint
from repro.service.service import BatchReport, QueryResult, RoutingQuery, RoutingService

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "canonical_graph_payload",
    "graph_fingerprint",
    "BatchReport",
    "QueryResult",
    "RoutingQuery",
    "RoutingService",
]
