"""The serving layer: fingerprinted artifact cache + batched multi-backend routing.

``repro.service`` operationalises the paper's preprocessing/query tradeoff:
preprocess each expander once per backend, cache the resulting
:class:`~repro.core.router.PreprocessArtifact` by canonical graph fingerprint
(in memory and optionally on disk), and serve batches of routing queries in
parallel off the shared artifacts — through any backend of the
:mod:`repro.backends` registry.  See :class:`RoutingService` for the entry
point, :meth:`RoutingService.compare_batch` for the side-by-side backend
comparison, and ``examples/serving_demo.py`` /
``examples/backend_showdown.py`` for tours.
"""

from repro.service.cache import ArtifactCache, CacheStats
from repro.service.fingerprint import (
    canonical_graph_payload,
    graph_fingerprint,
    graph_payload,
)
from repro.service.service import (
    BatchReport,
    ComparisonEntry,
    ComparisonReport,
    QueryResult,
    RoutingQuery,
    RoutingService,
)
from repro.service.shm import (
    ShmArtifactStore,
    ShmSegmentInfo,
    leaked_segments,
    shm_available,
    shm_enabled,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "canonical_graph_payload",
    "graph_fingerprint",
    "graph_payload",
    "BatchReport",
    "ComparisonEntry",
    "ComparisonReport",
    "QueryResult",
    "RoutingQuery",
    "RoutingService",
    "ShmArtifactStore",
    "ShmSegmentInfo",
    "leaked_segments",
    "shm_available",
    "shm_enabled",
]
