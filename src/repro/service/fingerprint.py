"""Canonical graph fingerprints: the cache key of the serving layer.

The preprocessing of Theorem 1.1 is a function of (a) the input expander —
vertex set, edge set, edge data — and (b) the tradeoff parameters the
hierarchy is built with.  Two routers preprocess identical structures exactly
when those agree, so the serving cache keys artifacts by a SHA-256 hash over a
canonical serialisation of both.

The serialisation sorts everything by ``repr`` (the same deterministic order
the generators and the expander sort key off), so the fingerprint is stable
across Python processes, insertion orders, and networkx internals.  Any
topology change — adding or removing an edge, changing a weight, renaming a
vertex — changes the fingerprint and therefore invalidates cached artifacts
for the old graph automatically.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

import networkx as nx

__all__ = ["canonical_graph_payload", "graph_payload", "graph_fingerprint"]


def _canonical_value(value: Any) -> str:
    """Deterministic token for one parameter or edge-data value."""
    if isinstance(value, float):
        # repr of a float is exact in Python 3; hex avoids any doubt.
        return f"f:{value.hex()}"
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{_canonical_value(k)}={_canonical_value(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return f"m:{{{inner}}}"
    return f"{type(value).__name__}:{value!r}"


def graph_payload(graph: nx.Graph) -> str:
    """The graph-only part of the canonical payload (no parameter lines).

    This is the expensive part of fingerprinting — every node and edge is
    canonicalized — and it depends on nothing but the graph, so callers that
    fingerprint the same graph under many parameter sets (the serving layer
    keys one graph per backend and parameter combination) can compute it once
    and pass it to :func:`graph_fingerprint`.
    """
    nodes = sorted(graph.nodes(), key=repr)
    lines = ["v1", f"n={len(nodes)}"]
    lines.extend(f"node {node!r}" for node in nodes)
    edges = []
    for u, v, data in graph.edges(data=True):
        a, b = sorted((u, v), key=repr)
        edges.append((repr(a), repr(b), _canonical_value(dict(data))))
    edges.sort()
    lines.extend(f"edge {a} {b} {data}" for a, b, data in edges)
    return "\n".join(lines)


def _parameter_lines(parameters: Mapping[str, Any] | None) -> list[str]:
    return [
        f"param {key}={_canonical_value((parameters or {})[key])}"
        for key in sorted(parameters or {})
    ]


def canonical_graph_payload(graph: nx.Graph, parameters: Mapping[str, Any] | None = None) -> str:
    """The canonical text the fingerprint hashes (exposed for tests/debugging)."""
    return "\n".join([graph_payload(graph), *_parameter_lines(parameters)])


def graph_fingerprint(
    graph: nx.Graph,
    parameters: Mapping[str, Any] | None = None,
    *,
    precomputed_graph_payload: str | None = None,
) -> str:
    """SHA-256 fingerprint of a graph plus preprocessing parameters.

    Args:
        graph: the expander the artifact is (or would be) preprocessed for.
        parameters: everything that influences preprocessing besides the graph
            (epsilon, psi, hierarchy parameters, backend name and parameters);
            differing parameters must yield different cache keys because they
            yield different preprocessed structures.
        precomputed_graph_payload: the value of :func:`graph_payload` for
            ``graph``, when the caller has it memoized; the caller guarantees
            it matches ``graph``.
    """
    if precomputed_graph_payload is None:
        precomputed_graph_payload = graph_payload(graph)
    payload = "\n".join([precomputed_graph_payload, *_parameter_lines(parameters)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
