"""Zero-copy shared-memory artifact plane (``REPRO_SHM``).

Process-mode serving used to ship every :class:`~repro.core.router.PreprocessArtifact`
to the workers through pickle + a disk spill: one full serialize on the
parent, one disk write, then one full parse *per worker*.  This module
replaces that copy chain with one ``multiprocessing.shared_memory`` segment
per fingerprint:

* :meth:`ShmArtifactStore.publish` flattens the artifact once — a pickle-5
  *skeleton* whose numpy payloads (CSR adjacency of every graph, partner
  tables, portal tables, hierarchy caches) are carried as out-of-band raw
  buffers — and lays skeleton + buffer table + aligned buffers out in a
  single named segment;
* :func:`attach` maps the segment and rebuilds the artifact with
  ``pickle.loads(..., buffers=...)`` over memoryviews *into the segment*:
  the heavy arrays are zero-copy views of shared pages, never duplicated
  per worker;
* the store keeps a refcounted registry per fingerprint with
  ``create → attach → unlink`` lifecycle, finalizer-backed leak protection
  (a dropped store unlinks its segments), and ``repro_shm_*`` metrics
  (segments, bytes, attaches, unlink latency).

``REPRO_SHM=0`` (or an unavailable ``/dev/shm``) disables the plane and the
serving layer falls back to the existing spill path;
``tests/test_shm.py`` asserts round-trip equality, unlink-on-close, and the
fallback.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import time
import weakref
from dataclasses import dataclass
from typing import Any, Iterable

import networkx as nx

from repro.metrics import MetricsRegistry, default_registry

__all__ = [
    "SHM_ENV",
    "SEGMENT_PREFIX",
    "shm_available",
    "shm_enabled",
    "flatten_artifact",
    "unflatten_artifact",
    "attach",
    "ShmArtifactStore",
    "ShmSegmentInfo",
    "leaked_segments",
]

SHM_ENV = "REPRO_SHM"
SEGMENT_PREFIX = "repro-shm"
_MAGIC = b"RSHM"
_LAYOUT_VERSION = 1
_ALIGN = 64
_FALSY = {"0", "false", "off", "no"}


def _shared_memory_module():
    from multiprocessing import shared_memory

    return shared_memory


_available: bool | None = None


def shm_available() -> bool:
    """Whether named shared-memory segments work on this platform (probed once)."""
    global _available
    if _available is None:
        try:
            shared_memory = _shared_memory_module()
            probe = shared_memory.SharedMemory(create=True, size=16)
            try:
                probe.buf[:4] = _MAGIC
            finally:
                probe.close()
                probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def shm_enabled() -> bool:
    """The ``REPRO_SHM`` gate: enabled by default wherever shm is available."""
    if os.environ.get(SHM_ENV, "1").strip().lower() in _FALSY:
        return False
    return shm_available()


# -- flattening -----------------------------------------------------------------


def _graph_is_plain(graph: nx.Graph) -> bool:
    """True for undirected simple graphs with no node/edge/graph attributes."""
    if graph.is_directed() or graph.is_multigraph() or graph.graph:
        return False
    if any(data for _, data in graph.nodes(data=True)):
        return False
    return not any(data for _, _, data in graph.edges(data=True))


def _rebuild_plain_graph(nodes: Any, indptr: Any, indices: Any) -> nx.Graph:
    """Inverse of the CSR reduction in :class:`_ArtifactPickler`."""
    import numpy as np

    node_list = nodes.tolist() if hasattr(nodes, "tolist") else list(nodes)
    graph = nx.Graph()
    graph.add_nodes_from(node_list)
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    edges = []
    for position, u in enumerate(node_list):
        for slot in range(int(indptr[position]), int(indptr[position + 1])):
            edges.append((u, node_list[int(indices[slot])]))
    graph.add_edges_from(edges)
    return graph


class _ArtifactPickler(pickle.Pickler):
    """Protocol-5 pickler that lowers plain graphs to CSR numpy arrays.

    Vertex identity and the edge set are preserved exactly (nodes in sorted
    order, neighbors in sorted-index order — every query-path consumer orders
    vertices itself); the payoff is that adjacency ships as two int64 arrays
    in the shared segment instead of nested python dicts in the skeleton.
    """

    def reducer_override(self, obj):  # noqa: D102 - pickle protocol hook
        if type(obj) is nx.Graph and _graph_is_plain(obj):
            import numpy as np

            nodes = sorted(obj.nodes(), key=repr)
            index = {vertex: position for position, vertex in enumerate(nodes)}
            indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
            flat: list[int] = []
            for position, vertex in enumerate(nodes):
                neighbors = sorted(index[other] for other in obj.neighbors(vertex))
                flat.extend(neighbors)
                indptr[position + 1] = len(flat)
            indices = np.asarray(flat, dtype=np.int64)
            try:
                node_payload = np.asarray(nodes)
                if node_payload.dtype == object:
                    node_payload = nodes
            except Exception:
                node_payload = nodes
            return (_rebuild_plain_graph, (node_payload, indptr, indices))
        return NotImplemented


def _prewarm(artifact: Any) -> None:
    """Materialize the deterministic numpy-mode caches before flattening.

    Partner tables, sorted-part caches, and the dummy-dispersion replay are
    pure functions of the artifact; building them on the publisher side turns
    them into shared out-of-band arrays every attaching worker reuses instead
    of recomputing per process.
    """
    try:
        from repro.kernels import use_numpy
        from repro.kernels.dispersion import _partner_table

        if not use_numpy():
            return
        decomposition = getattr(artifact, "decomposition", None)
        if decomposition is None:
            return
        for node in decomposition.all_nodes():
            shuffler = getattr(node, "shuffler", None)
            if shuffler is None:
                continue
            for matching in shuffler.matchings:
                _partner_table(matching)
                matching.sorted_fractional()
    except Exception:
        # Pre-warming is a best-effort optimization; publishing an artifact
        # without warmed caches is still correct.
        pass


def flatten_artifact(artifact: Any, prewarm: bool = True) -> tuple[bytes, list[memoryview]]:
    """One artifact as (skeleton pickle, out-of-band buffers)."""
    if prewarm:
        _prewarm(artifact)
    buffers: list[memoryview] = []

    def _collect(buffer: pickle.PickleBuffer) -> bool:
        view = buffer.raw()
        buffers.append(view)
        return False  # keep out-of-band

    sink = io.BytesIO()
    pickler = _ArtifactPickler(sink, protocol=5, buffer_callback=_collect)
    pickler.dump(artifact)
    return sink.getvalue(), buffers


def unflatten_artifact(skeleton: bytes, buffers: Iterable[memoryview]) -> Any:
    """Inverse of :func:`flatten_artifact` (buffers in original order)."""
    return pickle.loads(skeleton, buffers=list(buffers))


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _segment_layout(skeleton: bytes, buffers: list[memoryview]) -> tuple[int, list[int]]:
    """Total segment size and per-buffer offsets for the header layout."""
    header = len(_MAGIC) + 4 + 8 + 8 + 8 * len(buffers)
    offset = _aligned(header + len(skeleton))
    offsets = []
    for view in buffers:
        offsets.append(offset)
        offset = _aligned(offset + view.nbytes)
    return max(offset, 1), offsets


def _write_segment(buf: memoryview, skeleton: bytes, buffers: list[memoryview]) -> None:
    cursor = 0
    buf[cursor : cursor + 4] = _MAGIC
    cursor += 4
    struct.pack_into("<I", buf, cursor, _LAYOUT_VERSION)
    cursor += 4
    struct.pack_into("<Q", buf, cursor, len(skeleton))
    cursor += 8
    struct.pack_into("<Q", buf, cursor, len(buffers))
    cursor += 8
    for view in buffers:
        struct.pack_into("<Q", buf, cursor, view.nbytes)
        cursor += 8
    buf[cursor : cursor + len(skeleton)] = skeleton
    _, offsets = _segment_layout(skeleton, buffers)
    for view, offset in zip(buffers, offsets):
        flat = view.cast("B") if view.ndim != 1 or view.format != "B" else view
        buf[offset : offset + view.nbytes] = flat

def _parse_segment(buf: memoryview) -> tuple[bytes, list[memoryview]]:
    """Skeleton bytes + zero-copy buffer views of one mapped segment."""
    if bytes(buf[:4]) != _MAGIC:
        raise ValueError("not a repro shm artifact segment")
    cursor = 4
    (version,) = struct.unpack_from("<I", buf, cursor)
    cursor += 4
    if version != _LAYOUT_VERSION:
        raise ValueError(f"unsupported shm segment layout version {version}")
    (skeleton_len,) = struct.unpack_from("<Q", buf, cursor)
    cursor += 8
    (buffer_count,) = struct.unpack_from("<Q", buf, cursor)
    cursor += 8
    sizes = [struct.unpack_from("<Q", buf, cursor + 8 * i)[0] for i in range(buffer_count)]
    cursor += 8 * buffer_count
    skeleton = bytes(buf[cursor : cursor + skeleton_len])
    offset = _aligned(cursor + skeleton_len)
    views: list[memoryview] = []
    for size in sizes:
        views.append(buf[offset : offset + size])
        offset = _aligned(offset + size)
    return skeleton, views


@dataclass(frozen=True)
class ShmSegmentInfo:
    """One published segment: its name (the attach key) and byte size."""

    name: str
    nbytes: int
    buffer_count: int


# Segment names created by *this* process's stores.  An attach of a locally
# published segment must not unregister it from the resource tracker — the
# tracker holds one entry per name, and that entry belongs to the publisher.
_locally_published: set[str] = set()


def _close_quietly(shm) -> None:
    """Unmap an attached segment, tolerating late-GC buffer exports.

    Artifacts hold numpy views *into* the mapping; at interpreter shutdown
    the finalizer can fire while those views are still alive, making
    ``close()`` raise ``BufferError``.  Leaving the mapping to the process
    teardown is harmless — skipping the close must never crash shutdown.
    """
    try:
        shm.close()
    except BufferError:
        # The mapping object is kept alive by the surviving views and is
        # unmapped when they go away; drop our handle so ``__del__`` does not
        # retry the failing close, and release the descriptor now.
        shm._mmap = None
        try:
            shm.close()
        except Exception:
            pass


def _untrack(shm) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    Python < 3.13 registers every attach with the multiprocessing resource
    tracker, which unlinks "leaked" segments at process exit — for a worker
    that merely mapped a publisher-owned segment, that would tear the
    artifact out from under every other process.  The publisher keeps its
    own registration (that is the leak protection); attachers must not.
    """
    try:  # pragma: no cover - tracker layout is a CPython internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def attach(name: str, metrics: MetricsRegistry | None = None) -> Any:
    """Map a published segment and rebuild the artifact over its buffers.

    The returned artifact's numpy payloads are views *into* the shared
    segment (no copy); the mapping handle stays open for the artifact's
    lifetime and closes when the artifact is garbage collected.
    """
    shared_memory = _shared_memory_module()
    started = time.perf_counter()
    shm = shared_memory.SharedMemory(name=name)
    if name not in _locally_published:
        _untrack(shm)
    try:
        skeleton, views = _parse_segment(shm.buf)
        artifact = unflatten_artifact(skeleton, views)
    except Exception:
        shm.close()
        raise
    # Keep the mapping alive exactly as long as the artifact; a finalizer
    # (rather than __del__) so interpreter shutdown cannot resurrect it.
    weakref.finalize(artifact, _close_quietly, shm)
    registry = metrics if metrics is not None else default_registry()
    registry.counter(
        "repro_shm_attaches_total", "Artifact attaches from shared-memory segments."
    ).inc()
    registry.histogram(
        "repro_shm_attach_seconds", "Wall-clock per shm artifact attach."
    ).observe(time.perf_counter() - started)
    return artifact


def _cleanup_segments(segments: dict[str, Any]) -> None:
    """Finalizer target: unlink everything a dropped store still owns."""
    for shm in list(segments.values()):
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
    segments.clear()


class ShmArtifactStore:
    """Publisher-side refcounted registry of shared-memory artifact segments.

    One store per serving process (the :class:`~repro.service.RoutingService`
    owns one).  ``publish`` is idempotent per fingerprint and bumps a
    refcount; ``release`` drops it and unlinks at zero; ``close`` unlinks
    everything.  A ``weakref.finalize`` on the store guarantees the segments
    are unlinked even when the owner forgets to close (leak protection) —
    and :func:`leaked_segments` lets harnesses audit ``/dev/shm`` anyway.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else default_registry()
        self._segments: dict[str, Any] = {}  # segment name -> SharedMemory
        self._by_fingerprint: dict[str, ShmSegmentInfo] = {}
        self._refcounts: dict[str, int] = {}
        self._counter = 0
        self._finalizer = weakref.finalize(self, _cleanup_segments, self._segments)
        self._m_segments = self.metrics.gauge(
            "repro_shm_segments", "Shared-memory artifact segments currently published."
        )
        self._m_bytes = self.metrics.gauge(
            "repro_shm_bytes", "Total bytes of published shared-memory segments."
        )
        self._m_published = self.metrics.counter(
            "repro_shm_published_total", "Segments published over the store's lifetime."
        )
        self._m_publish_seconds = self.metrics.histogram(
            "repro_shm_publish_seconds", "Wall-clock per artifact publish."
        )
        self._m_unlink_seconds = self.metrics.histogram(
            "repro_shm_unlink_seconds", "Wall-clock per segment unlink."
        )

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def segment_for(self, fingerprint: str) -> ShmSegmentInfo | None:
        """The published segment for ``fingerprint`` (``None`` if absent)."""
        return self._by_fingerprint.get(fingerprint)

    def publish(self, fingerprint: str, artifact: Any) -> ShmSegmentInfo:
        """Flatten ``artifact`` into a named segment (idempotent per fingerprint)."""
        info = self._by_fingerprint.get(fingerprint)
        if info is not None:
            self._refcounts[fingerprint] += 1
            return info
        shared_memory = _shared_memory_module()
        started = time.perf_counter()
        skeleton, buffers = flatten_artifact(artifact)
        total, _ = _segment_layout(skeleton, buffers)
        self._counter += 1
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{self._counter}-{fingerprint[:8]}"
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        try:
            _write_segment(shm.buf, skeleton, buffers)
        except Exception:
            shm.close()
            shm.unlink()
            raise
        info = ShmSegmentInfo(name=shm.name, nbytes=total, buffer_count=len(buffers))
        _locally_published.add(shm.name)
        self._segments[shm.name] = shm
        self._by_fingerprint[fingerprint] = info
        self._refcounts[fingerprint] = 1
        self._m_published.inc()
        self._m_segments.set(len(self._segments))
        self._m_bytes.set(sum(entry.nbytes for entry in self._by_fingerprint.values()))
        self._m_publish_seconds.observe(time.perf_counter() - started)
        return info

    def release(self, fingerprint: str) -> bool:
        """Drop one reference; unlink the segment when the count reaches zero."""
        if fingerprint not in self._by_fingerprint:
            return False
        self._refcounts[fingerprint] -= 1
        if self._refcounts[fingerprint] > 0:
            return False
        self._unlink(fingerprint)
        return True

    def _unlink(self, fingerprint: str) -> None:
        info = self._by_fingerprint.pop(fingerprint)
        self._refcounts.pop(fingerprint, None)
        shm = self._segments.pop(info.name, None)
        _locally_published.discard(info.name)
        if shm is None:
            return
        started = time.perf_counter()
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external interference
            pass
        self._m_unlink_seconds.observe(time.perf_counter() - started)
        self._m_segments.set(len(self._segments))
        self._m_bytes.set(sum(entry.nbytes for entry in self._by_fingerprint.values()))

    def trim(self, cap: int, keep: Iterable[str] = ()) -> int:
        """Unlink the oldest segments until at most ``cap`` remain.

        Fingerprints in ``keep`` (e.g. the current batch's keys) are never
        evicted.  Unlinking while workers still hold attached views is safe:
        the mapping survives the unlink and the pages free once the last
        attach closes.  Returns how many segments were unlinked.
        """
        protected = set(keep)
        unlinked = 0
        for fingerprint in list(self._by_fingerprint):
            if len(self._by_fingerprint) <= max(cap, len(protected)):
                break
            if fingerprint in protected:
                continue
            self._unlink(fingerprint)
            unlinked += 1
        return unlinked

    def close(self) -> None:
        """Unlink every published segment; idempotent."""
        for fingerprint in list(self._by_fingerprint):
            self._unlink(fingerprint)

    def __enter__(self) -> "ShmArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _segment_owner_pid(name: str, prefix: str) -> int | None:
    """The owning pid encoded in a segment name, or ``None`` if unparseable.

    Segment names are ``{prefix}-{pid}-{counter}-{fp8}`` (see
    :meth:`ShmArtifactStore.publish`); anything else is not ours to touch.
    """
    remainder = name[len(prefix) + 1 :] if name.startswith(prefix + "-") else ""
    pid_part = remainder.split("-", 1)[0]
    return int(pid_part) if pid_part.isdigit() else None


def leaked_segments(prefix: str = SEGMENT_PREFIX, *, reap: bool = False) -> list[str]:
    """Names of repro segments still present in ``/dev/shm`` (harness audit).

    With ``reap=True``, segments whose *owner process is dead* — the pid
    baked into the segment name no longer exists — are unlinked and only
    those reaped names are returned.  A SIGKILLed shard server never unlinks
    its published segments and its resource tracker dies with it, so the
    coordinator's failover path and journal recovery both call this to stop
    the leak; segments with a live owner are always left alone.

    Returns an empty list on platforms without a ``/dev/shm`` filesystem —
    the audit is then simply inconclusive rather than failing.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    present = sorted(entry for entry in os.listdir(root) if entry.startswith(prefix))
    if not reap:
        return present
    from multiprocessing import resource_tracker

    reaped = []
    for name in present:
        pid = _segment_owner_pid(name, prefix)
        if pid is None:
            continue
        try:
            os.kill(pid, 0)  # signal 0: existence probe only
            continue  # the owner is alive; not a leak
        except ProcessLookupError:
            pass  # dead owner: the segment is orphaned
        except PermissionError:
            continue  # alive, but owned by another user
        try:
            os.unlink(os.path.join(root, name))
        except OSError:
            continue
        # This process may have attached (and registered) the segment before
        # its owner died; make sure our tracker does not re-unlink at exit.
        try:
            resource_tracker.unregister("/" + name, "shared_memory")
        except (KeyError, ValueError, OSError):
            pass
        reaped.append(name)
    return reaped
