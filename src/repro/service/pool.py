"""Worker-process side of the service's ``parallelism="processes"`` mode.

The GIL makes the thread-pool fan-out of :class:`RoutingService` a
single-core affair: routing is pure Python compute, so "parallel" queries
time-slice one core.  Process mode ships the work to real worker processes
instead:

* **Builds** send the (picklable) graph + backend parameters to a worker,
  which preprocesses and returns the :class:`PreprocessArtifact` (plus the
  round/diagnostic info) to the parent for caching.
* **Routes** send only the query (fingerprint, requests, load); the
  artifact travels through a *spill directory* — the parent pickles each
  distinct artifact to disk once, and each worker process loads it at most
  once into its module-level runner cache (``artifact once per worker``).
  Subsequent queries for the same fingerprint hit the warm runner directly.

Everything here is module-level so ``ProcessPoolExecutor`` can pickle task
references; the runner cache survives for the life of the worker process
(the service keeps one long-lived pool, see ``RoutingService``).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import networkx as nx

from repro.backends.base import (
    PreprocessInfo,
    RouteResult,
    RoutingBackend,
    backend_factory,
    supports_artifacts,
)
from repro.core.router import PreprocessArtifact
from repro.core.tokens import RoutingRequest
from repro.kernels import kernel

__all__ = [
    "BuildTask",
    "RouteTask",
    "FusedRouteTask",
    "build_in_worker",
    "route_in_worker",
    "route_group_in_worker",
    "runner_cache_limit",
    "spill_path",
]


@dataclass(frozen=True)
class BuildTask:
    """One cold preprocess shipped to a worker process.

    ``kernel`` pins the worker to the parent's active compute kernel —
    worker processes do not share the parent's programmatic kernel override
    (and under spawn/forkserver not even its environment snapshot).
    """

    fingerprint: str
    graph: nx.Graph
    backend: str
    params: Mapping[str, Any] = field(default_factory=dict)
    kernel: str = "numpy"


@dataclass(frozen=True)
class RouteTask:
    """One routing query shipped to a worker process.

    ``graph`` may be ``None`` for artifact-backed fingerprints the parent has
    already spilled: the worker recovers the graph from the artifact itself
    (the deterministic backend's :class:`PreprocessArtifact` carries its
    decomposition's base graph), so warm-path queries ship only the requests.
    """

    fingerprint: str
    graph: nx.Graph | None
    requests: tuple[RoutingRequest, ...]
    load: int | None
    backend: str
    params: Mapping[str, Any] = field(default_factory=dict)
    spill_dir: str | None = None
    kernel: str = "numpy"
    shm_segment: str | None = None


@dataclass(frozen=True)
class FusedRouteTask:
    """Several same-fingerprint queries shipped to one worker as a fused batch.

    The worker routes every group through the backend's ``route_many`` (one
    stacked kernel pass) when the backend supports fusion, falling back to
    per-group ``route`` calls otherwise; per-group results are identical
    either way.  Artifact transport matches :class:`RouteTask` — shared
    memory first (``shm_segment``), spill directory second.
    """

    fingerprint: str
    graph: nx.Graph | None
    request_groups: tuple[tuple[RoutingRequest, ...], ...]
    loads: tuple[int | None, ...]
    backend: str
    params: Mapping[str, Any] = field(default_factory=dict)
    spill_dir: str | None = None
    kernel: str = "numpy"
    shm_segment: str | None = None


def spill_path(spill_dir: str | Path, fingerprint: str) -> Path:
    """Where the parent spills (and workers load) the artifact for ``fingerprint``."""
    return Path(spill_dir) / f"{fingerprint}.artifact.pkl"


#: fingerprint -> query-ready backend, per worker process (LRU, bounded).
_RUNNERS: dict[str, RoutingBackend] = {}

#: Most runners a worker process retains; the parent's ArtifactCache bounds
#: memory in the coordinator process and this bounds it in the workers.
_RUNNER_CACHE_LIMIT = max(1, int(os.environ.get("REPRO_POOL_RUNNER_CACHE", "16")))


def runner_cache_limit() -> int:
    """How many runners each worker process retains (``REPRO_POOL_RUNNER_CACHE``).

    The parent mirrors worker runner caches with the same bound to decide
    when re-spilling an artifact would be redundant (see
    ``RoutingService._route_batch_processes``).
    """
    return _RUNNER_CACHE_LIMIT


def _cache_runner(fingerprint: str, runner: RoutingBackend) -> None:
    _RUNNERS[fingerprint] = runner
    while len(_RUNNERS) > _RUNNER_CACHE_LIMIT:
        _RUNNERS.pop(next(iter(_RUNNERS)))


def _build_backend(task: BuildTask | RouteTask) -> RoutingBackend:
    if task.graph is None:
        raise RuntimeError(
            f"route task for {task.fingerprint[:10]} carried no graph and no usable artifact"
        )
    factory = backend_factory(task.backend)
    return factory(task.graph, **dict(task.params))


def _artifact_graph(artifact: PreprocessArtifact) -> nx.Graph | None:
    decomposition = getattr(artifact, "decomposition", None)
    return getattr(decomposition, "graph", None)


def build_in_worker(
    task: BuildTask,
) -> tuple[PreprocessInfo, PreprocessArtifact | None]:
    """Preprocess ``task``'s backend in this worker; return (info, artifact).

    The built runner is also retained in the worker's runner cache, so the
    worker that paid for the build serves its routes warm.
    """
    with kernel(task.kernel):
        backend = _build_backend(task)
        info = backend.preprocess()
        artifact = None
        if supports_artifacts(backend_factory(task.backend)) and supports_artifacts(backend):
            artifact = backend.export_artifact(fingerprint=task.fingerprint)
    _cache_runner(task.fingerprint, backend)
    return info, artifact


def _runner_for(task: RouteTask | FusedRouteTask) -> tuple[RoutingBackend, bool]:
    """The query-ready runner for ``task`` plus whether it was already warm."""
    runner = _RUNNERS.pop(task.fingerprint, None)
    if runner is not None:
        _RUNNERS[task.fingerprint] = runner  # refresh LRU position
        return runner, True
    factory = backend_factory(task.backend)
    artifact = None
    if task.shm_segment is not None and supports_artifacts(factory):
        # Zero-copy path: the parent published the artifact to a shared
        # segment; the rebuilt artifact's arrays are views into shared pages.
        try:
            from repro.service.shm import attach

            artifact = attach(task.shm_segment)
        except (FileNotFoundError, ValueError):
            artifact = None  # segment gone or unreadable: fall back to spill
    if artifact is None and task.spill_dir is not None and supports_artifacts(factory):
        path = spill_path(task.spill_dir, task.fingerprint)
        if path.exists():
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
    if artifact is not None:
        graph = task.graph if task.graph is not None else _artifact_graph(artifact)
        if graph is None:
            raise RuntimeError(
                f"route task for {task.fingerprint[:10]} carried no graph "
                "and its artifact exposes none"
            )
        runner = factory.from_artifact(graph, artifact)
    else:
        runner = _build_backend(task)
        runner.preprocess()
    _cache_runner(task.fingerprint, runner)
    return runner, False


def route_in_worker(task: RouteTask) -> tuple[RouteResult, float, bool]:
    """Route ``task`` in this worker; returns (outcome, seconds, runner_was_warm).

    ``seconds`` measures only the routing call, matching the thread path's
    per-query timing; artifact loading shows up in the ``warm`` flag (and the
    parent's ``repro_service_pool_runner_loads_total`` metric) instead.
    """
    with kernel(task.kernel):
        runner, warm = _runner_for(task)
        start = time.perf_counter()
        outcome = runner.route(list(task.requests), load=task.load)
        return outcome, time.perf_counter() - start, warm


def route_group_in_worker(
    task: FusedRouteTask,
) -> tuple[list[RouteResult], float, bool]:
    """Route a fused batch in this worker; returns (outcomes, seconds, warm).

    ``seconds`` is the whole fused pass (the parent attributes an equal share
    per query, matching the adapters' fused timing convention).
    """
    with kernel(task.kernel):
        runner, warm = _runner_for(task)
        groups = [list(group) for group in task.request_groups]
        start = time.perf_counter()
        route_many = getattr(runner, "route_many", None)
        if callable(route_many):
            outcomes = route_many(groups, list(task.loads))
        else:
            outcomes = [
                runner.route(group, load=load)
                for group, load in zip(groups, task.loads)
            ]
        return outcomes, time.perf_counter() - start, warm
