"""The batched routing service: fingerprint, cache, fan out, report.

:class:`RoutingService` is the serving layer the ROADMAP's production north
star asks for.  It turns the paper's preprocessing/query tradeoff into an
operational win:

1. **Fingerprint** — every submitted query hashes its graph + parameters
   (:func:`repro.service.fingerprint.graph_fingerprint`); queries on the same
   expander share a key.
2. **Cache** — per key, the expensive :meth:`ExpanderRouter.preprocess` runs
   at most once; artifacts come from the :class:`ArtifactCache` (memory LRU +
   optional disk pickles) whenever possible.
3. **Fan out** — a batch is grouped per fingerprint; missing artifacts are
   built concurrently (distinct graphs are independent), then every query of
   the batch routes concurrently through a ``concurrent.futures`` pool, each
   on a lightweight :meth:`ExpanderRouter.from_artifact` router.
4. **Report** — each batch returns a :class:`BatchReport` (cache hit rate,
   preprocessing rounds actually incurred vs. reused, query rounds, wall
   clock) whose tables render through :mod:`repro.analysis.reporting`.

Queries are pure with respect to the shared artifact — routing mutates only
its own tokens and per-query ledgers — so concurrent queries on one artifact
are safe.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import networkx as nx

from repro.analysis.reporting import format_kv, format_table
from repro.core.router import ExpanderRouter, PreprocessArtifact, RoutingOutcome
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.service.cache import ArtifactCache
from repro.service.fingerprint import graph_fingerprint

__all__ = ["RoutingQuery", "QueryResult", "BatchReport", "RoutingService"]


@dataclass(frozen=True)
class RoutingQuery:
    """One submitted routing instance, normalised and fingerprinted.

    Attributes:
        query_id: service-assigned id, unique per service instance.
        fingerprint: canonical hash of (graph, preprocessing parameters).
        graph: the expander to route on.
        requests: the Task 1 requests of this query.
        load: explicit load parameter ``L`` (``None`` = infer per query).
    """

    query_id: int
    fingerprint: str
    graph: nx.Graph
    requests: tuple[RoutingRequest, ...]
    load: int | None = None


@dataclass
class QueryResult:
    """Outcome of one query of a batch, plus serving metadata.

    Attributes:
        query_id: id assigned at :meth:`RoutingService.submit` time.
        fingerprint: the cache key the query was served under.
        outcome: the :class:`RoutingOutcome` (identical to a direct
            :meth:`ExpanderRouter.route` call on the same instance).
        cache_hit: True when the artifact existed before this batch.
        seconds: wall-clock spent routing this query (excludes preprocessing).
    """

    query_id: int
    fingerprint: str
    outcome: RoutingOutcome
    cache_hit: bool
    seconds: float

    def as_row(self) -> dict[str, object]:
        return {
            "query": self.query_id,
            "graph": self.fingerprint[:10],
            "tokens": self.outcome.total_tokens,
            "delivered": self.outcome.delivered,
            "load": self.outcome.load,
            "query_rounds": self.outcome.query_rounds,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }


@dataclass
class BatchReport:
    """Aggregated serving stats for one :meth:`RoutingService.route_batch` call.

    Attributes:
        results: per-query results, in submission order.
        distinct_graphs: number of distinct fingerprints in the batch.
        cache_hits: queries whose artifact predated the batch.
        cache_misses: queries that had to wait for a fresh preprocess.
        preprocess_rounds_incurred: CONGEST rounds of *new* preprocessing this
            batch paid for (0 on a fully warm cache).
        preprocess_rounds_reused: rounds of preprocessing served from cache —
            the amortization the paper's tradeoff buys.
        preprocess_seconds: wall-clock spent building missing artifacts.
        wall_seconds: wall-clock of the whole batch.
    """

    results: list[QueryResult] = field(default_factory=list)
    distinct_graphs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    preprocess_rounds_incurred: int = 0
    preprocess_rounds_reused: int = 0
    preprocess_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def query_count(self) -> int:
        return len(self.results)

    @property
    def cache_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return self.cache_hits / len(self.results)

    @property
    def total_query_rounds(self) -> int:
        return sum(result.outcome.query_rounds for result in self.results)

    @property
    def all_delivered(self) -> bool:
        return all(result.outcome.all_delivered for result in self.results)

    def summary(self) -> dict[str, object]:
        """The batch headline numbers as a plain dict."""
        return {
            "queries": self.query_count,
            "distinct_graphs": self.distinct_graphs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
            "total_query_rounds": self.total_query_rounds,
            "all_delivered": self.all_delivered,
            "preprocess_seconds": self.preprocess_seconds,
            "wall_seconds": self.wall_seconds,
        }

    def render(self, per_query: bool = True) -> str:
        """Human-readable report (summary block plus optional per-query table)."""
        parts = [format_kv(self.summary(), title="batch")]
        if per_query and self.results:
            parts.append(format_table([result.as_row() for result in self.results]))
        return "\n\n".join(parts)


class RoutingService:
    """Batched, cached, parallel front end over :class:`ExpanderRouter`.

    Args:
        epsilon: tradeoff parameter used for every preprocess (part of the
            cache key, so services with different epsilons never share
            artifacts even over a shared disk tier).
        psi: optional explicit sparsity parameter (part of the cache key).
        hierarchy_params: optional full hierarchy parameter override; when
            given, its fields join the cache key.
        cache: the artifact cache to use (fresh default-sized
            :class:`ArtifactCache` when omitted).
        max_workers: worker pool size for one batch (``None`` = executor
            default).
        executor_factory: alternative ``concurrent.futures`` executor factory
            taking ``max_workers``; defaults to :class:`ThreadPoolExecutor`.
    """

    def __init__(
        self,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        cache: ArtifactCache | None = None,
        max_workers: int | None = None,
        executor_factory: Callable[[int | None], Executor] | None = None,
    ) -> None:
        self.epsilon = epsilon
        self.psi = psi
        self.hierarchy_params = hierarchy_params
        self.cache = cache if cache is not None else ArtifactCache()
        self.max_workers = max_workers
        self._executor_factory = executor_factory or (
            lambda workers: ThreadPoolExecutor(max_workers=workers)
        )
        self._pending: list[RoutingQuery] = []
        self._next_query_id = 0

    # -- submission ----------------------------------------------------------

    def fingerprint(self, graph: nx.Graph) -> str:
        """The cache key this service uses for ``graph``."""
        parameters: dict[str, Hashable] = {"epsilon": self.epsilon}
        if self.psi is not None:
            parameters["psi"] = self.psi
        if self.hierarchy_params is not None:
            parameters.update(
                (f"hierarchy.{key}", value)
                for key, value in sorted(vars(self.hierarchy_params).items())
            )
        return graph_fingerprint(graph, parameters)

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest],
        load: int | None = None,
    ) -> int:
        """Queue one routing query for the next batch; returns its query id."""
        query = RoutingQuery(
            query_id=self._next_query_id,
            fingerprint=self.fingerprint(graph),
            graph=graph,
            requests=tuple(requests),
            load=load,
        )
        self._next_query_id += 1
        self._pending.append(query)
        return query.query_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- execution -----------------------------------------------------------

    def route_batch(self, queries: Sequence[RoutingQuery] | None = None) -> BatchReport:
        """Route a batch (the pending queue when ``queries`` is omitted).

        Grouping, artifact resolution, and query execution are all per
        fingerprint: one preprocess per distinct cold graph (built
        concurrently), then every query routed concurrently on shared
        read-only artifacts.
        """
        if queries is None:
            queries, self._pending = self._pending, []
        else:
            queries = list(queries)
        report = BatchReport()
        if not queries:
            return report
        batch_start = time.perf_counter()

        by_fingerprint: dict[str, list[RoutingQuery]] = {}
        for query in queries:
            by_fingerprint.setdefault(query.fingerprint, []).append(query)
        report.distinct_graphs = len(by_fingerprint)

        with self._executor_factory(self.max_workers) as pool:
            # Phase 1: resolve an artifact per distinct fingerprint (cache
            # lookups first, cold preprocesses concurrently in the pool).
            artifacts: dict[str, PreprocessArtifact] = {}
            warm: dict[str, bool] = {}
            cold: dict[str, RoutingQuery] = {}
            for fingerprint, group in by_fingerprint.items():
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    artifacts[fingerprint] = cached
                    warm[fingerprint] = True
                    report.preprocess_rounds_reused += cached.preprocessing_rounds
                else:
                    cold[fingerprint] = group[0]
                    warm[fingerprint] = False
            if cold:
                preprocess_start = time.perf_counter()
                futures = {
                    fingerprint: pool.submit(self._build_artifact, query)
                    for fingerprint, query in cold.items()
                }
                for fingerprint, future in futures.items():
                    artifact = future.result()
                    artifacts[fingerprint] = artifact
                    self.cache.put(fingerprint, artifact)
                    report.preprocess_rounds_incurred += artifact.preprocessing_rounds
                report.preprocess_seconds = time.perf_counter() - preprocess_start

            # Phase 2: route every query of the batch concurrently.
            routers = {
                fingerprint: ExpanderRouter.from_artifact(
                    by_fingerprint[fingerprint][0].graph, artifact
                )
                for fingerprint, artifact in artifacts.items()
            }
            result_futures = [
                (query, pool.submit(self._route_one, routers[query.fingerprint], query))
                for query in queries
            ]
            for query, future in result_futures:
                outcome, seconds = future.result()
                report.results.append(
                    QueryResult(
                        query_id=query.query_id,
                        fingerprint=query.fingerprint,
                        outcome=outcome,
                        cache_hit=warm[query.fingerprint],
                        seconds=seconds,
                    )
                )

        report.cache_hits = sum(1 for result in report.results if result.cache_hit)
        report.cache_misses = len(report.results) - report.cache_hits
        report.wall_seconds = time.perf_counter() - batch_start
        return report

    def route(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest],
        load: int | None = None,
    ) -> RoutingOutcome:
        """Route one instance immediately (a batch of one), returning its outcome.

        Queries queued via :meth:`submit` are left pending — this routes only
        the instance passed here.
        """
        query = RoutingQuery(
            query_id=self._next_query_id,
            fingerprint=self.fingerprint(graph),
            graph=graph,
            requests=tuple(requests),
            load=load,
        )
        self._next_query_id += 1
        report = self.route_batch([query])
        return report.results[0].outcome

    # -- internals -----------------------------------------------------------

    def _build_artifact(self, query: RoutingQuery) -> PreprocessArtifact:
        router = ExpanderRouter(
            query.graph,
            epsilon=self.epsilon,
            psi=self.psi,
            hierarchy_params=self.hierarchy_params,
        )
        return router.export_artifact(fingerprint=query.fingerprint)

    @staticmethod
    def _route_one(router: ExpanderRouter, query: RoutingQuery) -> tuple[RoutingOutcome, float]:
        start = time.perf_counter()
        outcome = router.route(list(query.requests), load=query.load)
        return outcome, time.perf_counter() - start
