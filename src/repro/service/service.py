"""The batched routing service: fingerprint, cache, fan out, compare, report.

:class:`RoutingService` is the serving layer the ROADMAP's production north
star asks for.  It turns the paper's preprocessing/query tradeoff into an
operational win, and — since PR 2 — is *backend-agnostic*: every query names
a routing backend from the :mod:`repro.backends` registry, so the same
service front end drives the paper's deterministic router, the CS20-style
rebuild-per-query comparator, the randomized GKS baseline, and naive direct
routing.

1. **Fingerprint** — every submitted query hashes its graph + preprocessing
   parameters + backend name + backend parameters
   (:func:`repro.service.fingerprint.graph_fingerprint`); queries on the same
   expander under the same backend share a key.  The expensive graph
   canonicalization is memoized per ``Graph`` *object*, so resubmitting the
   same graph never re-canonicalizes it.
2. **Cache** — per key, backends with reusable preprocessed state (the
   artifact hooks of :class:`repro.backends.RoutingBackend`) preprocess at
   most once; artifacts come from the :class:`ArtifactCache` (memory LRU +
   optional disk pickles) whenever possible.  Backends without reusable state
   simply preprocess per batch (a no-op for all current ones).
3. **Fan out** — a batch is grouped per fingerprint; missing backends are
   built concurrently (distinct graphs are independent), then every query of
   the batch routes concurrently through a ``concurrent.futures`` pool.
4. **Report** — each batch returns a :class:`BatchReport`; the multi-backend
   entry point :meth:`RoutingService.compare_batch` routes the same workloads
   through several backends and returns a side-by-side
   :class:`ComparisonReport`, both rendered through
   :mod:`repro.analysis.reporting`.

Since PR 5 every query executes through an
:class:`~repro.planner.ExecutionPlan` — one object owning the backend,
backend parameters, kernel, parallelism, and chunking decision.  Callers may
pass a plan explicitly, attach a :class:`~repro.planner.QueryPlanner`
(``policy="cost"`` / ``"adaptive"``) and let the cost model choose, or keep
using the legacy kwargs, which the service turns into ``fixed`` plans with
identical behaviour.  Observed per-query and per-preprocess timings flow back
into the planner's cost model, which is how the adaptive policy converges.

Queries are pure with respect to the shared backend state — routing mutates
only its own tokens and per-query ledgers — so concurrent queries on one
backend are safe.
"""

from __future__ import annotations

import inspect
import json
import pickle
import shutil
import tempfile
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable, Mapping, Sequence

import networkx as nx

from repro.analysis.reporting import format_kv, format_table
from repro.backends.base import (
    PreprocessInfo,
    RouteResult,
    RoutingBackend,
    available_backends,
    backend_factory,
    canonical_backend_params,
    supports_artifacts,
    supports_fusion,
)
from repro.core.router import PreprocessArtifact
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.kernels import active_kernel
from repro.metrics import MetricsRegistry, default_registry
from repro.metrics import quantile as _quantile
from repro.planner import ExecutionPlan, QueryPlanner
from repro.service.cache import ArtifactCache
from repro.service.fingerprint import graph_fingerprint, graph_payload
from repro.service.pool import (
    BuildTask,
    FusedRouteTask,
    RouteTask,
    build_in_worker,
    route_group_in_worker,
    route_in_worker,
    runner_cache_limit,
    spill_path,
)
from repro.service.shm import ShmArtifactStore, shm_enabled
from repro.workloads import Workload

__all__ = [
    "RoutingQuery",
    "QueryResult",
    "BatchReport",
    "ComparisonEntry",
    "ComparisonReport",
    "RoutingService",
]

#: The default backend a query routes through when none is named.
DEFAULT_BACKEND = "deterministic"


def _shutdown_executor(pool: Executor) -> None:
    """Finalizer target: release a dropped service's executor without blocking."""
    pool.shutdown(wait=False)


@dataclass(frozen=True)
class RoutingQuery:
    """One submitted routing instance, normalised and fingerprinted.

    Attributes:
        query_id: service-assigned id, unique per service instance.
        fingerprint: canonical hash of (graph, preprocessing parameters,
            backend, backend parameters).
        graph: the graph to route on.
        requests: the Task 1 requests of this query.
        load: explicit load parameter ``L`` (``None`` = infer per query).
        backend: registry name of the routing backend to use (mirrors
            ``plan.backend`` when a plan is attached).
        backend_params: extra parameters for the backend factory (mirrors
            ``plan.backend_params``).
        workload: name of the workload shape the requests came from (reporting
            only; ``""`` for ad-hoc request lists).
        plan: the :class:`~repro.planner.ExecutionPlan` this query executes
            under (the service always attaches one at submit time; ``None``
            only for hand-built queries, which route as fixed plans).
    """

    query_id: int
    fingerprint: str
    graph: nx.Graph
    requests: tuple[RoutingRequest, ...]
    load: int | None = None
    backend: str = DEFAULT_BACKEND
    backend_params: Mapping[str, Any] = field(default_factory=dict)
    workload: str = ""
    plan: ExecutionPlan | None = None


@dataclass
class QueryResult:
    """Outcome of one query of a batch, plus serving metadata.

    Attributes:
        query_id: id assigned at :meth:`RoutingService.submit` time.
        fingerprint: the cache key the query was served under.
        backend: the backend that served the query.
        outcome: the normalized :class:`RouteResult` (for the deterministic
            backend, identical counts to a direct
            :meth:`ExpanderRouter.route` call on the same instance).
        cache_hit: True when the backend's artifact existed before this batch.
        seconds: wall-clock spent routing this query (excludes preprocessing).
        workload: workload-shape label carried over from the query.
        plan: the :class:`~repro.planner.ExecutionPlan` the query executed
            under.
    """

    query_id: int
    fingerprint: str
    backend: str
    outcome: RouteResult
    cache_hit: bool
    seconds: float
    workload: str = ""
    plan: ExecutionPlan | None = None

    @property
    def plan_id(self) -> str:
        """Full plan identity (``""`` for plan-less hand-built queries)."""
        return self.plan.plan_id if self.plan is not None else ""

    @property
    def plan_semantic_id(self) -> str:
        """Result-affecting plan identity (stable across execution modes)."""
        return self.plan.semantic_id if self.plan is not None else ""

    def as_row(self) -> dict[str, object]:
        return {
            "query": self.query_id,
            "graph": self.fingerprint[:10],
            "backend": self.backend,
            "plan": self.plan_id[:8],
            "tokens": self.outcome.total_tokens,
            "delivered": self.outcome.delivered,
            "load": self.outcome.load,
            "query_rounds": self.outcome.query_rounds,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }


@dataclass
class BatchReport:
    """Aggregated serving stats for one :meth:`RoutingService.route_batch` call.

    Attributes:
        results: per-query results, in submission order.
        distinct_graphs: number of distinct fingerprints in the batch.
        cache_hits: queries whose artifact predated the batch.
        cache_misses: queries that had to wait for a fresh preprocess.
        preprocess_rounds_incurred: CONGEST rounds of *new* preprocessing this
            batch paid for (0 on a fully warm cache).
        preprocess_rounds_reused: rounds of preprocessing served from cache —
            the amortization the paper's tradeoff buys.
        preprocess_seconds: wall-clock spent building missing backends.
        route_seconds: wall-clock of the routing phase (all queries fanned
            out, from first submit to last gather).
        wall_seconds: wall-clock of the whole batch.

    All timings come from the monotonic high-resolution clock
    (``time.perf_counter``), so they are safe to difference and feed the
    metrics histograms a real latency signal.
    """

    results: list[QueryResult] = field(default_factory=list)
    distinct_graphs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    preprocess_rounds_incurred: int = 0
    preprocess_rounds_reused: int = 0
    preprocess_seconds: float = 0.0
    route_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def query_count(self) -> int:
        return len(self.results)

    @property
    def query_seconds(self) -> list[float]:
        """Per-query routing wall-clock, in submission order."""
        return [result.seconds for result in self.results]

    @property
    def query_seconds_total(self) -> float:
        return sum(self.query_seconds)

    @property
    def query_seconds_mean(self) -> float:
        if not self.results:
            return 0.0
        return self.query_seconds_total / len(self.results)

    @property
    def query_seconds_max(self) -> float:
        return max(self.query_seconds, default=0.0)

    def query_seconds_quantile(self, q: float) -> float:
        """The ``q``-quantile of per-query latency (linear interpolation)."""
        return _quantile(self.query_seconds, q)

    @property
    def cache_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return self.cache_hits / len(self.results)

    @property
    def total_query_rounds(self) -> int:
        return sum(result.outcome.query_rounds for result in self.results)

    @property
    def all_delivered(self) -> bool:
        return all(result.outcome.all_delivered for result in self.results)

    def summary(self) -> dict[str, object]:
        """The batch headline numbers as a plain dict."""
        return {
            "queries": self.query_count,
            "distinct_graphs": self.distinct_graphs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
            "total_query_rounds": self.total_query_rounds,
            "all_delivered": self.all_delivered,
            "preprocess_seconds": self.preprocess_seconds,
            "route_seconds": self.route_seconds,
            "wall_seconds": self.wall_seconds,
            "query_seconds_mean": self.query_seconds_mean,
            "query_seconds_p50": self.query_seconds_quantile(0.50),
            "query_seconds_p95": self.query_seconds_quantile(0.95),
            "query_seconds_max": self.query_seconds_max,
        }

    def signature(self) -> str:
        """The deterministic shape of the batch as one canonical JSON string.

        Covers every count and round total but no wall-clock, so two batches
        over the same submissions agree byte for byte regardless of timing —
        and regardless of whether they were routed by the thread pool or the
        process pool (the determinism tests compare exactly this).  Plan
        identity is recorded as the *semantic* id (backend + parameters
        only), which is invariant across kernels, pool modes, and chunking
        of the same plan.
        """
        payload = {
            "queries": [
                {
                    "query_id": result.query_id,
                    "fingerprint": result.fingerprint,
                    "backend": result.backend,
                    "plan": result.plan_semantic_id,
                    "workload": result.workload,
                    "cache_hit": result.cache_hit,
                    "delivered": result.outcome.delivered,
                    "total": result.outcome.total_tokens,
                    "query_rounds": result.outcome.query_rounds,
                    "preprocess_rounds": result.outcome.preprocess_rounds,
                    "load": result.outcome.load,
                }
                for result in sorted(self.results, key=lambda result: result.query_id)
            ],
            "distinct_graphs": self.distinct_graphs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def render(self, per_query: bool = True) -> str:
        """Human-readable report (summary block plus optional per-query table)."""
        parts = [format_kv(self.summary(), title="batch")]
        if per_query and self.results:
            parts.append(format_table([result.as_row() for result in self.results]))
        return "\n\n".join(parts)


@dataclass
class ComparisonEntry:
    """One (backend, workload) cell of a :class:`ComparisonReport`."""

    backend: str
    workload: str
    workload_index: int
    result: RouteResult
    cache_hit: bool
    seconds: float

    def as_row(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "workload": self.workload,
            "delivered": self.result.delivered,
            "total": self.result.total_tokens,
            "query_rounds": self.result.query_rounds,
            "preprocess_rounds": self.result.preprocess_rounds,
            "load": self.result.load,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }


@dataclass
class ComparisonReport:
    """Side-by-side results of routing the same workloads through several backends.

    Attributes:
        entries: one entry per (backend, workload), grouped by backend in the
            order the backends were compared.
        batch_reports: the underlying per-backend :class:`BatchReport` (one
            batch per backend, so caching and fan-out behave exactly as in
            :meth:`RoutingService.route_batch`).
    """

    entries: list[ComparisonEntry] = field(default_factory=list)
    batch_reports: dict[str, BatchReport] = field(default_factory=dict)

    @property
    def backends(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.backend, None)
        return list(seen)

    @property
    def all_delivered(self) -> bool:
        return all(entry.result.all_delivered for entry in self.entries)

    def rows(self) -> list[dict[str, object]]:
        """One flat schema row per (backend, workload)."""
        return [entry.as_row() for entry in self.entries]

    def pivot(self, value: str = "query_rounds") -> list[dict[str, object]]:
        """One row per workload, one column per backend (default: query rounds)."""
        by_workload: dict[tuple[int, str], dict[str, object]] = {}
        for entry in self.entries:
            key = (entry.workload_index, entry.workload)
            row = by_workload.setdefault(key, {"workload": entry.workload})
            row[entry.backend] = entry.as_row()[value]
        return [by_workload[key] for key in sorted(by_workload)]

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-backend totals across every workload of the comparison."""
        rows = []
        for backend in self.backends:
            mine = [entry for entry in self.entries if entry.backend == backend]
            report = self.batch_reports.get(backend)
            rows.append(
                {
                    "backend": backend,
                    "workloads": len(mine),
                    "delivered": sum(entry.result.delivered for entry in mine),
                    "total": sum(entry.result.total_tokens for entry in mine),
                    "total_query_rounds": sum(entry.result.query_rounds for entry in mine),
                    "preprocess_rounds_incurred": (
                        report.preprocess_rounds_incurred if report else 0
                    ),
                    "preprocess_rounds_reused": (
                        report.preprocess_rounds_reused if report else 0
                    ),
                    "seconds": sum(entry.seconds for entry in mine),
                }
            )
        return rows

    def render(self) -> str:
        """The comparison as aligned plain-text tables (per-cell, pivot, totals)."""
        parts = []
        if self.entries:
            parts.append(format_table(self.rows()))
            parts.append("query_rounds per workload, side by side:")
            parts.append(format_table(self.pivot("query_rounds")))
            parts.append(format_table(self.summary_rows()))
        else:
            parts.append("(no data)")
        return "\n\n".join(parts)


class RoutingService:
    """Batched, cached, parallel front end over the pluggable routing backends.

    Args:
        epsilon: tradeoff parameter used for every deterministic preprocess
            (part of the cache key, so services with different epsilons never
            share artifacts even over a shared disk tier).
        psi: optional explicit sparsity parameter (part of the cache key).
        hierarchy_params: optional full hierarchy parameter override; when
            given, its fields join the cache key.
        cache: the artifact cache to use (fresh default-sized
            :class:`ArtifactCache` when omitted).
        max_workers: worker pool size (``None`` = executor default).
        parallelism: the *default* execution mode for fixed plans —
            ``"threads"`` (default) fans queries out over a thread pool —
            concurrency without parallel compute, the GIL applies — while
            ``"processes"`` ships preprocessing and routing to worker
            processes (artifacts spilled to disk once, loaded at most once
            per worker; see :mod:`repro.service.pool`).  Results are
            byte-identical either way (:meth:`BatchReport.signature`).  A
            query's :class:`~repro.planner.ExecutionPlan` may override the
            mode per batch slice; the service keeps one lazy long-lived pool
            per mode it actually uses.
        executor_factory: alternative ``concurrent.futures`` executor factory
            taking ``max_workers``; defaults to :class:`ThreadPoolExecutor`
            (thread-mode slices only).
        metrics: registry the service records ``repro_service_*`` metrics
            into (default: the process-wide :func:`default_registry`).  A
            default-constructed cache inherits the same registry.
        planner: a :class:`~repro.planner.QueryPlanner` that chooses plans
            for queries submitted without an explicit backend; observed
            timings are recorded back into its cost model.
        policy: convenience — build a planner with this policy (``"fixed"``,
            ``"cost"``, or ``"adaptive"``) inheriting the service's epsilon,
            parallelism, worker count, and metrics.  Ignored when ``planner``
            is given.

    Executors are created lazily on the first batch that needs their mode and
    reused across batches for the life of the service (one pool per mode per
    service instance, not one per batch); call :meth:`close` — or use the
    service as a context manager — to release them and the artifact spill
    directory.
    """

    def __init__(
        self,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        cache: ArtifactCache | None = None,
        max_workers: int | None = None,
        parallelism: str = "threads",
        executor_factory: Callable[[int | None], Executor] | None = None,
        metrics: MetricsRegistry | None = None,
        planner: QueryPlanner | None = None,
        policy: str | None = None,
    ) -> None:
        if parallelism not in ("threads", "processes"):
            raise ValueError(
                f"unknown parallelism {parallelism!r}; expected 'threads' or 'processes'"
            )
        if parallelism == "processes" and executor_factory is not None:
            raise ValueError("executor_factory only applies to parallelism='threads'")
        self.epsilon = epsilon
        self.psi = psi
        self.hierarchy_params = hierarchy_params
        self.parallelism = parallelism
        self.metrics = metrics if metrics is not None else default_registry()
        self.cache = cache if cache is not None else ArtifactCache(metrics=self.metrics)
        self.max_workers = max_workers
        if planner is None and policy is not None:
            planner = QueryPlanner(
                policy=policy,
                epsilon=epsilon,
                parallelism=parallelism,
                max_workers=max_workers,
                metrics=self.metrics,
            )
        self.planner = planner
        self._m_queries = self.metrics.counter(
            "repro_service_queries_total", "Queries created by the service.", labels=("backend",)
        )
        self._m_batches = self.metrics.counter(
            "repro_service_batches_total", "Batches routed by the service."
        )
        self._m_comparisons = self.metrics.counter(
            "repro_service_comparisons_total", "compare_batch() invocations."
        )
        self._m_query_seconds = self.metrics.histogram(
            "repro_service_query_seconds", "Per-query routing wall-clock.", labels=("backend",)
        )
        self._m_preprocess_seconds = self.metrics.histogram(
            "repro_service_preprocess_seconds", "Wall-clock building missing backends, per batch."
        )
        self._m_preprocess_rounds = self.metrics.counter(
            "repro_service_preprocess_rounds_total",
            "CONGEST preprocessing rounds, incurred vs reused.",
            labels=("kind",),
        )
        self._m_pool_created = self.metrics.counter(
            "repro_service_pool_created_total",
            "Executor pools created by the service (1 per service lifetime).",
            labels=("kind",),
        )
        self._m_pool_workers = self.metrics.gauge(
            "repro_service_pool_workers", "Configured worker count of the service's pool."
        )
        self._m_pool_tasks = self.metrics.counter(
            "repro_service_pool_tasks_total",
            "Tasks submitted to the service's pool.",
            labels=("kind",),
        )
        self._m_pool_runner_loads = self.metrics.counter(
            "repro_service_pool_runner_loads_total",
            "Worker-process runner resolutions (warm cache hit vs cold load).",
            labels=("state",),
        )
        self._m_spill_skipped = self.metrics.counter(
            "repro_service_pool_spill_skipped_total",
            "Artifact spill writes skipped, by reason (shm transport or "
            "worker runner cache already warm).",
            labels=("reason",),
        )
        self._m_fused_batches = self.metrics.counter(
            "repro_service_fused_batches_total",
            "Same-fingerprint query groups routed through one fused kernel pass.",
            labels=("mode",),
        )
        self._executor_factory = executor_factory or (
            lambda workers: ThreadPoolExecutor(max_workers=workers)
        )
        self._pools: dict[str, Executor] = {}
        self._pool_finalizers: dict[str, weakref.finalize] = {}
        self._spill_dir: Path | None = None
        # Insertion-ordered so the oldest spilled artifacts trim first.
        self._spilled: dict[str, None] = {}
        self._spill_finalizer: weakref.finalize | None = None
        # Zero-copy artifact plane for process-mode slices whose plan asks
        # for artifact_transport="shm"; created lazily, unlinked on close.
        self._shm_store: ShmArtifactStore | None = None
        # Parent-side mirror of the worker processes' runner caches (same
        # LRU bound).  Exact when the pool has one worker — which is when the
        # redundant-spill skip is applied; with more workers a task may land
        # on a cold sibling, so the mirror is advisory only.
        self._worker_warm: OrderedDict[str, None] = OrderedDict()
        self._closed = False
        self._pending: list[RoutingQuery] = []
        self._next_query_id = 0
        # Graph canonicalization dominates fingerprint cost; memoize it per
        # Graph *object* (weakly, so dropped graphs free their payloads).  The
        # caller must not mutate a graph between submits — a mutated graph
        # should be a new object (``graph.copy()``), which re-canonicalizes.
        self._payload_memo: "weakref.WeakKeyDictionary[nx.Graph, str]" = (
            weakref.WeakKeyDictionary()
        )
        # Full cache keys are also memoized per graph object: hashing the
        # canonical payload costs tens of microseconds per call at a few
        # hundred vertices, which dominates sub-millisecond queries (the
        # planner path hashes twice per submit — planning key + final
        # fingerprint).  Keyed by (backend, canonical params); the planning
        # key lives under a reserved empty backend name.
        self._key_memo: "weakref.WeakKeyDictionary[nx.Graph, dict[tuple, str]]" = (
            weakref.WeakKeyDictionary()
        )
        # Query-ready runners memoized per fingerprint for the thread path
        # (the process path has its per-worker equivalent in service/pool.py).
        # Rebuilding a backend from its artifact every warm batch costs more
        # than the routing itself for cheap queries; the fingerprint already
        # guarantees the runner matches the (graph, backend, params) content.
        # Batch accounting (cache hits, incurred/reused rounds) is computed
        # from the artifact cache exactly as before — the memo only skips
        # redundant reconstruction work, never changes what is reported.
        self._runner_memo: OrderedDict[
            str, tuple[RoutingBackend, PreprocessInfo | None, PreprocessArtifact | None]
        ] = OrderedDict()

    # -- lifecycle -----------------------------------------------------------

    def _ensure_pool(self, mode: str | None = None) -> Executor:
        """The service's long-lived executor for ``mode``, created on first use.

        One pool per execution mode the service actually serves (a plan may
        pick either mode per batch slice); each is created lazily, sized by
        the *service's* ``max_workers`` (per-query ``plan.max_workers`` is
        advisory — see :class:`~repro.planner.ExecutionPlan`), and reused
        for the service's lifetime.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        mode = mode or self.parallelism
        pool = self._pools.get(mode)
        if pool is None:
            if mode == "processes":
                pool = ProcessPoolExecutor(max_workers=self.max_workers)
            else:
                pool = self._executor_factory(self.max_workers)
            self._pools[mode] = pool
            # Services dropped without close() (loops over short-lived
            # services) must not strand their executors until process exit.
            self._pool_finalizers[mode] = weakref.finalize(
                self, _shutdown_executor, pool
            )
            self._m_pool_created.labels(kind=mode).inc()
            workers = getattr(pool, "_max_workers", None)
            if workers:
                self._m_pool_workers.set(workers)
        return pool

    def _ensure_spill_dir(self) -> Path:
        if self._spill_dir is None:
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-service-spill-"))
            self._spill_finalizer = weakref.finalize(
                self, shutil.rmtree, str(self._spill_dir), True
            )
        return self._spill_dir

    def _spill_artifact(self, fingerprint: str, artifact: PreprocessArtifact) -> None:
        """Write ``artifact`` to the spill directory once, for worker processes."""
        if fingerprint in self._spilled:
            return
        path = spill_path(self._ensure_spill_dir(), fingerprint)
        staging = path.with_suffix(".tmp")
        with open(staging, "wb") as handle:
            pickle.dump(artifact, handle)
        staging.replace(path)
        self._spilled[fingerprint] = None

    def _trim_spill_dir(self, keep: set[str]) -> None:
        """Bound the spill directory, never evicting the current batch's keys.

        The cap mirrors the artifact cache (4x its in-memory capacity, at
        least 16): the spill tier exists so each *worker* loads an artifact at
        most once, not as a second unbounded store.  Evicted fingerprints are
        simply re-spilled from the cache-of-record on their next warm batch.
        """
        cap = max(16, 4 * getattr(self.cache, "capacity", 4), len(keep))
        if len(self._spilled) <= cap or self._spill_dir is None:
            return
        for fingerprint in list(self._spilled):
            if len(self._spilled) <= cap:
                break
            if fingerprint in keep:
                continue
            del self._spilled[fingerprint]
            spill_path(self._spill_dir, fingerprint).unlink(missing_ok=True)

    def _publish_shm(self, fingerprint: str, artifact: PreprocessArtifact):
        """Publish ``artifact`` to the shm plane; ``None`` when unavailable.

        Failures (platform without /dev/shm, segment exhaustion) degrade to
        the spill path rather than failing the batch.
        """
        try:
            if self._shm_store is None:
                self._shm_store = ShmArtifactStore(metrics=self.metrics)
            info = self._shm_store.segment_for(fingerprint)
            if info is None:
                info = self._shm_store.publish(fingerprint, artifact)
            return info
        except Exception:
            return None

    def publish_segment(self, fingerprint: str, artifact: PreprocessArtifact):
        """Publish ``artifact`` on this service's shm plane (idempotent).

        Returns the :class:`~repro.service.shm.ShmSegmentInfo`, or ``None``
        when the plane is unavailable.  The cluster's warm-key handoff calls
        this to export a shard's artifact for zero-copy adoption elsewhere;
        the segment lives until the store trims it or the service closes.
        """
        return self._publish_shm(fingerprint, artifact)

    def _note_worker_task(self, fingerprint: str) -> None:
        """Mirror one worker-side runner-cache touch (LRU, same bound)."""
        self._worker_warm[fingerprint] = None
        self._worker_warm.move_to_end(fingerprint)
        while len(self._worker_warm) > runner_cache_limit():
            self._worker_warm.popitem(last=False)

    def _maybe_spill(
        self,
        fingerprint: str,
        artifact: PreprocessArtifact,
        *,
        skip_reason: str | None,
    ) -> None:
        """Spill ``artifact`` unless already spilled or redundant (counted)."""
        if fingerprint in self._spilled:
            return
        if skip_reason is not None:
            self._m_spill_skipped.labels(reason=skip_reason).inc()
            return
        self._spill_artifact(fingerprint, artifact)

    def close(self) -> None:
        """Shut the worker pool down and remove the artifact spill directory.

        Idempotent; afterwards the service rejects new batches.  Pending
        (unrouted) submissions are left queued so callers can inspect them.
        """
        if self._closed:
            return
        self._closed = True
        for finalizer in self._pool_finalizers.values():
            finalizer.detach()
        self._pool_finalizers.clear()
        for pool in self._pools.values():
            pool.shutdown(wait=True)
        self._pools.clear()
        if self._spill_finalizer is not None:
            self._spill_finalizer()
            self._spill_finalizer = None
        self._spill_dir = None
        self._spilled.clear()
        if self._shm_store is not None:
            self._shm_store.close()
            self._shm_store = None
        self._worker_warm.clear()

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    # -- submission ----------------------------------------------------------

    def _runner_memo_get(
        self, fingerprint: str
    ) -> tuple[RoutingBackend, PreprocessInfo | None, PreprocessArtifact | None] | None:
        entry = self._runner_memo.get(fingerprint)
        if entry is not None:
            self._runner_memo.move_to_end(fingerprint)
        return entry

    def _runner_memo_put(
        self,
        fingerprint: str,
        runner: RoutingBackend,
        info: PreprocessInfo | None,
        artifact: PreprocessArtifact | None,
    ) -> None:
        """Retain a query-ready runner (LRU, sized to the artifact cache)."""
        self._runner_memo[fingerprint] = (runner, info, artifact)
        self._runner_memo.move_to_end(fingerprint)
        cap = max(4, getattr(self.cache, "capacity", 4))
        while len(self._runner_memo) > cap:
            self._runner_memo.popitem(last=False)

    def _graph_payload(self, graph: nx.Graph) -> str:
        payload = self._payload_memo.get(graph)
        if payload is None:
            payload = graph_payload(graph)
            self._payload_memo[graph] = payload
        return payload

    @property
    def fingerprint_memo_size(self) -> int:
        """How many live graphs have a memoized canonical payload."""
        return len(self._payload_memo)

    def _service_parameters(self) -> dict[str, Hashable]:
        """The service-level parameters every cache key includes."""
        parameters: dict[str, Hashable] = {"epsilon": self.epsilon}
        if self.psi is not None:
            parameters["psi"] = self.psi
        if self.hierarchy_params is not None:
            parameters.update(
                (f"hierarchy.{key}", value)
                for key, value in sorted(vars(self.hierarchy_params).items())
            )
        return parameters

    def fingerprint(
        self,
        graph: nx.Graph,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
    ) -> str:
        """The cache key this service uses for ``graph`` under ``backend``."""
        canonical = canonical_backend_params(backend_params)
        memo = self._key_memo.setdefault(graph, {})
        cached = memo.get(("backend", backend, canonical))
        if cached is not None:
            return cached
        parameters = self._service_parameters()
        parameters["backend"] = backend
        for key, value in canonical:
            parameters[f"backend.{key}"] = value
        fingerprint = graph_fingerprint(
            graph, parameters, precomputed_graph_payload=self._graph_payload(graph)
        )
        memo[("backend", backend, canonical)] = fingerprint
        return fingerprint

    def graph_key(self, graph: nx.Graph) -> str:
        """The backend-agnostic planning key (graph + service parameters).

        This is what the planner's plan cache keys on: the backend is the
        planner's *output*, so the planning key must not depend on it.  The
        per-backend artifact fingerprint is derived afterwards from the
        chosen plan.
        """
        memo = self._key_memo.setdefault(graph, {})
        cached = memo.get(("plan",))
        if cached is not None:
            return cached
        key = graph_fingerprint(
            graph,
            self._service_parameters(),
            precomputed_graph_payload=self._graph_payload(graph),
        )
        memo[("plan",)] = key
        return key

    def _plan_for(
        self,
        graph: nx.Graph,
        request_count: int,
        load: int | None,
        backend: str | None,
        backend_params: Mapping[str, Any] | None,
        workload: str,
    ) -> ExecutionPlan:
        """The plan a kwargs-style submission executes under.

        With a planner attached the decision is delegated (an explicitly
        named backend still pins a ``fixed`` plan); without one, the legacy
        kwargs are synthesized into a ``fixed`` plan that reproduces the
        pre-planner behaviour exactly.
        """
        if self.planner is not None:
            return self.planner.plan(
                self.graph_key(graph),
                graph.number_of_nodes(),
                request_count=request_count,
                load=load,
                workload=workload,
                backend=backend,
                backend_params=backend_params,
            )
        return ExecutionPlan(
            backend=backend if backend is not None else DEFAULT_BACKEND,
            backend_params=dict(backend_params or {}),
            kernel=active_kernel(),
            parallelism=self.parallelism,
            max_workers=self.max_workers,
            policy="fixed",
            reason="synthesized from service kwargs (no planner attached)",
        )

    def explain(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ):
        """The planner's EXPLAIN report for this submission, without routing it.

        Requires an attached planner (the fixed-kwargs path has nothing to
        explain); returns a :class:`~repro.planner.PlanExplanation`.
        """
        if self.planner is None:
            raise RuntimeError("explain() requires a service planner (policy=...)")
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        return self.planner.explain(
            self.graph_key(graph),
            graph.number_of_nodes(),
            request_count=len(requests),
            load=load,
            workload=workload,
            backend=backend,
            backend_params=backend_params,
        )

    def _make_query(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None,
        backend: str | None,
        backend_params: Mapping[str, Any] | None,
        workload: str = "",
        plan: ExecutionPlan | None = None,
    ) -> RoutingQuery:
        workload_name = workload
        if isinstance(requests, Workload):
            workload_name = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        requests = tuple(requests)
        if plan is None:
            plan = self._plan_for(
                graph, len(requests), load, backend, backend_params, workload_name
            )
        query = RoutingQuery(
            query_id=self._next_query_id,
            fingerprint=self.fingerprint(
                graph, backend=plan.backend, backend_params=plan.backend_params
            ),
            graph=graph,
            requests=requests,
            load=load,
            backend=plan.backend,
            backend_params=dict(plan.backend_params),
            workload=workload_name,
            plan=plan,
        )
        self._next_query_id += 1
        self._m_queries.labels(backend=plan.backend).inc()
        return query

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
        plan: ExecutionPlan | None = None,
    ) -> int:
        """Queue one routing query for the next batch; returns its query id.

        ``requests`` may be a plain request sequence or a
        :class:`~repro.workloads.Workload` (whose declared load bound is used
        when ``load`` is omitted).  ``workload`` labels a plain request
        sequence for reporting (a ``Workload``'s own name wins).

        Execution strategy resolves in precedence order: an explicit ``plan``
        wins outright; a named ``backend`` pins a fixed plan; otherwise the
        service's planner (when attached) chooses, falling back to the
        default backend under the service's own execution defaults.
        """
        query = self._make_query(
            graph, requests, load, backend, backend_params, workload=workload, plan=plan
        )
        self._pending.append(query)
        return query.query_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- execution -----------------------------------------------------------

    def route_batch(self, queries: Sequence[RoutingQuery] | None = None) -> BatchReport:
        """Route a batch (the pending queue when ``queries`` is omitted).

        Grouping, backend resolution, and query execution are all per
        fingerprint: one preprocess per distinct cold (graph, backend) pair
        (built concurrently), then every query routed concurrently on shared
        read-only backends.
        """
        if self._closed:
            # Before touching the pending queue: close() promises queued
            # submissions survive for inspection.
            raise RuntimeError("service is closed")
        if queries is None:
            queries, self._pending = self._pending, []
        else:
            queries = list(queries)
        report = BatchReport()
        if not queries:
            return report
        self._m_batches.inc()
        batch_start = time.perf_counter()

        report.distinct_graphs = len({query.fingerprint for query in queries})

        # Each plan names its execution mode; slice the batch per mode and
        # run every slice through that mode's long-lived pool.  Legacy
        # plan-less queries ride the service's default mode.
        by_mode: dict[str, list[RoutingQuery]] = {}
        for query in queries:
            mode = query.plan.parallelism if query.plan is not None else self.parallelism
            by_mode.setdefault(mode, []).append(query)
        for mode in sorted(by_mode):
            slice_queries = by_mode[mode]
            by_fingerprint: dict[str, list[RoutingQuery]] = {}
            for query in slice_queries:
                by_fingerprint.setdefault(query.fingerprint, []).append(query)
            pool = self._ensure_pool(mode)
            if mode == "processes":
                self._route_batch_processes(pool, slice_queries, by_fingerprint, report)
            else:
                self._route_batch_threads(pool, slice_queries, by_fingerprint, report)

        # Submission order, regardless of mode slicing and chunked fan-out.
        report.results.sort(key=lambda result: result.query_id)
        report.cache_hits = sum(1 for result in report.results if result.cache_hit)
        report.cache_misses = len(report.results) - report.cache_hits
        report.wall_seconds = time.perf_counter() - batch_start
        if report.preprocess_rounds_incurred:
            self._m_preprocess_rounds.labels(kind="incurred").inc(report.preprocess_rounds_incurred)
        if report.preprocess_rounds_reused:
            self._m_preprocess_rounds.labels(kind="reused").inc(report.preprocess_rounds_reused)
        return report

    def route(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        plan: ExecutionPlan | None = None,
    ) -> RouteResult:
        """Route one instance immediately (a batch of one), returning its outcome.

        Queries queued via :meth:`submit` are left pending — this routes only
        the instance passed here.  Strategy resolution follows
        :meth:`submit` (explicit plan > named backend > planner > default).
        """
        query = self._make_query(graph, requests, load, backend, backend_params, plan=plan)
        report = self.route_batch([query])
        return report.results[0].outcome

    def compare_batch(
        self,
        graph: nx.Graph,
        workloads: Sequence[Workload | Sequence[RoutingRequest]],
        backends: Sequence[str] | None = None,
        backend_params: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> ComparisonReport:
        """Route the same workloads through several backends, side by side.

        Args:
            graph: the graph every workload routes on.
            workloads: the request patterns to replay against every backend
                (:class:`~repro.workloads.Workload` objects or plain request
                sequences).
            backends: registry names to compare (default: every registered
                backend).
            backend_params: optional per-backend factory parameters, keyed by
                backend name.

        One :meth:`route_batch` runs per backend, so artifact caching and
        parallel fan-out apply exactly as in normal serving — routing a
        workload through the comparison yields the same rounds as routing it
        through the backend directly.
        """
        if backends is None:
            backends = available_backends()
        self._m_comparisons.inc()
        comparison = ComparisonReport()
        for backend in backends:
            params = (backend_params or {}).get(backend)
            batch = [
                self._make_query(graph, workload, None, backend, params)
                for workload in workloads
            ]
            batch_report = self.route_batch(batch)
            comparison.batch_reports[backend] = batch_report
            ordered = sorted(batch_report.results, key=lambda result: result.query_id)
            for index, result in enumerate(ordered):
                comparison.entries.append(
                    ComparisonEntry(
                        backend=backend,
                        workload=result.workload or f"workload-{index}",
                        workload_index=index,
                        result=result.outcome,
                        cache_hit=result.cache_hit,
                        seconds=result.seconds,
                    )
                )
        return comparison

    # -- internals -----------------------------------------------------------

    def _route_batch_threads(
        self,
        pool: Executor,
        queries: Sequence[RoutingQuery],
        by_fingerprint: dict[str, list[RoutingQuery]],
        report: BatchReport,
    ) -> None:
        """Thread-pool execution: shared in-process backends, concurrent fan-out."""
        # Phase 1: resolve a query-ready backend per distinct fingerprint
        # (artifact-cache lookups first, cold builds concurrently in the pool).
        runners: dict[str, RoutingBackend] = {}
        warm: dict[str, bool] = {}
        cold: dict[str, RoutingQuery] = {}
        for fingerprint, group in by_fingerprint.items():
            query = group[0]
            factory = backend_factory(query.backend)
            cached = (
                self.cache.get(fingerprint) if supports_artifacts(factory) else None
            )
            memo = self._runner_memo_get(fingerprint)
            if cached is not None:
                runners[fingerprint] = (
                    memo[0] if memo is not None else factory.from_artifact(query.graph, cached)
                )
                if memo is None:
                    self._runner_memo_put(
                        fingerprint, runners[fingerprint], None, cached
                    )
                warm[fingerprint] = True
                report.preprocess_rounds_reused += cached.preprocessing_rounds
            elif memo is not None:
                # Memoized runner for a fingerprint the artifact cache no
                # longer holds (or a stateless backend): serve it, and charge
                # the batch exactly what a rebuild would have reported —
                # preprocessing is deterministic, so the counts are
                # byte-identical and only the redundant work is skipped.
                runner, info, artifact = memo
                runners[fingerprint] = runner
                warm[fingerprint] = False
                if artifact is not None:
                    self.cache.put(fingerprint, artifact)
                    report.preprocess_rounds_incurred += artifact.preprocessing_rounds
                elif info is not None:
                    report.preprocess_rounds_incurred += info.rounds
            else:
                cold[fingerprint] = query
                warm[fingerprint] = False
        if cold:
            preprocess_start = time.perf_counter()
            futures = {
                fingerprint: pool.submit(self._build_runner, query)
                for fingerprint, query in cold.items()
            }
            self._m_pool_tasks.labels(kind="build").inc(len(futures))
            for fingerprint, future in futures.items():
                runner, info, artifact, build_seconds = future.result()
                runners[fingerprint] = runner
                self._runner_memo_put(fingerprint, runner, info, artifact)
                if artifact is not None:
                    self.cache.put(fingerprint, artifact)
                    report.preprocess_rounds_incurred += artifact.preprocessing_rounds
                else:
                    report.preprocess_rounds_incurred += info.rounds
                self._record_preprocess(cold[fingerprint], build_seconds)
            slice_preprocess = time.perf_counter() - preprocess_start
            report.preprocess_seconds += slice_preprocess
            self._m_preprocess_seconds.observe(slice_preprocess)

        # Phase 2: route every query of the batch concurrently.  Queries on
        # the same fingerprint whose plan asks for chunking share one pool
        # task (amortizes task overhead for sub-millisecond queries); the
        # per-query timing and results are identical either way.
        route_start = time.perf_counter()
        chunk_futures = []
        fused_ids: set[int] = set()
        for fingerprint, group in by_fingerprint.items():
            runner = runners[fingerprint]
            plan = group[0].plan
            if (
                plan is not None
                and plan.fused
                and len(group) >= 2
                and supports_fusion(runner)
            ):
                # The whole same-fingerprint group through one fused kernel
                # pass; per-group results are identical to routing each query
                # alone (the fused-equivalence tests assert this).
                chunk_futures.append(
                    (group, pool.submit(self._route_group_fused, runner, group))
                )
                fused_ids.update(query.query_id for query in group)
                self._m_fused_batches.labels(mode="threads").inc()
                continue
            chunk_size = plan.effective_chunk_size if plan is not None else 1
            for index in range(0, len(group), chunk_size):
                chunk = group[index : index + chunk_size]
                chunk_futures.append(
                    (chunk, pool.submit(self._route_chunk, runner, chunk))
                )
        self._m_pool_tasks.labels(kind="route").inc(len(chunk_futures))
        for chunk, future in chunk_futures:
            for query, (outcome, seconds) in zip(chunk, future.result()):
                self._m_query_seconds.labels(backend=query.backend).observe(seconds)
                self._record_query(query, seconds)
                if query.query_id in fused_ids:
                    self._record_fused(query, seconds)
                report.results.append(
                    QueryResult(
                        query_id=query.query_id,
                        fingerprint=query.fingerprint,
                        backend=query.backend,
                        outcome=outcome,
                        cache_hit=warm[query.fingerprint],
                        seconds=seconds,
                        workload=query.workload,
                        plan=query.plan,
                    )
                )
        report.route_seconds += time.perf_counter() - route_start

    def _route_batch_processes(
        self,
        pool: Executor,
        queries: Sequence[RoutingQuery],
        by_fingerprint: dict[str, list[RoutingQuery]],
        report: BatchReport,
    ) -> None:
        """Process-pool execution: artifacts spilled once, routed in workers.

        The parent keeps the cache-of-record (hits/misses and round
        accounting are identical to the thread path); worker processes keep a
        runner per fingerprint, loading each spilled artifact at most once.
        Worker tasks are pinned to each query's planned kernel (plans record
        the kernel active at submit time).
        """
        default_kernel = active_kernel()

        def query_kernel(query: RoutingQuery) -> str:
            return query.plan.kernel if query.plan is not None else default_kernel

        self._trim_spill_dir(keep=set(by_fingerprint))
        if self._shm_store is not None:
            self._shm_store.trim(
                max(16, 4 * getattr(self.cache, "capacity", 4)),
                keep=set(by_fingerprint),
            )
        # The pool mirror is only exact with a single worker process: a task
        # can otherwise land on a sibling whose runner cache never saw the
        # fingerprint, so the redundant-spill skip stays off.
        single_worker = getattr(pool, "_max_workers", 0) == 1

        shm_segments: dict[str, str] = {}

        def wants_shm(group: list[RoutingQuery]) -> bool:
            plan = group[0].plan
            return (
                plan is not None
                and plan.artifact_transport == "shm"
                and shm_enabled()
                and supports_artifacts(backend_factory(group[0].backend))
            )

        def ship(fingerprint: str, artifact: PreprocessArtifact, group) -> None:
            """Make the artifact reachable by workers: shm first, spill second."""
            if wants_shm(group):
                info = self._publish_shm(fingerprint, artifact)
                if info is not None:
                    shm_segments[fingerprint] = info.name
                    self._maybe_spill(fingerprint, artifact, skip_reason="shm")
                    return
            skip = (
                "runner-warm"
                if single_worker and fingerprint in self._worker_warm
                else None
            )
            self._maybe_spill(fingerprint, artifact, skip_reason=skip)

        warm: dict[str, bool] = {}
        cold: dict[str, RoutingQuery] = {}
        for fingerprint, group in by_fingerprint.items():
            query = group[0]
            factory = backend_factory(query.backend)
            cached = (
                self.cache.get(fingerprint) if supports_artifacts(factory) else None
            )
            if cached is not None:
                warm[fingerprint] = True
                report.preprocess_rounds_reused += cached.preprocessing_rounds
                ship(fingerprint, cached, group)
            else:
                warm[fingerprint] = False
                cold[fingerprint] = query
        if cold:
            preprocess_start = time.perf_counter()
            futures = {
                fingerprint: pool.submit(
                    build_in_worker,
                    BuildTask(
                        fingerprint=fingerprint,
                        graph=query.graph,
                        backend=query.backend,
                        params=self._resolved_backend_params(query),
                        kernel=query_kernel(query),
                    ),
                )
                for fingerprint, query in cold.items()
            }
            self._m_pool_tasks.labels(kind="build").inc(len(futures))
            for fingerprint, future in futures.items():
                info, artifact = future.result()
                # The building worker retained the runner in its cache.
                self._note_worker_task(fingerprint)
                if artifact is not None:
                    self.cache.put(fingerprint, artifact)
                    ship(fingerprint, artifact, by_fingerprint[fingerprint])
                    report.preprocess_rounds_incurred += artifact.preprocessing_rounds
                else:
                    report.preprocess_rounds_incurred += info.rounds
            slice_preprocess = time.perf_counter() - preprocess_start
            report.preprocess_seconds += slice_preprocess
            self._m_preprocess_seconds.observe(slice_preprocess)
            # Worker builds overlap, so per-build wall-clock is not directly
            # observable from the parent; calibrate with the slice average.
            for query in cold.values():
                self._record_preprocess(query, slice_preprocess / len(cold))

        route_start = time.perf_counter()
        spill = str(self._spill_dir) if self._spill_dir is not None else None

        def task_graph(query: RoutingQuery) -> nx.Graph | None:
            # Spilled and shm-published artifacts carry their own graph;
            # those queries ship only the request list.  Queries relying on
            # the runner-warm skip still ship the graph so a mirror miss
            # degrades to a (slow but correct) in-worker rebuild.
            reachable = (
                query.fingerprint in self._spilled
                or query.fingerprint in shm_segments
            )
            return None if reachable else query.graph

        solo_futures = []
        fused_futures = []
        for fingerprint, group in by_fingerprint.items():
            plan = group[0].plan
            self._note_worker_task(fingerprint)
            if (
                plan is not None
                and plan.fused
                and len(group) >= 2
                and supports_fusion(backend_factory(group[0].backend))
            ):
                task = FusedRouteTask(
                    fingerprint=fingerprint,
                    graph=task_graph(group[0]),
                    request_groups=tuple(query.requests for query in group),
                    loads=tuple(query.load for query in group),
                    backend=group[0].backend,
                    params=self._resolved_backend_params(group[0]),
                    spill_dir=spill,
                    kernel=query_kernel(group[0]),
                    shm_segment=shm_segments.get(fingerprint),
                )
                fused_futures.append(
                    (group, pool.submit(route_group_in_worker, task))
                )
                self._m_fused_batches.labels(mode="processes").inc()
                continue
            for query in group:
                task = RouteTask(
                    fingerprint=query.fingerprint,
                    graph=task_graph(query),
                    requests=query.requests,
                    load=query.load,
                    backend=query.backend,
                    params=self._resolved_backend_params(query),
                    spill_dir=spill,
                    kernel=query_kernel(query),
                    shm_segment=shm_segments.get(query.fingerprint),
                )
                solo_futures.append((query, pool.submit(route_in_worker, task)))
        self._m_pool_tasks.labels(kind="route").inc(
            len(solo_futures) + len(fused_futures)
        )

        def record(query: RoutingQuery, outcome: RouteResult, seconds: float,
                   fused: bool) -> None:
            self._m_query_seconds.labels(backend=query.backend).observe(seconds)
            self._record_query(query, seconds)
            if fused:
                self._record_fused(query, seconds)
            report.results.append(
                QueryResult(
                    query_id=query.query_id,
                    fingerprint=query.fingerprint,
                    backend=query.backend,
                    outcome=outcome,
                    cache_hit=warm[query.fingerprint],
                    seconds=seconds,
                    workload=query.workload,
                    plan=query.plan,
                )
            )

        for query, future in solo_futures:
            outcome, seconds, runner_warm = future.result()
            self._m_pool_runner_loads.labels(
                state="warm" if runner_warm else "cold"
            ).inc()
            record(query, outcome, seconds, fused=False)
        for group, future in fused_futures:
            outcomes, group_seconds, runner_warm = future.result()
            self._m_pool_runner_loads.labels(
                state="warm" if runner_warm else "cold"
            ).inc()
            per_query = group_seconds / max(1, len(group))
            for query, outcome in zip(group, outcomes):
                record(query, outcome, per_query, fused=True)
        report.route_seconds += time.perf_counter() - route_start

    def _resolved_backend_params(self, query: RoutingQuery) -> dict[str, Any]:
        """Query parameters plus the service-level defaults the factory accepts.

        The service-level tradeoff parameters apply to every backend whose
        factory accepts them by name (epsilon reaches both the deterministic
        router and the rebuild-per-query comparator, so comparisons are
        apples to apples); explicit per-query params still win.
        """
        factory = backend_factory(query.backend)
        params = dict(query.backend_params)
        service_defaults: dict[str, Any] = {"epsilon": self.epsilon}
        if self.psi is not None:
            service_defaults["psi"] = self.psi
        if self.hierarchy_params is not None:
            service_defaults["hierarchy_params"] = self.hierarchy_params
        try:
            accepted = {
                name
                for name, parameter in inspect.signature(factory).parameters.items()
                if parameter.kind
                in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
            }
        except (TypeError, ValueError):
            accepted = set()
        for key, value in service_defaults.items():
            if key in accepted:
                params.setdefault(key, value)
        return params

    def _make_backend(self, query: RoutingQuery) -> RoutingBackend:
        factory = backend_factory(query.backend)
        return factory(query.graph, **self._resolved_backend_params(query))

    def _build_runner(
        self, query: RoutingQuery
    ) -> tuple[RoutingBackend, PreprocessInfo, PreprocessArtifact | None, float]:
        start = time.perf_counter()
        backend = self._make_backend(query)
        info = backend.preprocess()
        artifact = None
        # Capability is judged on the *factory* (exactly like the warm-lookup
        # path), so a function-style factory never fills a cache that the
        # lookup path would not read.
        if supports_artifacts(backend_factory(query.backend)) and supports_artifacts(backend):
            artifact = backend.export_artifact(fingerprint=query.fingerprint)
        return backend, info, artifact, time.perf_counter() - start

    @staticmethod
    def _route_one(runner: RoutingBackend, query: RoutingQuery) -> tuple[RouteResult, float]:
        start = time.perf_counter()
        outcome = runner.route(list(query.requests), load=query.load)
        return outcome, time.perf_counter() - start

    @classmethod
    def _route_chunk(
        cls, runner: RoutingBackend, chunk: Sequence[RoutingQuery]
    ) -> list[tuple[RouteResult, float]]:
        """Route a chunk of same-fingerprint queries inside one pool task."""
        return [cls._route_one(runner, query) for query in chunk]

    @staticmethod
    def _route_group_fused(
        runner: RoutingBackend, group: Sequence[RoutingQuery]
    ) -> list[tuple[RouteResult, float]]:
        """Route a same-fingerprint group through one fused kernel pass.

        The fused pass is one wall-clock measurement; each query is
        attributed an equal share so per-query latency series stay
        comparable with the sequential path.
        """
        request_groups = [list(query.requests) for query in group]
        loads = [query.load for query in group]
        start = time.perf_counter()
        outcomes = runner.route_many(request_groups, loads)  # type: ignore[attr-defined]
        per_query = (time.perf_counter() - start) / max(1, len(group))
        return [(outcome, per_query) for outcome in outcomes]

    # -- planner feedback ----------------------------------------------------

    def _record_query(self, query: RoutingQuery, seconds: float) -> None:
        """Feed one observed routing wall-clock back into the cost model."""
        if self.planner is not None and query.plan is not None:
            self.planner.record_query(
                query.plan,
                query.graph.number_of_nodes(),
                seconds,
                workload=query.workload,
            )

    def _record_fused(self, query: RoutingQuery, seconds: float) -> None:
        """Feed one fused-batch per-query wall-clock into the fused cost curve."""
        if self.planner is not None and query.plan is not None:
            self.planner.record_fused_query(
                query.plan,
                query.graph.number_of_nodes(),
                seconds,
                workload=query.workload,
            )

    def _record_preprocess(self, query: RoutingQuery, seconds: float) -> None:
        """Feed one observed preprocess wall-clock back into the cost model."""
        if self.planner is not None and query.plan is not None:
            self.planner.record_preprocess(
                query.plan, query.graph.number_of_nodes(), seconds
            )
