"""The batched routing service: fingerprint, cache, fan out, compare, report.

:class:`RoutingService` is the serving layer the ROADMAP's production north
star asks for.  It turns the paper's preprocessing/query tradeoff into an
operational win, and — since PR 2 — is *backend-agnostic*: every query names
a routing backend from the :mod:`repro.backends` registry, so the same
service front end drives the paper's deterministic router, the CS20-style
rebuild-per-query comparator, the randomized GKS baseline, and naive direct
routing.

1. **Fingerprint** — every submitted query hashes its graph + preprocessing
   parameters + backend name + backend parameters
   (:func:`repro.service.fingerprint.graph_fingerprint`); queries on the same
   expander under the same backend share a key.  The expensive graph
   canonicalization is memoized per ``Graph`` *object*, so resubmitting the
   same graph never re-canonicalizes it.
2. **Cache** — per key, backends with reusable preprocessed state (the
   artifact hooks of :class:`repro.backends.RoutingBackend`) preprocess at
   most once; artifacts come from the :class:`ArtifactCache` (memory LRU +
   optional disk pickles) whenever possible.  Backends without reusable state
   simply preprocess per batch (a no-op for all current ones).
3. **Fan out** — a batch is grouped per fingerprint; missing backends are
   built concurrently (distinct graphs are independent), then every query of
   the batch routes concurrently through a ``concurrent.futures`` pool.
4. **Report** — each batch returns a :class:`BatchReport`; the multi-backend
   entry point :meth:`RoutingService.compare_batch` routes the same workloads
   through several backends and returns a side-by-side
   :class:`ComparisonReport`, both rendered through
   :mod:`repro.analysis.reporting`.

Queries are pure with respect to the shared backend state — routing mutates
only its own tokens and per-query ledgers — so concurrent queries on one
backend are safe.
"""

from __future__ import annotations

import inspect
import json
import pickle
import shutil
import tempfile
import time
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable, Mapping, Sequence

import networkx as nx

from repro.analysis.reporting import format_kv, format_table
from repro.backends.base import (
    PreprocessInfo,
    RouteResult,
    RoutingBackend,
    available_backends,
    backend_factory,
    canonical_backend_params,
    supports_artifacts,
)
from repro.core.router import PreprocessArtifact
from repro.core.tokens import RoutingRequest
from repro.hierarchy.builder import HierarchyParameters
from repro.metrics import MetricsRegistry, default_registry
from repro.metrics import quantile as _quantile
from repro.service.cache import ArtifactCache
from repro.service.fingerprint import graph_fingerprint, graph_payload
from repro.service.pool import (
    BuildTask,
    RouteTask,
    build_in_worker,
    route_in_worker,
    spill_path,
)
from repro.workloads import Workload

__all__ = [
    "RoutingQuery",
    "QueryResult",
    "BatchReport",
    "ComparisonEntry",
    "ComparisonReport",
    "RoutingService",
]

#: The default backend a query routes through when none is named.
DEFAULT_BACKEND = "deterministic"


def _shutdown_executor(pool: Executor) -> None:
    """Finalizer target: release a dropped service's executor without blocking."""
    pool.shutdown(wait=False)


@dataclass(frozen=True)
class RoutingQuery:
    """One submitted routing instance, normalised and fingerprinted.

    Attributes:
        query_id: service-assigned id, unique per service instance.
        fingerprint: canonical hash of (graph, preprocessing parameters,
            backend, backend parameters).
        graph: the graph to route on.
        requests: the Task 1 requests of this query.
        load: explicit load parameter ``L`` (``None`` = infer per query).
        backend: registry name of the routing backend to use.
        backend_params: extra parameters for the backend factory.
        workload: name of the workload shape the requests came from (reporting
            only; ``""`` for ad-hoc request lists).
    """

    query_id: int
    fingerprint: str
    graph: nx.Graph
    requests: tuple[RoutingRequest, ...]
    load: int | None = None
    backend: str = DEFAULT_BACKEND
    backend_params: Mapping[str, Any] = field(default_factory=dict)
    workload: str = ""


@dataclass
class QueryResult:
    """Outcome of one query of a batch, plus serving metadata.

    Attributes:
        query_id: id assigned at :meth:`RoutingService.submit` time.
        fingerprint: the cache key the query was served under.
        backend: the backend that served the query.
        outcome: the normalized :class:`RouteResult` (for the deterministic
            backend, identical counts to a direct
            :meth:`ExpanderRouter.route` call on the same instance).
        cache_hit: True when the backend's artifact existed before this batch.
        seconds: wall-clock spent routing this query (excludes preprocessing).
        workload: workload-shape label carried over from the query.
    """

    query_id: int
    fingerprint: str
    backend: str
    outcome: RouteResult
    cache_hit: bool
    seconds: float
    workload: str = ""

    def as_row(self) -> dict[str, object]:
        return {
            "query": self.query_id,
            "graph": self.fingerprint[:10],
            "backend": self.backend,
            "tokens": self.outcome.total_tokens,
            "delivered": self.outcome.delivered,
            "load": self.outcome.load,
            "query_rounds": self.outcome.query_rounds,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }


@dataclass
class BatchReport:
    """Aggregated serving stats for one :meth:`RoutingService.route_batch` call.

    Attributes:
        results: per-query results, in submission order.
        distinct_graphs: number of distinct fingerprints in the batch.
        cache_hits: queries whose artifact predated the batch.
        cache_misses: queries that had to wait for a fresh preprocess.
        preprocess_rounds_incurred: CONGEST rounds of *new* preprocessing this
            batch paid for (0 on a fully warm cache).
        preprocess_rounds_reused: rounds of preprocessing served from cache —
            the amortization the paper's tradeoff buys.
        preprocess_seconds: wall-clock spent building missing backends.
        route_seconds: wall-clock of the routing phase (all queries fanned
            out, from first submit to last gather).
        wall_seconds: wall-clock of the whole batch.

    All timings come from the monotonic high-resolution clock
    (``time.perf_counter``), so they are safe to difference and feed the
    metrics histograms a real latency signal.
    """

    results: list[QueryResult] = field(default_factory=list)
    distinct_graphs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    preprocess_rounds_incurred: int = 0
    preprocess_rounds_reused: int = 0
    preprocess_seconds: float = 0.0
    route_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def query_count(self) -> int:
        return len(self.results)

    @property
    def query_seconds(self) -> list[float]:
        """Per-query routing wall-clock, in submission order."""
        return [result.seconds for result in self.results]

    @property
    def query_seconds_total(self) -> float:
        return sum(self.query_seconds)

    @property
    def query_seconds_mean(self) -> float:
        if not self.results:
            return 0.0
        return self.query_seconds_total / len(self.results)

    @property
    def query_seconds_max(self) -> float:
        return max(self.query_seconds, default=0.0)

    def query_seconds_quantile(self, q: float) -> float:
        """The ``q``-quantile of per-query latency (linear interpolation)."""
        return _quantile(self.query_seconds, q)

    @property
    def cache_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return self.cache_hits / len(self.results)

    @property
    def total_query_rounds(self) -> int:
        return sum(result.outcome.query_rounds for result in self.results)

    @property
    def all_delivered(self) -> bool:
        return all(result.outcome.all_delivered for result in self.results)

    def summary(self) -> dict[str, object]:
        """The batch headline numbers as a plain dict."""
        return {
            "queries": self.query_count,
            "distinct_graphs": self.distinct_graphs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
            "total_query_rounds": self.total_query_rounds,
            "all_delivered": self.all_delivered,
            "preprocess_seconds": self.preprocess_seconds,
            "route_seconds": self.route_seconds,
            "wall_seconds": self.wall_seconds,
            "query_seconds_mean": self.query_seconds_mean,
            "query_seconds_p50": self.query_seconds_quantile(0.50),
            "query_seconds_p95": self.query_seconds_quantile(0.95),
            "query_seconds_max": self.query_seconds_max,
        }

    def signature(self) -> str:
        """The deterministic shape of the batch as one canonical JSON string.

        Covers every count and round total but no wall-clock, so two batches
        over the same submissions agree byte for byte regardless of timing —
        and regardless of whether they were routed by the thread pool or the
        process pool (the determinism tests compare exactly this).
        """
        payload = {
            "queries": [
                {
                    "query_id": result.query_id,
                    "fingerprint": result.fingerprint,
                    "backend": result.backend,
                    "workload": result.workload,
                    "cache_hit": result.cache_hit,
                    "delivered": result.outcome.delivered,
                    "total": result.outcome.total_tokens,
                    "query_rounds": result.outcome.query_rounds,
                    "preprocess_rounds": result.outcome.preprocess_rounds,
                    "load": result.outcome.load,
                }
                for result in sorted(self.results, key=lambda result: result.query_id)
            ],
            "distinct_graphs": self.distinct_graphs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "preprocess_rounds_incurred": self.preprocess_rounds_incurred,
            "preprocess_rounds_reused": self.preprocess_rounds_reused,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def render(self, per_query: bool = True) -> str:
        """Human-readable report (summary block plus optional per-query table)."""
        parts = [format_kv(self.summary(), title="batch")]
        if per_query and self.results:
            parts.append(format_table([result.as_row() for result in self.results]))
        return "\n\n".join(parts)


@dataclass
class ComparisonEntry:
    """One (backend, workload) cell of a :class:`ComparisonReport`."""

    backend: str
    workload: str
    workload_index: int
    result: RouteResult
    cache_hit: bool
    seconds: float

    def as_row(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "workload": self.workload,
            "delivered": self.result.delivered,
            "total": self.result.total_tokens,
            "query_rounds": self.result.query_rounds,
            "preprocess_rounds": self.result.preprocess_rounds,
            "load": self.result.load,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }


@dataclass
class ComparisonReport:
    """Side-by-side results of routing the same workloads through several backends.

    Attributes:
        entries: one entry per (backend, workload), grouped by backend in the
            order the backends were compared.
        batch_reports: the underlying per-backend :class:`BatchReport` (one
            batch per backend, so caching and fan-out behave exactly as in
            :meth:`RoutingService.route_batch`).
    """

    entries: list[ComparisonEntry] = field(default_factory=list)
    batch_reports: dict[str, BatchReport] = field(default_factory=dict)

    @property
    def backends(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.backend, None)
        return list(seen)

    @property
    def all_delivered(self) -> bool:
        return all(entry.result.all_delivered for entry in self.entries)

    def rows(self) -> list[dict[str, object]]:
        """One flat schema row per (backend, workload)."""
        return [entry.as_row() for entry in self.entries]

    def pivot(self, value: str = "query_rounds") -> list[dict[str, object]]:
        """One row per workload, one column per backend (default: query rounds)."""
        by_workload: dict[tuple[int, str], dict[str, object]] = {}
        for entry in self.entries:
            key = (entry.workload_index, entry.workload)
            row = by_workload.setdefault(key, {"workload": entry.workload})
            row[entry.backend] = entry.as_row()[value]
        return [by_workload[key] for key in sorted(by_workload)]

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-backend totals across every workload of the comparison."""
        rows = []
        for backend in self.backends:
            mine = [entry for entry in self.entries if entry.backend == backend]
            report = self.batch_reports.get(backend)
            rows.append(
                {
                    "backend": backend,
                    "workloads": len(mine),
                    "delivered": sum(entry.result.delivered for entry in mine),
                    "total": sum(entry.result.total_tokens for entry in mine),
                    "total_query_rounds": sum(entry.result.query_rounds for entry in mine),
                    "preprocess_rounds_incurred": (
                        report.preprocess_rounds_incurred if report else 0
                    ),
                    "preprocess_rounds_reused": (
                        report.preprocess_rounds_reused if report else 0
                    ),
                    "seconds": sum(entry.seconds for entry in mine),
                }
            )
        return rows

    def render(self) -> str:
        """The comparison as aligned plain-text tables (per-cell, pivot, totals)."""
        parts = []
        if self.entries:
            parts.append(format_table(self.rows()))
            parts.append("query_rounds per workload, side by side:")
            parts.append(format_table(self.pivot("query_rounds")))
            parts.append(format_table(self.summary_rows()))
        else:
            parts.append("(no data)")
        return "\n\n".join(parts)


class RoutingService:
    """Batched, cached, parallel front end over the pluggable routing backends.

    Args:
        epsilon: tradeoff parameter used for every deterministic preprocess
            (part of the cache key, so services with different epsilons never
            share artifacts even over a shared disk tier).
        psi: optional explicit sparsity parameter (part of the cache key).
        hierarchy_params: optional full hierarchy parameter override; when
            given, its fields join the cache key.
        cache: the artifact cache to use (fresh default-sized
            :class:`ArtifactCache` when omitted).
        max_workers: worker pool size (``None`` = executor default).
        parallelism: ``"threads"`` (default) fans queries out over a thread
            pool — concurrency without parallel compute, the GIL applies —
            while ``"processes"`` ships preprocessing and routing to worker
            processes (artifacts spilled to disk once, loaded at most once
            per worker; see :mod:`repro.service.pool`).  Results are
            byte-identical either way (:meth:`BatchReport.signature`).
        executor_factory: alternative ``concurrent.futures`` executor factory
            taking ``max_workers``; defaults to :class:`ThreadPoolExecutor`
            (``parallelism="threads"`` only).
        metrics: registry the service records ``repro_service_*`` metrics
            into (default: the process-wide :func:`default_registry`).  A
            default-constructed cache inherits the same registry.

    The executor is created lazily on the first batch and reused across
    batches for the life of the service (one pool per service instance, not
    one per batch); call :meth:`close` — or use the service as a context
    manager — to release it and the artifact spill directory.
    """

    def __init__(
        self,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        cache: ArtifactCache | None = None,
        max_workers: int | None = None,
        parallelism: str = "threads",
        executor_factory: Callable[[int | None], Executor] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if parallelism not in ("threads", "processes"):
            raise ValueError(
                f"unknown parallelism {parallelism!r}; expected 'threads' or 'processes'"
            )
        if parallelism == "processes" and executor_factory is not None:
            raise ValueError("executor_factory only applies to parallelism='threads'")
        self.epsilon = epsilon
        self.psi = psi
        self.hierarchy_params = hierarchy_params
        self.parallelism = parallelism
        self.metrics = metrics if metrics is not None else default_registry()
        self.cache = cache if cache is not None else ArtifactCache(metrics=self.metrics)
        self.max_workers = max_workers
        self._m_queries = self.metrics.counter(
            "repro_service_queries_total", "Queries created by the service.", labels=("backend",)
        )
        self._m_batches = self.metrics.counter(
            "repro_service_batches_total", "Batches routed by the service."
        )
        self._m_comparisons = self.metrics.counter(
            "repro_service_comparisons_total", "compare_batch() invocations."
        )
        self._m_query_seconds = self.metrics.histogram(
            "repro_service_query_seconds", "Per-query routing wall-clock.", labels=("backend",)
        )
        self._m_preprocess_seconds = self.metrics.histogram(
            "repro_service_preprocess_seconds", "Wall-clock building missing backends, per batch."
        )
        self._m_preprocess_rounds = self.metrics.counter(
            "repro_service_preprocess_rounds_total",
            "CONGEST preprocessing rounds, incurred vs reused.",
            labels=("kind",),
        )
        self._m_pool_created = self.metrics.counter(
            "repro_service_pool_created_total",
            "Executor pools created by the service (1 per service lifetime).",
            labels=("kind",),
        )
        self._m_pool_workers = self.metrics.gauge(
            "repro_service_pool_workers", "Configured worker count of the service's pool."
        )
        self._m_pool_tasks = self.metrics.counter(
            "repro_service_pool_tasks_total",
            "Tasks submitted to the service's pool.",
            labels=("kind",),
        )
        self._m_pool_runner_loads = self.metrics.counter(
            "repro_service_pool_runner_loads_total",
            "Worker-process runner resolutions (warm cache hit vs cold load).",
            labels=("state",),
        )
        self._executor_factory = executor_factory or (
            lambda workers: ThreadPoolExecutor(max_workers=workers)
        )
        self._pool: Executor | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._spill_dir: Path | None = None
        # Insertion-ordered so the oldest spilled artifacts trim first.
        self._spilled: dict[str, None] = {}
        self._spill_finalizer: weakref.finalize | None = None
        self._closed = False
        self._pending: list[RoutingQuery] = []
        self._next_query_id = 0
        # Graph canonicalization dominates fingerprint cost; memoize it per
        # Graph *object* (weakly, so dropped graphs free their payloads).  The
        # caller must not mutate a graph between submits — a mutated graph
        # should be a new object (``graph.copy()``), which re-canonicalizes.
        self._payload_memo: "weakref.WeakKeyDictionary[nx.Graph, str]" = (
            weakref.WeakKeyDictionary()
        )

    # -- lifecycle -----------------------------------------------------------

    def _ensure_pool(self) -> Executor:
        """The service's long-lived executor, created on first use."""
        if self._closed:
            raise RuntimeError("service is closed")
        if self._pool is None:
            if self.parallelism == "processes":
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            else:
                self._pool = self._executor_factory(self.max_workers)
            # Services dropped without close() (loops over short-lived
            # services) must not strand their executors until process exit.
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_executor, self._pool
            )
            self._m_pool_created.labels(kind=self.parallelism).inc()
            workers = getattr(self._pool, "_max_workers", None)
            if workers:
                self._m_pool_workers.set(workers)
        return self._pool

    def _ensure_spill_dir(self) -> Path:
        if self._spill_dir is None:
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-service-spill-"))
            self._spill_finalizer = weakref.finalize(
                self, shutil.rmtree, str(self._spill_dir), True
            )
        return self._spill_dir

    def _spill_artifact(self, fingerprint: str, artifact: PreprocessArtifact) -> None:
        """Write ``artifact`` to the spill directory once, for worker processes."""
        if fingerprint in self._spilled:
            return
        path = spill_path(self._ensure_spill_dir(), fingerprint)
        staging = path.with_suffix(".tmp")
        with open(staging, "wb") as handle:
            pickle.dump(artifact, handle)
        staging.replace(path)
        self._spilled[fingerprint] = None

    def _trim_spill_dir(self, keep: set[str]) -> None:
        """Bound the spill directory, never evicting the current batch's keys.

        The cap mirrors the artifact cache (4x its in-memory capacity, at
        least 16): the spill tier exists so each *worker* loads an artifact at
        most once, not as a second unbounded store.  Evicted fingerprints are
        simply re-spilled from the cache-of-record on their next warm batch.
        """
        cap = max(16, 4 * getattr(self.cache, "capacity", 4), len(keep))
        if len(self._spilled) <= cap or self._spill_dir is None:
            return
        for fingerprint in list(self._spilled):
            if len(self._spilled) <= cap:
                break
            if fingerprint in keep:
                continue
            del self._spilled[fingerprint]
            spill_path(self._spill_dir, fingerprint).unlink(missing_ok=True)

    def close(self) -> None:
        """Shut the worker pool down and remove the artifact spill directory.

        Idempotent; afterwards the service rejects new batches.  Pending
        (unrouted) submissions are left queued so callers can inspect them.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._spill_finalizer is not None:
            self._spill_finalizer()
            self._spill_finalizer = None
        self._spill_dir = None
        self._spilled.clear()

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    # -- submission ----------------------------------------------------------

    def _graph_payload(self, graph: nx.Graph) -> str:
        payload = self._payload_memo.get(graph)
        if payload is None:
            payload = graph_payload(graph)
            self._payload_memo[graph] = payload
        return payload

    @property
    def fingerprint_memo_size(self) -> int:
        """How many live graphs have a memoized canonical payload."""
        return len(self._payload_memo)

    def fingerprint(
        self,
        graph: nx.Graph,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
    ) -> str:
        """The cache key this service uses for ``graph`` under ``backend``."""
        parameters: dict[str, Hashable] = {"epsilon": self.epsilon}
        if self.psi is not None:
            parameters["psi"] = self.psi
        if self.hierarchy_params is not None:
            parameters.update(
                (f"hierarchy.{key}", value)
                for key, value in sorted(vars(self.hierarchy_params).items())
            )
        parameters["backend"] = backend
        for key, value in canonical_backend_params(backend_params):
            parameters[f"backend.{key}"] = value
        return graph_fingerprint(
            graph, parameters, precomputed_graph_payload=self._graph_payload(graph)
        )

    def _make_query(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None,
        backend: str,
        backend_params: Mapping[str, Any] | None,
        workload: str = "",
    ) -> RoutingQuery:
        workload_name = workload
        if isinstance(requests, Workload):
            workload_name = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        query = RoutingQuery(
            query_id=self._next_query_id,
            fingerprint=self.fingerprint(graph, backend=backend, backend_params=backend_params),
            graph=graph,
            requests=tuple(requests),
            load=load,
            backend=backend,
            backend_params=dict(backend_params or {}),
            workload=workload_name,
        )
        self._next_query_id += 1
        self._m_queries.labels(backend=backend).inc()
        return query

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
    ) -> int:
        """Queue one routing query for the next batch; returns its query id.

        ``requests`` may be a plain request sequence or a
        :class:`~repro.workloads.Workload` (whose declared load bound is used
        when ``load`` is omitted).  ``workload`` labels a plain request
        sequence for reporting (a ``Workload``'s own name wins).
        """
        query = self._make_query(graph, requests, load, backend, backend_params, workload=workload)
        self._pending.append(query)
        return query.query_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- execution -----------------------------------------------------------

    def route_batch(self, queries: Sequence[RoutingQuery] | None = None) -> BatchReport:
        """Route a batch (the pending queue when ``queries`` is omitted).

        Grouping, backend resolution, and query execution are all per
        fingerprint: one preprocess per distinct cold (graph, backend) pair
        (built concurrently), then every query routed concurrently on shared
        read-only backends.
        """
        if self._closed:
            # Before touching the pending queue: close() promises queued
            # submissions survive for inspection.
            raise RuntimeError("service is closed")
        if queries is None:
            queries, self._pending = self._pending, []
        else:
            queries = list(queries)
        report = BatchReport()
        if not queries:
            return report
        self._m_batches.inc()
        batch_start = time.perf_counter()

        by_fingerprint: dict[str, list[RoutingQuery]] = {}
        for query in queries:
            by_fingerprint.setdefault(query.fingerprint, []).append(query)
        report.distinct_graphs = len(by_fingerprint)

        pool = self._ensure_pool()
        if self.parallelism == "processes":
            self._route_batch_processes(pool, queries, by_fingerprint, report)
        else:
            self._route_batch_threads(pool, queries, by_fingerprint, report)

        report.cache_hits = sum(1 for result in report.results if result.cache_hit)
        report.cache_misses = len(report.results) - report.cache_hits
        report.wall_seconds = time.perf_counter() - batch_start
        if report.preprocess_rounds_incurred:
            self._m_preprocess_rounds.labels(kind="incurred").inc(report.preprocess_rounds_incurred)
        if report.preprocess_rounds_reused:
            self._m_preprocess_rounds.labels(kind="reused").inc(report.preprocess_rounds_reused)
        return report

    def route(
        self,
        graph: nx.Graph,
        requests: Sequence[RoutingRequest] | Workload,
        load: int | None = None,
        backend: str = DEFAULT_BACKEND,
        backend_params: Mapping[str, Any] | None = None,
    ) -> RouteResult:
        """Route one instance immediately (a batch of one), returning its outcome.

        Queries queued via :meth:`submit` are left pending — this routes only
        the instance passed here.
        """
        query = self._make_query(graph, requests, load, backend, backend_params)
        report = self.route_batch([query])
        return report.results[0].outcome

    def compare_batch(
        self,
        graph: nx.Graph,
        workloads: Sequence[Workload | Sequence[RoutingRequest]],
        backends: Sequence[str] | None = None,
        backend_params: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> ComparisonReport:
        """Route the same workloads through several backends, side by side.

        Args:
            graph: the graph every workload routes on.
            workloads: the request patterns to replay against every backend
                (:class:`~repro.workloads.Workload` objects or plain request
                sequences).
            backends: registry names to compare (default: every registered
                backend).
            backend_params: optional per-backend factory parameters, keyed by
                backend name.

        One :meth:`route_batch` runs per backend, so artifact caching and
        parallel fan-out apply exactly as in normal serving — routing a
        workload through the comparison yields the same rounds as routing it
        through the backend directly.
        """
        if backends is None:
            backends = available_backends()
        self._m_comparisons.inc()
        comparison = ComparisonReport()
        for backend in backends:
            params = (backend_params or {}).get(backend)
            batch = [
                self._make_query(graph, workload, None, backend, params)
                for workload in workloads
            ]
            batch_report = self.route_batch(batch)
            comparison.batch_reports[backend] = batch_report
            ordered = sorted(batch_report.results, key=lambda result: result.query_id)
            for index, result in enumerate(ordered):
                comparison.entries.append(
                    ComparisonEntry(
                        backend=backend,
                        workload=result.workload or f"workload-{index}",
                        workload_index=index,
                        result=result.outcome,
                        cache_hit=result.cache_hit,
                        seconds=result.seconds,
                    )
                )
        return comparison

    # -- internals -----------------------------------------------------------

    def _route_batch_threads(
        self,
        pool: Executor,
        queries: Sequence[RoutingQuery],
        by_fingerprint: dict[str, list[RoutingQuery]],
        report: BatchReport,
    ) -> None:
        """Thread-pool execution: shared in-process backends, concurrent fan-out."""
        # Phase 1: resolve a query-ready backend per distinct fingerprint
        # (artifact-cache lookups first, cold builds concurrently in the pool).
        runners: dict[str, RoutingBackend] = {}
        warm: dict[str, bool] = {}
        cold: dict[str, RoutingQuery] = {}
        for fingerprint, group in by_fingerprint.items():
            query = group[0]
            factory = backend_factory(query.backend)
            cached = (
                self.cache.get(fingerprint) if supports_artifacts(factory) else None
            )
            if cached is not None:
                runners[fingerprint] = factory.from_artifact(query.graph, cached)
                warm[fingerprint] = True
                report.preprocess_rounds_reused += cached.preprocessing_rounds
            else:
                cold[fingerprint] = query
                warm[fingerprint] = False
        if cold:
            preprocess_start = time.perf_counter()
            futures = {
                fingerprint: pool.submit(self._build_runner, query)
                for fingerprint, query in cold.items()
            }
            self._m_pool_tasks.labels(kind="build").inc(len(futures))
            for fingerprint, future in futures.items():
                runner, info, artifact = future.result()
                runners[fingerprint] = runner
                if artifact is not None:
                    self.cache.put(fingerprint, artifact)
                    report.preprocess_rounds_incurred += artifact.preprocessing_rounds
                else:
                    report.preprocess_rounds_incurred += info.rounds
            report.preprocess_seconds = time.perf_counter() - preprocess_start
            self._m_preprocess_seconds.observe(report.preprocess_seconds)

        # Phase 2: route every query of the batch concurrently.
        route_start = time.perf_counter()
        result_futures = [
            (query, pool.submit(self._route_one, runners[query.fingerprint], query))
            for query in queries
        ]
        self._m_pool_tasks.labels(kind="route").inc(len(result_futures))
        for query, future in result_futures:
            outcome, seconds = future.result()
            self._m_query_seconds.labels(backend=query.backend).observe(seconds)
            report.results.append(
                QueryResult(
                    query_id=query.query_id,
                    fingerprint=query.fingerprint,
                    backend=query.backend,
                    outcome=outcome,
                    cache_hit=warm[query.fingerprint],
                    seconds=seconds,
                    workload=query.workload,
                )
            )
        report.route_seconds = time.perf_counter() - route_start

    def _route_batch_processes(
        self,
        pool: Executor,
        queries: Sequence[RoutingQuery],
        by_fingerprint: dict[str, list[RoutingQuery]],
        report: BatchReport,
    ) -> None:
        """Process-pool execution: artifacts spilled once, routed in workers.

        The parent keeps the cache-of-record (hits/misses and round
        accounting are identical to the thread path); worker processes keep a
        runner per fingerprint, loading each spilled artifact at most once.
        """
        from repro.kernels import active_kernel

        compute_kernel = active_kernel()
        self._trim_spill_dir(keep=set(by_fingerprint))
        warm: dict[str, bool] = {}
        cold: dict[str, RoutingQuery] = {}
        for fingerprint, group in by_fingerprint.items():
            query = group[0]
            factory = backend_factory(query.backend)
            cached = (
                self.cache.get(fingerprint) if supports_artifacts(factory) else None
            )
            if cached is not None:
                warm[fingerprint] = True
                report.preprocess_rounds_reused += cached.preprocessing_rounds
                self._spill_artifact(fingerprint, cached)
            else:
                warm[fingerprint] = False
                cold[fingerprint] = query
        if cold:
            preprocess_start = time.perf_counter()
            futures = {
                fingerprint: pool.submit(
                    build_in_worker,
                    BuildTask(
                        fingerprint=fingerprint,
                        graph=query.graph,
                        backend=query.backend,
                        params=self._resolved_backend_params(query),
                        kernel=compute_kernel,
                    ),
                )
                for fingerprint, query in cold.items()
            }
            self._m_pool_tasks.labels(kind="build").inc(len(futures))
            for fingerprint, future in futures.items():
                info, artifact = future.result()
                if artifact is not None:
                    self.cache.put(fingerprint, artifact)
                    self._spill_artifact(fingerprint, artifact)
                    report.preprocess_rounds_incurred += artifact.preprocessing_rounds
                else:
                    report.preprocess_rounds_incurred += info.rounds
            report.preprocess_seconds = time.perf_counter() - preprocess_start
            self._m_preprocess_seconds.observe(report.preprocess_seconds)

        route_start = time.perf_counter()
        spill = str(self._spill_dir) if self._spill_dir is not None else None
        result_futures = [
            (
                query,
                pool.submit(
                    route_in_worker,
                    RouteTask(
                        fingerprint=query.fingerprint,
                        # Spilled artifacts carry their own graph; warm-path
                        # queries then ship only the request list.
                        graph=None if query.fingerprint in self._spilled else query.graph,
                        requests=query.requests,
                        load=query.load,
                        backend=query.backend,
                        params=self._resolved_backend_params(query),
                        spill_dir=spill,
                        kernel=compute_kernel,
                    ),
                ),
            )
            for query in queries
        ]
        self._m_pool_tasks.labels(kind="route").inc(len(result_futures))
        for query, future in result_futures:
            outcome, seconds, runner_warm = future.result()
            self._m_pool_runner_loads.labels(
                state="warm" if runner_warm else "cold"
            ).inc()
            self._m_query_seconds.labels(backend=query.backend).observe(seconds)
            report.results.append(
                QueryResult(
                    query_id=query.query_id,
                    fingerprint=query.fingerprint,
                    backend=query.backend,
                    outcome=outcome,
                    cache_hit=warm[query.fingerprint],
                    seconds=seconds,
                    workload=query.workload,
                )
            )
        report.route_seconds = time.perf_counter() - route_start

    def _resolved_backend_params(self, query: RoutingQuery) -> dict[str, Any]:
        """Query parameters plus the service-level defaults the factory accepts.

        The service-level tradeoff parameters apply to every backend whose
        factory accepts them by name (epsilon reaches both the deterministic
        router and the rebuild-per-query comparator, so comparisons are
        apples to apples); explicit per-query params still win.
        """
        factory = backend_factory(query.backend)
        params = dict(query.backend_params)
        service_defaults: dict[str, Any] = {"epsilon": self.epsilon}
        if self.psi is not None:
            service_defaults["psi"] = self.psi
        if self.hierarchy_params is not None:
            service_defaults["hierarchy_params"] = self.hierarchy_params
        try:
            accepted = {
                name
                for name, parameter in inspect.signature(factory).parameters.items()
                if parameter.kind
                in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
            }
        except (TypeError, ValueError):
            accepted = set()
        for key, value in service_defaults.items():
            if key in accepted:
                params.setdefault(key, value)
        return params

    def _make_backend(self, query: RoutingQuery) -> RoutingBackend:
        factory = backend_factory(query.backend)
        return factory(query.graph, **self._resolved_backend_params(query))

    def _build_runner(
        self, query: RoutingQuery
    ) -> tuple[RoutingBackend, PreprocessInfo, PreprocessArtifact | None]:
        backend = self._make_backend(query)
        info = backend.preprocess()
        artifact = None
        # Capability is judged on the *factory* (exactly like the warm-lookup
        # path), so a function-style factory never fills a cache that the
        # lookup path would not read.
        if supports_artifacts(backend_factory(query.backend)) and supports_artifacts(backend):
            artifact = backend.export_artifact(fingerprint=query.fingerprint)
        return backend, info, artifact

    @staticmethod
    def _route_one(runner: RoutingBackend, query: RoutingQuery) -> tuple[RouteResult, float]:
        start = time.perf_counter()
        outcome = runner.route(list(query.requests), load=query.load)
        return outcome, time.perf_counter() - start
