"""Metric primitives and the registry: counters, gauges, latency histograms.

The design follows the Prometheus client-library shape (families of labeled
children, a registry that renders a text exposition) without the dependency:

* :class:`Counter` — monotonically increasing float.
* :class:`Gauge` — a settable level (queue depths, cache sizes).
* :class:`Histogram` — fixed cumulative buckets plus count/sum/min/max, with
  quantile estimates (p50/p95/p99) by linear interpolation inside the bucket
  that crosses the requested rank.  Latency observations use
  :data:`DEFAULT_LATENCY_BUCKETS` (100µs .. 10s) unless overridden.
* :class:`MetricFamily` — one registered name; ``labels(...)`` resolves the
  child metric for a label combination.  Families with no label names behave
  as a single metric directly (``family.inc()`` etc.).
* :class:`MetricsRegistry` — creates families idempotently (asking for an
  existing name with the same kind returns the same family), snapshots
  everything as a plain dict, and renders the Prometheus-style text format.

All operations are thread-safe (one lock per family); the serving layer and
the cluster tier record from worker threads.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "quantile",
]


def quantile(values: Iterable[float], q: float) -> float:
    """The exact ``q``-quantile of ``values`` by linear interpolation (0 if empty).

    The list-based companion to :meth:`Histogram.quantile`: batch reports and
    SLO summaries hold their raw per-query latencies, so their percentiles
    can be exact rather than bucket-estimated.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction

#: Cumulative latency bucket upper bounds, in seconds (an implicit +Inf
#: bucket always follows).  Spans 100µs to 10s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, cache size, ...)."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket cumulative histogram with interpolated quantiles.

    Buckets are upper bounds; an implicit +Inf bucket catches the overflow.
    Quantiles are estimated by locating the bucket whose cumulative count
    crosses the requested rank and interpolating linearly inside it — exact
    enough for latency SLO reporting, and O(#buckets) regardless of how many
    observations were recorded.
    """

    kind = "histogram"

    def __init__(self, lock: threading.Lock, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = sorted(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        with self._lock:
            index = bisect.bisect_left(self._bounds, value)
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 <= q <= 1``) of the observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index == len(self._bounds):
                        return self._max  # overflow bucket: best estimate is the max
                    lower = self._bounds[index - 1] if index else min(self._min, 0.0)
                    upper = self._bounds[index]
                    fraction = (rank - previous) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
            return self._max

    def summary(self) -> dict[str, float]:
        """count / sum / mean / min / max / p50 / p95 / p99, as a plain dict."""
        with self._lock:
            count, total = self._count, self._sum
            minimum = self._min if count else 0.0
            maximum = self._max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": minimum,
            "max": maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> dict[str, float]:
        return self.summary()

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            cumulative, rows = 0, []
            for bound, bucket_count in zip(self._bounds, self._counts):
                cumulative += bucket_count
                rows.append((bound, cumulative))
            rows.append((math.inf, cumulative + self._counts[-1]))
            return rows


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One registered metric name, fanned out over label combinations.

    A family with no label names holds exactly one child and proxies the
    metric interface directly (``family.inc()``, ``family.observe()``, ...),
    so unlabeled metrics read naturally at call sites.
    """

    def __init__(
        self,
        name: str,
        description: str,
        kind: str,
        label_names: tuple[str, ...] = (),
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        self.kind = kind
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _make_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self._lock, self._buckets or DEFAULT_LATENCY_BUCKETS)
        return _KINDS[self.kind](self._lock)

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The child metric for this label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def children(self) -> list[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        with self._lock:
            return sorted(self._children.items())

    # -- unlabeled proxying ---------------------------------------------------

    def _solo(self) -> Counter | Gauge | Histogram:
        if self.label_names:
            raise ValueError(f"metric {self.name!r} is labeled; call .labels(...) first")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)

    def summary(self) -> dict[str, float]:
        return self._solo().summary()

    def bucket_counts(self) -> list[tuple[float, int]]:
        return self._solo().bucket_counts()


class MetricsRegistry:
    """Creates and holds metric families; snapshots and renders them.

    Family creation is idempotent: requesting an existing name with the same
    kind returns the existing family (so call sites never coordinate), while a
    kind or label mismatch raises — one name means one thing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        description: str,
        kind: str,
        labels: Iterable[str],
        buckets: Iterable[float] | None = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        effective_buckets = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}"
                    )
                if kind == "histogram" and (
                    (family._buckets or DEFAULT_LATENCY_BUCKETS) != effective_buckets
                ):
                    raise ValueError(
                        f"histogram {name!r} already registered with buckets "
                        f"{family._buckets or DEFAULT_LATENCY_BUCKETS}"
                    )
                return family
            family = MetricFamily(name, description, kind, label_names, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, description: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, description, "counter", labels)

    def gauge(self, name: str, description: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, description, "gauge", labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> MetricFamily:
        return self._family(name, description, "histogram", labels, buckets)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def clear(self) -> None:
        """Forget every family (tests and fresh load-generator runs)."""
        with self._lock:
            self._families.clear()

    # -- snapshots ------------------------------------------------------------

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Every family's children as plain values, keyed by rendered series name."""
        snapshot: dict[str, dict[str, object]] = {}
        for family in self.families():
            series: dict[str, object] = {}
            for key, child in family.children():
                series[_series_suffix(family.label_names, key)] = child.snapshot()
            snapshot[family.name] = series
        return snapshot

    def render_text(self) -> str:
        """The Prometheus-style text exposition of every registered family."""
        lines: list[str] = []
        for family in self.families():
            if family.description:
                lines.append(f"# HELP {family.name} {family.description}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if isinstance(child, Histogram):
                    for bound, cumulative in child.bucket_counts():
                        le = "+Inf" if math.isinf(bound) else _format_number(bound)
                        bucket_labels = {**labels, "le": le}
                        lines.append(
                            f"{family.name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} {_format_number(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{_render_labels(labels)} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} {_format_number(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in labels.items())
    return "{" + body + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _series_suffix(label_names: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not label_names:
        return ""
    return ",".join(f"{name}={value}" for name, value in zip(label_names, key))


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumentation falls back to."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
