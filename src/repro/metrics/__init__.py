"""Observability for the serving stack: counters, gauges, latency histograms.

``repro.metrics`` is the measurement substrate the ROADMAP's production story
needs: the serving layer (:mod:`repro.service`), the backend adapters
(:mod:`repro.backends.adapters`), and the sharded cluster tier
(:mod:`repro.cluster`) all record into a :class:`MetricsRegistry` — by default
the process-wide one from :func:`default_registry`, or any registry injected
per service/cluster for isolated accounting.  One exception: the
``repro_backend_*`` families always land in the process-wide registry (the
adapters are built by registry factories with no injection point); use
:func:`set_default_registry` to isolate them.

The instrumented families (all prefixed ``repro_``):

==========================================      =========  =======================================
name                                            kind       labels
==========================================      =========  =======================================
``repro_service_queries_total``                 counter    ``backend``
``repro_service_batches_total``                 counter    —
``repro_service_comparisons_total``             counter    —
``repro_service_query_seconds``                 histogram  ``backend``
``repro_service_preprocess_seconds``            histogram  —
``repro_service_preprocess_rounds_total``       counter    ``kind`` (``incurred``/``reused``)
``repro_cache_lookups_total``                   counter    ``result`` (hit / disk_hit / miss)
``repro_cache_stores_total``                    counter    —
``repro_cache_evictions_total``                 counter    ``tier`` (``memory``/``disk``)
``repro_backend_route_seconds``                 histogram  ``backend``
``repro_backend_route_rounds_total``            counter    ``backend``
``repro_backend_preprocess_rounds_total``       counter    ``backend``
``repro_cluster_queries_total``                 counter    ``shard``
``repro_cluster_admission_total``               counter    ``shard``, ``decision``
``repro_cluster_queue_depth``                   gauge      ``shard``
``repro_cluster_query_seconds``                 histogram  ``shard``
``repro_cluster_dispatch_seconds``              histogram  —
``repro_cluster_warm_handoffs_total``           counter    ``path`` (``shm``/``pickle``)
``repro_cluster_requeued_batches_total``        counter    ``reason`` (``rebalance``/``failover``)
``repro_cluster_lost_batches_total``            counter    —
``repro_cluster_failovers_total``               counter    ``shard``
``repro_cluster_heartbeat_failures_total``      counter    ``shard``
``repro_cluster_replica_publishes_total``       counter    ``path`` (``shm``/``pickle``)
``repro_cluster_replica_reads_total``           counter    ``shard``
``repro_cluster_replica_hot_keys``              gauge      —
``repro_cluster_autoscaler_events_total``       counter    ``direction`` (``up``/``down``)
``repro_cluster_autoscaler_shards``             gauge      —
==========================================      =========  =======================================

Histograms expose p50/p95/p99 via :meth:`Histogram.summary`;
:meth:`MetricsRegistry.render_text` produces the Prometheus-style text
exposition shown in the README.
"""

from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
    quantile,
    set_default_registry,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_registry",
    "quantile",
    "set_default_registry",
]
