"""Length-prefixed message framing over sockets (async and blocking).

One frame is::

    +----------------+-------------+------------------+
    | length (4B BE) | codec (1B)  | payload bytes    |
    +----------------+-------------+------------------+

where ``length`` counts the codec byte plus the payload — exactly the bytes
:meth:`~repro.wire.messages.WireMessage.to_wire` produces.  Frames are read
one at a time per connection; a peer that wants pipelining opens more
connections (that per-connection serialisation is the transport's natural
backpressure: a slow consumer stops reading and TCP stops the producer).

Both an asyncio flavour (:func:`read_frame` / :func:`write_frame`, used by
the servers) and a blocking flavour (:func:`recv_frame` / :func:`send_frame`,
used by the coordinator-side shard handles and :class:`~repro.net.client.ClusterClient`)
are provided; they are wire-compatible by construction.

:class:`NetInstruments` owns the ``repro_net_*`` metric families — frames and
bytes by direction, open connections, and deadline expirations — labeled by
``role`` (``gateway``, ``shard``, ``coordinator``, ``client``) so one shared
registry can tell the tiers apart.
"""

from __future__ import annotations

import asyncio
import socket

from repro.metrics import MetricsRegistry, default_registry
from repro.wire.codec import WireDecodeError, WireEncodeError
from repro.wire.messages import WireMessage, message_from_wire

__all__ = [
    "MAX_FRAME_BYTES",
    "NetInstruments",
    "pack_frame",
    "pack_frame_into",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
]

#: Hard cap on one frame's body; a peer announcing more is treated as corrupt
#: (a length prefix of garbage bytes must not trigger a giant allocation).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH_BYTES = 4


class NetInstruments:
    """The ``repro_net_*`` metric families, bound to one transport role."""

    def __init__(self, metrics: MetricsRegistry | None = None, role: str = "client") -> None:
        metrics = metrics if metrics is not None else default_registry()
        self.role = role
        self._frames = metrics.counter(
            "repro_net_frames_total",
            "Wire frames by transport role and direction.",
            labels=("role", "direction"),
        )
        self._bytes = metrics.counter(
            "repro_net_bytes_total",
            "Wire bytes (including frame headers) by role and direction.",
            labels=("role", "direction"),
        )
        self._connections = metrics.gauge(
            "repro_net_connections", "Open transport connections per role.", labels=("role",)
        )
        self._deadlines = metrics.counter(
            "repro_net_deadline_expirations_total",
            "Requests that hit their deadline before being served.",
            labels=("role", "phase"),
        )
        self._coalesced = metrics.counter(
            "repro_net_coalesced_batches_total",
            "Cross-connection micro-batches admitted in one coordinator pass.",
            labels=("role",),
        )
        self._coalesced_submits = metrics.counter(
            "repro_net_coalesced_submits_total",
            "Submissions that rode inside a coalesced micro-batch.",
            labels=("role",),
        )
        self._deduped = metrics.counter(
            "repro_net_payloads_deduped_total",
            "Graph payloads elided from the wire by fingerprint negotiation.",
            labels=("role",),
        )
        self._uploads = metrics.counter(
            "repro_net_graph_uploads_total",
            "Full graph payloads shipped over the wire (first sight or re-upload).",
            labels=("role",),
        )
        self._need_graph = metrics.counter(
            "repro_net_need_graph_total",
            "need-graph round trips (a fingerprint missed the peer's cache).",
            labels=("role",),
        )
        self._open = 0

    def frame_sent(self, nbytes: int) -> None:
        self._frames.labels(role=self.role, direction="sent").inc()
        self._bytes.labels(role=self.role, direction="sent").inc(nbytes)

    def frame_received(self, nbytes: int) -> None:
        self._frames.labels(role=self.role, direction="received").inc()
        self._bytes.labels(role=self.role, direction="received").inc(nbytes)

    def connection_opened(self) -> None:
        self._open += 1
        self._connections.labels(role=self.role).set(self._open)

    def connection_closed(self) -> None:
        self._open = max(0, self._open - 1)
        self._connections.labels(role=self.role).set(self._open)

    def deadline_expired(self, phase: str) -> None:
        self._deadlines.labels(role=self.role, phase=phase).inc()

    def coalesced_batch(self, size: int) -> None:
        self._coalesced.labels(role=self.role).inc()
        self._coalesced_submits.labels(role=self.role).inc(size)

    def payload_deduped(self) -> None:
        self._deduped.labels(role=self.role).inc()

    def graph_uploaded(self, count: int = 1) -> None:
        self._uploads.labels(role=self.role).inc(count)

    def need_graph(self) -> None:
        self._need_graph.labels(role=self.role).inc()


def pack_frame(message: WireMessage, codec: int | None = None) -> bytes:
    """One message as a complete frame (header + codec byte + payload)."""
    data = message.to_wire(codec)
    if len(data) > MAX_FRAME_BYTES:
        raise WireEncodeError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    return len(data).to_bytes(_LENGTH_BYTES, "big") + data


def pack_frame_into(
    buffer: bytearray, message: WireMessage, codec: int | None = None
) -> memoryview:
    """Encode one frame into a caller-owned reusable buffer.

    Clears ``buffer``, encodes the frame into it, and returns a memoryview of
    the encoded bytes — a hot sender (the coordinator-side shard handle ships
    one frame per queue slice) reuses one buffer across calls instead of
    allocating a fresh ``bytes`` per frame.  The view is valid until the next
    call with the same buffer.
    """
    data = message.to_wire(codec)
    if len(data) > MAX_FRAME_BYTES:
        raise WireEncodeError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    buffer.clear()
    buffer += len(data).to_bytes(_LENGTH_BYTES, "big")
    buffer += data
    return memoryview(buffer)


def _check_length(length: int) -> None:
    if length == 0:
        raise WireDecodeError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise WireDecodeError(f"peer announced a {length}-byte frame; refusing")


# -- asyncio flavour ---------------------------------------------------------------


async def write_frame(
    writer: asyncio.StreamWriter,
    message: WireMessage,
    codec: int | None = None,
    instruments: NetInstruments | None = None,
) -> None:
    """Send one message and drain (the drain is the backpressure point)."""
    frame = pack_frame(message, codec)
    writer.write(frame)
    await writer.drain()
    if instruments is not None:
        instruments.frame_sent(len(frame))


async def read_frame(
    reader: asyncio.StreamReader, instruments: NetInstruments | None = None
) -> WireMessage | None:
    """Read one message; ``None`` on clean EOF (peer closed between frames)."""
    try:
        header = await reader.readexactly(_LENGTH_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireDecodeError("connection closed mid frame header") from error
    length = int.from_bytes(header, "big")
    _check_length(length)
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireDecodeError("connection closed mid frame body") from error
    if instruments is not None:
        instruments.frame_received(_LENGTH_BYTES + length)
    return message_from_wire(data)


# -- blocking flavour --------------------------------------------------------------


def send_frame(
    sock: socket.socket,
    message: WireMessage,
    codec: int | None = None,
    instruments: NetInstruments | None = None,
) -> None:
    """Blocking counterpart of :func:`write_frame`."""
    frame = pack_frame(message, codec)
    sock.sendall(frame)
    if instruments is not None:
        instruments.frame_sent(len(frame))


def _recv_exact(sock: socket.socket, length: int) -> bytes | None:
    """Exactly ``length`` bytes, or ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise WireDecodeError("connection closed mid frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, instruments: NetInstruments | None = None
) -> WireMessage | None:
    """Blocking counterpart of :func:`read_frame` (``None`` on clean EOF)."""
    header = _recv_exact(sock, _LENGTH_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    _check_length(length)
    data = _recv_exact(sock, length)
    if data is None:
        raise WireDecodeError("connection closed mid frame body")
    if instruments is not None:
        instruments.frame_received(_LENGTH_BYTES + length)
    return message_from_wire(data)
