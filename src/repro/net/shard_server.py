"""A shard as a real server process: asyncio frames around a :class:`ShardWorker`.

The in-process cluster keeps every shard in the coordinator's interpreter;
this module promotes one shard to its own **spawned** process running an
asyncio frame server.  The division of labour is unchanged — placement,
admission, and planning stay coordinator-side; the shard owns its service,
artifact cache, and metrics — but the :class:`~repro.cluster.ShardQuery`
hand-off now crosses the wire as a
:class:`~repro.wire.messages.ShardProcessRequest`.

Three pieces:

* :class:`ShardServerConfig` — everything the child needs, picklable for the
  ``spawn`` start method (``fork`` is unsafe here: the parent holds live
  thread pools).
* :func:`serve_shard` / ``_shard_server_main`` — the child entrypoint: build
  the worker, bind (unix socket or TCP port 0), report the actual bound
  address through the ready pipe, serve until :class:`~repro.wire.messages.Shutdown`.
* :class:`RemoteShard` — the coordinator-side handle with the same
  ``process`` / ``as_row`` / ``close`` surface as :class:`ShardWorker`, so the
  coordinator's scatter/gather code cannot tell local from remote.

Remote limitations, by design: the cluster's shared
:class:`~repro.planner.QueryPlanner` does not cross the process boundary
(plans ship inside each query; the ``adaptive`` policy's timing feedback only
calibrates from local shards), and remote shards must execute with thread
parallelism (a daemonic server process cannot fork process pools).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import networkx as nx

from repro.cluster.worker import ShardQuery, ShardWorker, WarmHandoff
from repro.hierarchy.builder import HierarchyParameters
from repro.metrics import MetricsRegistry, default_registry
from repro.net import address as net_address
from repro.net.frames import (
    NetInstruments,
    pack_frame_into,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.planner import ExecutionPlan
from repro.service.service import BatchReport
from repro.wire.codec import codec_id, codec_name, negotiate_codec, supported_codec_names
from repro.wire.messages import (
    ArtifactAdoptReply,
    ArtifactAdoptRequest,
    ArtifactExportReply,
    ArtifactExportRequest,
    ErrorReply,
    FaultInjectReply,
    FaultInjectRequest,
    HeartbeatReply,
    HeartbeatRequest,
    Hello,
    HelloReply,
    NeedGraphReply,
    Ping,
    Pong,
    ShardProcessReply,
    ShardProcessRequest,
    ShardStatsReply,
    ShardStatsRequest,
    Shutdown,
    ShutdownAck,
    WireBatchReport,
    WireGraph,
    WireMessage,
    WireShardQuery,
)

__all__ = [
    "ShardServerConfig",
    "ShardSpawnError",
    "serve_shard",
    "start_shard_server",
    "RemoteShard",
]

#: How long the parent waits for a child to report its bound address.
READY_TIMEOUT_SECONDS = 60.0


class ShardSpawnError(RuntimeError):
    """A shard server process failed to come up (died or never bound).

    Raised by :func:`start_shard_server` after the dead or wedged child has
    been reaped — the caller gets a clear failure, not a zombie process and
    a :class:`TimeoutError` with no cause.
    """


@dataclass(frozen=True)
class ShardServerConfig:
    """Everything one shard server process needs (picklable for ``spawn``).

    ``family`` picks the listener: ``"unix"`` binds ``socket_path`` (required)
    and ``"inet"`` binds ``host`` on an ephemeral port; either way the child
    reports the actual bound address back before serving.
    """

    shard_id: str
    family: str = "unix"
    socket_path: str | None = None
    host: str = "127.0.0.1"
    epsilon: float = 0.5
    psi: float | None = None
    hierarchy_params: HierarchyParameters | None = None
    cache_capacity: int = 8
    default_plan: ExecutionPlan | None = None
    backend_params: dict = field(default_factory=dict)
    #: LRU capacity of the server's decoded-graph cache (fingerprint → graph).
    #: Evicting a ref the coordinator believes acknowledged costs one
    #: need-graph round trip; it never costs correctness.
    graph_cache_size: int = 128

    def __post_init__(self) -> None:
        if self.family not in net_address.FAMILIES:
            raise ValueError(f"unknown family {self.family!r}; use one of {net_address.FAMILIES}")
        if self.family == "unix" and not self.socket_path:
            raise ValueError("a unix shard server needs socket_path")
        if self.default_plan is not None and self.default_plan.parallelism == "processes":
            raise ValueError(
                "remote shards run as daemonic server processes and cannot fork "
                "process pools; use parallelism='threads' in the default plan"
            )


async def serve_shard(config: ShardServerConfig, ready=None) -> None:
    """Serve one shard until a ``Shutdown`` frame arrives (the child's main loop)."""
    worker = ShardWorker(
        config.shard_id,
        epsilon=config.epsilon,
        psi=config.psi,
        hierarchy_params=config.hierarchy_params,
        cache_capacity=config.cache_capacity,
        default_plan=config.default_plan,
        metrics=default_registry(),
    )
    instruments = NetInstruments(worker.metrics, role="shard")
    stop = asyncio.Event()
    # One slice at a time: the worker's service batches internally, and
    # serialising slices keeps per-shard signatures deterministic.
    process_lock = asyncio.Lock()
    # fingerprint -> decoded graph, LRU.  Queries that ship only a
    # ``graph_ref`` resolve here; a request's ``graphs`` table feeds it.
    # Shared across connections — the cache is content-addressed, so any
    # coordinator's upload serves every connection.
    graph_cache: "OrderedDict[str, nx.Graph]" = OrderedDict()

    def _resolve_queries(
        message: ShardProcessRequest,
    ) -> tuple[list[ShardQuery], tuple[str, ...]]:
        """Decode a slice against the graph cache; returns (queries, missing refs)."""
        for ref, wire_graph in message.graphs.items():
            if ref not in graph_cache:
                graph_cache[ref] = wire_graph.to_graph()
            graph_cache.move_to_end(ref)
        while len(graph_cache) > config.graph_cache_size:
            graph_cache.popitem(last=False)
        missing = tuple(
            dict.fromkeys(
                query.graph_ref
                for query in message.queries
                if query.graph is None and query.graph_ref not in graph_cache
            )
        )
        if missing:
            return [], missing
        queries: list[ShardQuery] = []
        for query in message.queries:
            if query.graph is None:
                graph_cache.move_to_end(query.graph_ref)
                queries.append(query.to_shard_query(graph=graph_cache[query.graph_ref]))
                instruments.payload_deduped()
            else:
                queries.append(query.to_shard_query())
        return queries, ()

    async def reply_for(message: WireMessage) -> WireMessage:
        if isinstance(message, ShardProcessRequest):
            queries, missing = _resolve_queries(message)
            if missing:
                # Cache miss (restart or eviction): ask for the payloads
                # instead of failing the slice — the sender retries once.
                instruments.need_graph()
                return NeedGraphReply(fingerprints=missing)
            async with process_lock:
                report = await asyncio.to_thread(worker.process, queries)
            return ShardProcessReply(report=WireBatchReport.from_report(report))
        if isinstance(message, ShardStatsRequest):
            return ShardStatsReply(row=dict(worker.as_row()))
        if isinstance(message, HeartbeatRequest):
            return HeartbeatReply(
                shard_id=worker.shard_id,
                healthy=worker.healthy(),
                batches_served=worker.batches_served,
                queries_served=worker.queries_served,
            )
        if isinstance(message, FaultInjectRequest):
            worker.inject_fault(message.kind, seconds=message.seconds)
            return FaultInjectReply(applied=True)
        if isinstance(message, ArtifactExportRequest):
            async with process_lock:
                handoff = await asyncio.to_thread(worker.export_artifact, message.fingerprint)
            # Direct (in-object) handoffs cannot cross the process boundary;
            # only a published shm segment counts as found here.
            if handoff is None or handoff.segment is None:
                return ArtifactExportReply(fingerprint=message.fingerprint, found=False)
            return ArtifactExportReply(
                fingerprint=message.fingerprint, segment=handoff.segment, found=True
            )
        if isinstance(message, ArtifactAdoptRequest):
            handoff = WarmHandoff(fingerprint=message.fingerprint, segment=message.segment)
            async with process_lock:
                adopted = await asyncio.to_thread(worker.adopt_artifact, handoff)
            return ArtifactAdoptReply(adopted=bool(adopted))
        if isinstance(message, Ping):
            return Pong()
        if isinstance(message, Shutdown):
            return ShutdownAck()
        return ErrorReply(code="unsupported", message=f"shard cannot serve {message.type!r}")

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        instruments.connection_opened()
        codec: int | None = None  # negotiated per connection by the hello frame
        try:
            while True:
                message = await read_frame(reader, instruments)
                if message is None:
                    break
                if isinstance(message, Hello):
                    codec = negotiate_codec(message.codecs)
                    reply: WireMessage = HelloReply(
                        codec=codec_name(codec), features=("need-graph",)
                    )
                else:
                    try:
                        reply = await reply_for(message)
                    except Exception as error:  # noqa: BLE001 - reported to the peer
                        reply = ErrorReply(
                            code="shard-error", message=f"{type(error).__name__}: {error}"
                        )
                await write_frame(writer, reply, codec=codec, instruments=instruments)
                if isinstance(reply, ShutdownAck):
                    stop.set()
                    break
        finally:
            instruments.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    if config.family == "unix":
        server = await asyncio.start_unix_server(handle, path=config.socket_path)
        bound = ("unix", config.socket_path)
    else:
        server = await asyncio.start_server(handle, host=config.host, port=0)
        bound = ("inet", config.host, server.sockets[0].getsockname()[1])
    if ready is not None:
        ready.send(bound)
        ready.close()
    try:
        async with server:
            await stop.wait()
    finally:
        worker.close()


def _shard_server_main(config: ShardServerConfig, ready) -> None:
    """Child-process entrypoint (module-level so ``spawn`` can import it)."""
    asyncio.run(serve_shard(config, ready))


class RemoteShard:
    """The coordinator-side handle of one shard server process.

    Drop-in for :class:`~repro.cluster.ShardWorker` where the coordinator is
    concerned: ``process(items)`` ships the slice as one
    :class:`ShardProcessRequest` and returns the decoded
    :class:`~repro.service.BatchReport`; ``as_row()`` fetches the shard's
    lifetime stats over the wire.  One connection, one in-flight request
    (guarded by a lock) — the coordinator already fans out across shards, not
    within one.
    """

    def __init__(
        self,
        shard_id: str,
        process: multiprocessing.process.BaseProcess,
        address: tuple,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.child = process
        self.address = address
        self.metrics = metrics if metrics is not None else default_registry()
        self._instruments = NetInstruments(self.metrics, role="coordinator")
        self._lock = threading.Lock()
        self._sock = None
        self._closed = False
        self._partitioned = False
        # Negotiated per connection by the hello handshake.
        self._codec: int | None = None
        self._features: tuple = ()
        # Graphs are replayed slice after slice; encode each object once …
        self._wire_graphs: dict[int, tuple[object, WireGraph]] = {}
        # … and ship each distinct graph's payload once: refs the server has
        # acknowledged (by serving a slice that referenced them) are elided
        # from later requests.  A server-side eviction or restart answers
        # ``NeedGraphReply`` and the slice retries with the payloads.
        self._acked: set[str] = set()
        # One frame in flight at a time (the lock), so one encode buffer
        # serves every send without a per-frame bytes allocation.
        self._send_buffer = bytearray()

    def _connection(self):
        if self._sock is None:
            self._sock = net_address.connect(self.address, timeout=READY_TIMEOUT_SECONDS)
            self._instruments.connection_opened()
            self._codec = None
            self._features = ()
            self._acked.clear()
            send_frame(
                self._sock,
                Hello(codecs=supported_codec_names(), features=("need-graph",)),
                instruments=self._instruments,
            )
            reply = recv_frame(self._sock, instruments=self._instruments)
            if isinstance(reply, HelloReply):
                self._codec = codec_id(reply.codec)
                self._features = tuple(reply.features)
            # An old server's ErrorReply leaves the JSON/full-payload defaults.
        return self._sock

    def _send_locked(self, sock, message: WireMessage) -> None:
        view = pack_frame_into(self._send_buffer, message, self._codec)
        sock.sendall(view)
        self._instruments.frame_sent(len(view))

    def _request(self, message: WireMessage) -> WireMessage:
        if self._closed:
            raise RuntimeError(f"shard {self.shard_id} handle is closed")
        if self._partitioned:
            raise ConnectionError(f"shard {self.shard_id} is partitioned from the coordinator")
        with self._lock:
            sock = self._connection()
            self._send_locked(sock, message)
            reply = recv_frame(sock, instruments=self._instruments)
        if reply is None:
            raise ConnectionError(f"shard {self.shard_id} closed the connection")
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"shard {self.shard_id}: [{reply.code}] {reply.message}")
        return reply

    def ping(self) -> bool:
        return isinstance(self._request(Ping()), Pong)

    def _encode_slice(
        self, items: list[ShardQuery], force_refs: tuple[str, ...] = ()
    ) -> ShardProcessRequest:
        """One slice as a request: refs for every query, payloads only as needed.

        Each distinct graph is shipped at most once per request (the
        ``graphs`` table), and not at all once the server acknowledged the
        ref; ``force_refs`` re-includes payloads a ``NeedGraphReply`` asked
        for.
        """
        queries: list[WireShardQuery] = []
        graphs: dict[str, WireGraph] = {}
        elided = 0
        for item in items:
            cached = self._wire_graphs.get(id(item.graph))
            if cached is None or cached[0] is not item.graph:
                cached = (item.graph, WireGraph.from_graph(item.graph))
                self._wire_graphs[id(item.graph)] = cached
            wire_graph = cached[1]
            ref = wire_graph.fingerprint()
            queries.append(
                WireShardQuery.from_shard_query(item, wire_graph=wire_graph, omit_graph=True)
            )
            if ref in graphs:
                elided += 1
            elif ref in self._acked and ref not in force_refs:
                elided += 1
            else:
                graphs[ref] = wire_graph
        if elided:
            for _ in range(elided):
                self._instruments.payload_deduped()
        if graphs:
            self._instruments.graph_uploaded(len(graphs))
        return ShardProcessRequest(queries=tuple(queries), graphs=graphs)

    def process(self, items: list[ShardQuery]) -> BatchReport:
        """Serve one scatter slice remotely; same contract as ``ShardWorker.process``."""
        if "need-graph" not in self._features:
            # Ensure the handshake ran at least once before deciding the
            # server is too old for refs (the first request connects lazily).
            with self._lock:
                self._connection()
        if "need-graph" in self._features:
            request = self._encode_slice(items)
            reply = self._request(request)
            if isinstance(reply, NeedGraphReply):
                # Evicted or restarted server: one retry carrying the payloads.
                self._instruments.need_graph()
                self._acked.difference_update(reply.fingerprints)
                reply = self._request(self._encode_slice(items, force_refs=reply.fingerprints))
            if isinstance(reply, ShardProcessReply):
                self._acked.update(query.graph_ref for query in request.queries)
        else:
            reply = self._request(ShardProcessRequest.from_queries(items))
        if not isinstance(reply, ShardProcessReply):
            raise RuntimeError(f"shard {self.shard_id} sent {reply.type!r}, expected a report")
        return reply.report.to_report()

    def as_row(self) -> dict[str, object]:
        reply = self._request(ShardStatsRequest())
        if not isinstance(reply, ShardStatsReply):
            raise RuntimeError(f"shard {self.shard_id} sent {reply.type!r}, expected stats")
        return dict(reply.row)

    # -- elastic surface: health, faults, warm handoff -------------------------

    def healthy(self) -> bool:
        """One heartbeat round trip; ``False`` on a dead child or any wire error."""
        if self._closed or self._partitioned:
            return False
        if not self.child.is_alive():
            return False
        try:
            reply = self._request(HeartbeatRequest())
        except (ConnectionError, OSError, RuntimeError):
            return False
        return isinstance(reply, HeartbeatReply) and reply.healthy

    def inject_fault(self, kind: str, seconds: float = 0.0) -> None:
        """Apply one chaos fault to this shard, each at its real layer.

        ``crash`` kills the actual server process (SIGKILL — no orderly
        shutdown, exactly what failover must survive); ``partition`` blocks
        this handle's connection (the server stays healthy, the coordinator
        just cannot reach it); ``slow``/``heal`` travel over the wire and are
        applied by the worker inside the server.
        """
        if kind == "crash":
            self.child.kill()
            self.child.join(timeout=10)
            return
        if kind == "partition":
            self._partitioned = True
            return
        if kind == "heal":
            self._partitioned = False
        elif kind != "slow":
            raise ValueError(f"unknown fault kind {kind!r}")
        try:
            self._request(FaultInjectRequest(kind=kind, seconds=seconds))
        except (ConnectionError, OSError):
            pass  # a dead or unreachable shard cannot be slowed or healed

    def export_artifact(self, fingerprint: str) -> WarmHandoff | None:
        """Ask the server to publish ``fingerprint``'s artifact as a shm segment."""
        reply = self._request(ArtifactExportRequest(fingerprint=fingerprint))
        if not isinstance(reply, ArtifactExportReply) or not reply.found:
            return None
        return WarmHandoff(fingerprint=fingerprint, segment=reply.segment)

    def adopt_artifact(self, handoff: WarmHandoff) -> bool:
        """Ship a segment-backed handoff to the server for adoption.

        Direct (in-object) handoffs cannot cross the process boundary; the
        artifact is rebuilt on first use instead.
        """
        if handoff.segment is None:
            return False
        reply = self._request(
            ArtifactAdoptRequest(fingerprint=handoff.fingerprint, segment=handoff.segment)
        )
        return isinstance(reply, ArtifactAdoptReply) and reply.adopted

    def close(self) -> None:
        """Orderly shutdown: ask, close the socket, reap the child; idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            if self._sock is not None:
                try:
                    send_frame(self._sock, Shutdown(), instruments=self._instruments)
                    recv_frame(self._sock, instruments=self._instruments)
                except (OSError, RuntimeError, ValueError):
                    pass
                try:
                    self._sock.close()
                finally:
                    self._sock = None
                    self._instruments.connection_closed()
        self.child.join(timeout=10)
        if self.child.is_alive():  # pragma: no cover - only on a wedged child
            self.child.terminate()
            self.child.join(timeout=5)
        if self.address[0] == "unix":
            try:
                os.unlink(self.address[1])
            except OSError:
                pass


def start_shard_server(
    config: ShardServerConfig, metrics: MetricsRegistry | None = None
) -> RemoteShard:
    """Spawn one shard server process and return its connected handle.

    Blocks until the child reports its bound address, with a bounded wait:
    a child that dies during import is reaped and surfaces as a clear
    :class:`ShardSpawnError` (carrying its exit code), and a child that
    simply never binds is terminated and reaped after
    :data:`READY_TIMEOUT_SECONDS` — never a hung dispatch, never a zombie.
    """
    context = multiprocessing.get_context("spawn")
    parent_end, child_end = context.Pipe(duplex=False)
    process = context.Process(
        target=_shard_server_main,
        args=(config, child_end),
        name=f"repro-shard-{config.shard_id}",
        daemon=True,
    )
    process.start()
    child_end.close()
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    while not parent_end.poll(0.1):
        if not process.is_alive():
            process.join()  # reap: a dead child must not linger as a zombie
            raise ShardSpawnError(
                f"shard server {config.shard_id} died before binding "
                f"(exit code {process.exitcode})"
            )
        if time.monotonic() > deadline:
            process.terminate()
            process.join(timeout=5)
            raise ShardSpawnError(
                f"shard server {config.shard_id} did not bind within "
                f"{READY_TIMEOUT_SECONDS:.0f}s"
            )
    try:
        bound = parent_end.recv()
    except EOFError:
        # The child closed the pipe without reporting an address (crashed
        # between poll() and recv()); reap it and fail clearly.
        process.join(timeout=5)
        raise ShardSpawnError(
            f"shard server {config.shard_id} closed the ready pipe without binding "
            f"(exit code {process.exitcode})"
        ) from None
    parent_end.close()
    return RemoteShard(config.shard_id, process, tuple(bound), metrics=metrics)
