"""Client-side resilience primitives: jittered retries and circuit breakers.

Two small, deterministic building blocks the network client composes:

* :class:`RetryPolicy` — exponential backoff with **full jitter**
  (``uniform(0, min(cap, base * multiplier**attempt))``), the AWS-style
  variant that decorrelates a thundering herd of retrying clients.  The
  caller supplies the RNG, so tests seed it and the schedule is exact.
* :class:`CircuitBreaker` — the classic closed → open → half-open machine:
  ``failure_threshold`` consecutive failures open the circuit, requests are
  refused (:class:`CircuitOpenError`, a :class:`ConnectionError` so callers'
  existing failure handling applies) until ``reset_timeout`` elapses, then
  exactly one probe is let through; its outcome closes or re-opens the
  circuit.  The clock is injectable, so the tests never sleep.

State changes invoke ``on_state`` with the numeric state (0 closed, 1 open,
2 half-open) — the client wires that straight into the
``repro_client_breaker_state{target}`` gauge.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

#: Numeric breaker states, as exported by ``repro_client_breaker_state``.
BREAKER_CLOSED = 0
BREAKER_OPEN = 1
BREAKER_HALF_OPEN = 2

_STATE_NAMES = {BREAKER_CLOSED: "closed", BREAKER_OPEN: "open", BREAKER_HALF_OPEN: "half-open"}


class CircuitOpenError(ConnectionError):
    """The circuit breaker is open: the target is presumed down, fail fast."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Attributes:
        max_attempts: total tries, including the first (``1`` = no retries).
        base_delay: backoff scale for the first retry, in seconds.
        max_delay: ceiling on any single delay.
        multiplier: backoff growth per retry.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def ceiling(self, retry: int) -> float:
        """The un-jittered backoff cap before the ``retry``-th retry (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier**retry)

    def delay(self, retry: int, rng: random.Random) -> float:
        """The jittered sleep before the ``retry``-th retry: ``uniform(0, cap)``."""
        return rng.uniform(0.0, self.ceiling(retry))


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one target.

    Args:
        failure_threshold: consecutive failures that open the circuit.
        reset_timeout: seconds the circuit stays open before one probe.
        clock: monotonic time source (injectable for tests).
        on_state: called with the numeric state on every transition (and once
            at construction, so gauges start at ``closed``).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_state: Callable[[int], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._on_state = on_state
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        if on_state is not None:
            on_state(self._state)

    @property
    def state(self) -> str:
        """The state name: ``"closed"``, ``"open"``, or ``"half-open"``."""
        return _STATE_NAMES[self._state]

    @property
    def failures(self) -> int:
        """Consecutive failures since the last success."""
        return self._failures

    def _transition(self, state: int) -> None:
        if state == self._state:
            return
        self._state = state
        if self._on_state is not None:
            self._on_state(state)

    def allow(self) -> bool:
        """May a request proceed right now?

        Open circuits refuse until ``reset_timeout`` has elapsed, then admit
        exactly one half-open probe; further calls refuse until that probe
        reports back via :meth:`record_success` / :meth:`record_failure`.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if self._clock() - self._opened_at < self.reset_timeout:
                return False
            self._transition(BREAKER_HALF_OPEN)
            self._probing = True
            return True
        # Half-open: one probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """The request succeeded: close the circuit, forget the failures."""
        self._failures = 0
        self._probing = False
        self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """The request failed: count it; at the threshold (or on a failed
        half-open probe) the circuit opens and the reset clock restarts."""
        self._failures += 1
        self._probing = False
        if self._state == BREAKER_HALF_OPEN or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._transition(BREAKER_OPEN)
