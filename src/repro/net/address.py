"""Listen/connect addresses for the serving transports.

An address is a plain tuple so it can cross a ``multiprocessing`` pipe and a
config dataclass without custom pickling:

* ``("unix", path)`` — an ``AF_UNIX`` stream socket (the CI default: no port
  allocation, no loopback firewalling);
* ``("inet", host, port)`` — a TCP socket on ``host:port``.

Servers bind with ``port 0`` / a fresh socket path and report the *actual*
bound address back, so callers never guess.
"""

from __future__ import annotations

import socket

__all__ = ["FAMILIES", "connect", "describe"]

#: The recognised address families.
FAMILIES = ("unix", "inet")


def connect(address: tuple, timeout: float | None = None) -> socket.socket:
    """A connected blocking stream socket for ``address``."""
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
    elif address[0] == "inet":
        sock = socket.create_connection((address[1], address[2]), timeout=timeout)
    else:
        raise ValueError(f"unknown address family {address[0]!r}; use one of {FAMILIES}")
    sock.settimeout(timeout)
    return sock


def describe(address: tuple) -> str:
    """Human-readable form of an address (for logs and examples)."""
    if address[0] == "unix":
        return f"unix:{address[1]}"
    if address[0] == "inet":
        return f"tcp://{address[1]}:{address[2]}"
    return repr(address)
