"""A resilient blocking cluster client speaking the gateway's frame protocol.

:class:`ClusterClient` mirrors the slice of the
:class:`~repro.cluster.ClusterCoordinator` surface that drivers use —
``submit`` / ``dispatch`` / ``admission_totals`` / ``queue_depths`` — so the
open-loop load generator (and any closed-loop driver) can point at a network
cluster without changing a line: pass the client where the coordinator went.

``dispatch()`` consumes the gateway's streamed per-shard frames and reasembles
the same :class:`~repro.cluster.ClusterReport` the in-process path returns;
``report.signature()`` is byte-identical across the two transports.  Shards
that hit the request deadline before starting are recorded on
:attr:`last_expired` (their work was requeued server-side, not lost).

Resilience (new in the durability release):

* **Retry with full jitter** — connection-level failures (the gateway died,
  the socket broke) reconnect and resend under a seeded
  :class:`~repro.net.resilience.RetryPolicy`; ``repro_client_retries_total``
  counts them by operation.
* **Exactly-once resubmission** — every submit carries an idempotency key
  (auto-generated when the caller does not supply one), so a retry that
  lands after the original was admitted dedups server-side
  (``SubmitReply.duplicate``) instead of double-enqueueing.
* **Circuit breaker** — consecutive failures open a per-target breaker
  (``repro_client_breaker_state``: 0 closed / 1 open / 2 half-open) that
  fails fast with :class:`~repro.net.resilience.CircuitOpenError` until a
  half-open probe succeeds.
* **Hedged reads** — with ``hedge_delay`` set, idempotent read requests
  (ping/stats) that stall past the delay race a second connection; the
  fresh reply wins and the stalled connection is dropped.
* **Dispatch resumption** — a dispatch stream cut mid-flight retries from a
  fresh connection; shard reports already received are kept and merged with
  the resumed stream's (the coordinator outlives the gateway, so queued
  work is still there).

One connection, one request in flight (a lock enforces it) — that is the
protocol's per-connection backpressure; open more clients for concurrency.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from typing import Any, Callable, Mapping, Sequence

import networkx as nx

from repro.cluster.admission import AdmissionStats
from repro.cluster.coordinator import ClusterReport, merge_batch_reports
from repro.metrics import MetricsRegistry, default_registry
from repro.net import address as net_address
from repro.net.frames import NetInstruments, recv_frame, send_frame
from repro.net.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.wire.codec import WireDecodeError, codec_id, supported_codec_names
from repro.wire.messages import (
    DispatchDoneReply,
    DispatchRequest,
    DispatchShardReply,
    ErrorReply,
    Hello,
    HelloReply,
    NeedGraphReply,
    Ping,
    Pong,
    StatsReply,
    StatsRequest,
    SubmitReply,
    SubmitRequest,
    WireGraph,
    WireMessage,
    WireRequest,
)
from repro.service.service import BatchReport
from repro.workloads import Workload

__all__ = ["ClusterClient", "GatewayError", "DeadlineExpired", "CircuitOpenError"]


class GatewayError(RuntimeError):
    """The gateway answered with an :class:`~repro.wire.messages.ErrorReply`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class DeadlineExpired(GatewayError):
    """The request's deadline lapsed before the gateway served it."""


def _raise_for(reply: WireMessage) -> WireMessage:
    if isinstance(reply, ErrorReply):
        if reply.code == "deadline":
            raise DeadlineExpired(reply.code, reply.message)
        raise GatewayError(reply.code, reply.message)
    return reply


class ClusterClient:
    """Blocking client for one :class:`~repro.net.gateway.ClusterGateway`.

    Args:
        address: the gateway's bound address tuple (``("unix", path)`` or
            ``("inet", host, port)``).
        timeout: socket timeout in seconds for connect and replies.
        metrics: registry for the ``repro_net_*{role="client"}`` and
            ``repro_client_*`` series.
        retry: the backoff schedule for connection-level failures
            (``RetryPolicy(max_attempts=1)`` disables retries).
        retry_seed: seeds the jitter RNG — two clients with the same seed
            retry on the same schedule (determinism for tests).
        breaker_failures / breaker_reset: circuit-breaker threshold and
            open-interval, per client (= per target address).
        hedge_delay: seconds an idempotent read may stall before a hedge
            request races it on a fresh connection (``None`` = no hedging).

    Retries only ever resend after a **connection-level** failure
    (:class:`ConnectionError` / :class:`OSError`); gateway-level errors
    (:class:`GatewayError`) are answers, not failures, and propagate
    immediately.  Resent submits carry the same idempotency key, so the
    server dedups rather than double-admits — that is what makes
    reconnect-and-resubmit safe.
    """

    def __init__(
        self,
        address: tuple,
        timeout: float | None = 120.0,
        metrics: MetricsRegistry | None = None,
        retry: RetryPolicy | None = None,
        retry_seed: int = 0,
        breaker_failures: int = 5,
        breaker_reset: float = 1.0,
        hedge_delay: float | None = None,
    ) -> None:
        self.address = tuple(address)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge_delay = hedge_delay
        self._rng = random.Random(retry_seed)
        self._sleep: Callable[[float], None] = time.sleep
        registry = metrics if metrics is not None else default_registry()
        self._instruments = NetInstruments(registry, role="client")
        self._m_retries = registry.counter(
            "repro_client_retries_total",
            "Requests resent after a connection-level failure, by operation.",
            labels=("op",),
        )
        self._m_hedges = registry.counter(
            "repro_client_hedges_total",
            "Idempotent reads raced on a second connection after stalling.",
            labels=("op",),
        )
        target = ":".join(str(part) for part in self.address)
        breaker_gauge = registry.gauge(
            "repro_client_breaker_state",
            "Circuit-breaker state per target (0 closed, 1 open, 2 half-open).",
            labels=("target",),
        )
        self._breaker = CircuitBreaker(
            failure_threshold=breaker_failures,
            reset_timeout=breaker_reset,
            on_state=lambda state: breaker_gauge.labels(target=target).set(state),
        )
        self._lock = threading.Lock()
        self._closed = False
        self._sock = None
        # Negotiated per connection by the hello handshake; reset on drop.
        self._codec: int | None = None
        self._features: tuple = ()
        self._hello_pending = False
        # Graphs are replayed query after query; encode each object once.
        self._graph_cache: dict[int, tuple[nx.Graph, WireGraph]] = {}
        # Auto idempotency keys: unique across client instances (the
        # coordinator's key space outlives any one gateway or client).
        self._key_nonce = uuid.uuid4().hex[:12]
        self._key_counter = 0
        self.last_expired: tuple[str, ...] = ()
        with self._lock:
            self._ensure_connected()

    # -- plumbing --------------------------------------------------------------

    def _ensure_connected(self) -> None:
        """Connect if needed (caller holds the lock); breaker-gated.

        Every fresh connection opens with a **pipelined** hello handshake:
        the client sends its codecs and features and keeps going — the
        server's answer is consumed by :meth:`_recv` just before the next
        real reply (frames are answered in order), so the handshake costs
        zero round trips and never blocks ahead of hedging or retries.  A
        server that answers ``ErrorReply(code="unsupported")`` predates the
        handshake — the client silently keeps the JSON/full-payload
        defaults, which every server version accepts (rolling-upgrade
        tolerance in both directions).
        """
        if self._sock is not None:
            return
        if not self._breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.address}: too many consecutive failures"
            )
        try:
            self._sock = net_address.connect(self.address, timeout=self.timeout)
        except OSError:
            self._breaker.record_failure()
            raise
        self._instruments.connection_opened()
        self._codec = None
        self._features = ()
        try:
            send_frame(
                self._sock,
                Hello(codecs=supported_codec_names(), features=("need-graph",)),
                instruments=self._instruments,
            )
        except (ConnectionError, OSError):
            self._breaker.record_failure()
            self._drop_connection_locked()
            raise
        self._hello_pending = True

    def _drop_connection_locked(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None
        self._codec = None
        self._features = ()
        self._hello_pending = False
        self._instruments.connection_closed()

    def _recv(self) -> WireMessage:
        reply = recv_frame(self._sock, instruments=self._instruments)
        if reply is None:
            raise ConnectionError("the gateway closed the connection")
        if self._hello_pending:
            # The first reply on a fresh connection answers the pipelined
            # hello: adopt what a new server negotiated, shrug off an old
            # server's ErrorReply, then read the actual reply behind it.
            self._hello_pending = False
            if isinstance(reply, HelloReply):
                self._codec = codec_id(reply.codec)
                self._features = tuple(reply.features)
            elif not isinstance(reply, ErrorReply):
                return reply  # a server that ignored the hello outright
            reply = recv_frame(self._sock, instruments=self._instruments)
            if reply is None:
                raise ConnectionError("the gateway closed the connection")
        return reply

    def _finish_hello(self) -> None:
        """Block for the pipelined hello reply (caller holds the lock).

        Feature-dependent requests (submit's fingerprint negotiation) call
        this so the first submit on a fresh connection already knows whether
        the server understands ``need-graph``; reads that hedge (ping/stats)
        instead let :meth:`_recv` consume the reply lazily so a stalled
        server cannot wedge them ahead of the hedge timer.
        """
        if not self._hello_pending:
            return
        self._hello_pending = False
        reply = recv_frame(self._sock, instruments=self._instruments)
        if reply is None:
            raise ConnectionError("the gateway closed the connection")
        if isinstance(reply, HelloReply):
            self._codec = codec_id(reply.codec)
            self._features = tuple(reply.features)
        # An old server's ErrorReply leaves the JSON/full-payload defaults.

    def _with_retry(self, op: str, attempt_fn: Callable[[], WireMessage]) -> Any:
        """Run ``attempt_fn`` under the retry policy; reconnects between tries."""
        if self._closed:
            raise RuntimeError("the client is closed")
        last_error: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self._m_retries.labels(op=op).inc()
                self._sleep(self.retry.delay(attempt - 1, self._rng))
            try:
                result = attempt_fn()
                self._breaker.record_success()
                return result
            except CircuitOpenError as error:
                # The breaker already failed fast; don't count it again.
                last_error = error
            except (ConnectionError, OSError) as error:
                self._breaker.record_failure()
                with self._lock:
                    self._drop_connection_locked()
                last_error = error
        assert last_error is not None
        raise last_error

    def _request(self, message: WireMessage, op: str = "request") -> WireMessage:
        def attempt() -> WireMessage:
            with self._lock:
                self._ensure_connected()
                send_frame(self._sock, message, codec=self._codec, instruments=self._instruments)
                return _raise_for(self._recv())

        return self._with_retry(op, attempt)

    def _hedged_request(self, message: WireMessage, op: str) -> WireMessage:
        """A read request that races a second connection when the first stalls.

        Only for idempotent reads: the hedge may execute the request twice
        server-side, which must be observationally free.
        """
        if self.hedge_delay is None:
            return self._request(message, op)

        def attempt() -> WireMessage:
            with self._lock:
                self._ensure_connected()
                send_frame(self._sock, message, codec=self._codec, instruments=self._instruments)
                previous = self._sock.gettimeout()
                self._sock.settimeout(self.hedge_delay)
                try:
                    return _raise_for(self._recv())
                except (TimeoutError, OSError):
                    self._m_hedges.labels(op=op).inc()
                    hedge = net_address.connect(self.address, timeout=self.timeout)
                    try:
                        send_frame(hedge, message, instruments=self._instruments)
                        reply = recv_frame(hedge, instruments=self._instruments)
                    finally:
                        hedge.close()
                    # The stalled primary's eventual reply would desync the
                    # stream; drop the connection rather than reuse it.
                    self._drop_connection_locked()
                    if reply is None:
                        raise ConnectionError("the hedge connection closed without a reply")
                    return _raise_for(reply)
                finally:
                    if self._sock is not None:
                        self._sock.settimeout(previous)

        return self._with_retry(op, attempt)

    def _wire_graph(self, graph: nx.Graph) -> WireGraph:
        cached = self._graph_cache.get(id(graph))
        if cached is not None and cached[0] is graph:
            return cached[1]
        wire_graph = WireGraph.from_graph(graph)
        self._graph_cache[id(graph)] = (graph, wire_graph)
        return wire_graph

    def _next_key(self) -> str:
        self._key_counter += 1
        return f"client-{self._key_nonce}-{self._key_counter}"

    @property
    def breaker_state(self) -> str:
        """The circuit breaker's state name (``closed``/``open``/``half-open``)."""
        return self._breaker.state

    # -- the coordinator-shaped API -------------------------------------------

    def ping(self) -> bool:
        return isinstance(self._hedged_request(Ping(), "ping"), Pong)

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
        deadline: float | None = None,
        idempotency_key: str | None = None,
    ) -> SubmitReply:
        """Plan/place/enqueue one query on the server; returns the admission outcome.

        The reply quacks like an admission decision: ``accepted``,
        ``shard_id``, ``shed`` (a count — the shed items themselves stay
        server-side), and ``duplicate`` (the key was already admitted or
        completed; the earlier admission stands).  Unkeyed submissions get a
        client-generated key, so a retried resubmission after a gateway
        crash can never double-enqueue.

        When the server's hello advertised ``need-graph``, the submit ships
        only the graph's fingerprint; a :class:`NeedGraphReply` (cache miss,
        eviction, or membership-change invalidation) triggers a one-time
        re-send with the full payload under the **same** idempotency key.
        Two clients sharing a graph thus upload it exactly once between them.
        """
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        if idempotency_key is None:
            idempotency_key = self._next_key()
        wire_graph = self._wire_graph(graph)
        wire_requests = tuple(WireRequest.from_request(request) for request in requests)

        def build(full: bool) -> SubmitRequest:
            return SubmitRequest(
                graph=wire_graph if full else None,
                graph_fingerprint=wire_graph.fingerprint(),
                requests=wire_requests,
                load=load,
                backend=backend,
                backend_params=dict(backend_params) if backend_params is not None else None,
                workload=workload,
                deadline=deadline,
                idempotency_key=idempotency_key,
            )

        def attempt() -> WireMessage:
            with self._lock:
                self._ensure_connected()
                self._finish_hello()
                fingerprint_only = "need-graph" in self._features
                send_frame(
                    self._sock,
                    build(full=not fingerprint_only),
                    codec=self._codec,
                    instruments=self._instruments,
                )
                if not fingerprint_only:
                    self._instruments.graph_uploaded()
                reply = _raise_for(self._recv())
                if isinstance(reply, NeedGraphReply):
                    self._instruments.graph_uploaded()
                    send_frame(
                        self._sock,
                        build(full=True),
                        codec=self._codec,
                        instruments=self._instruments,
                    )
                    reply = _raise_for(self._recv())
                elif fingerprint_only:
                    self._instruments.payload_deduped()
                return reply

        reply = self._with_retry("submit", attempt)
        if not isinstance(reply, SubmitReply):
            raise WireDecodeError(f"expected a submit reply, got {reply.type!r}")
        return reply

    def dispatch(self, deadline: float | None = None) -> ClusterReport:
        """One scatter/gather cycle; shard reports stream in as they complete.

        A stream cut mid-flight (gateway death) retries against a fresh
        connection: reports already received are kept, the resumed dispatch
        drains what is still queued (the coordinator outlives the gateway),
        and the merged report covers both — admitted work is never counted
        twice because completed batches are not re-dispatched.
        """
        collected: dict[str, list[BatchReport]] = {}

        def attempt() -> ClusterReport:
            if self._closed:
                raise RuntimeError("the client is closed")
            with self._lock:
                self._ensure_connected()
                request = DispatchRequest(deadline=deadline)
                send_frame(self._sock, request, codec=self._codec, instruments=self._instruments)
                while True:
                    reply = _raise_for(self._recv())
                    if isinstance(reply, DispatchShardReply):
                        collected.setdefault(reply.shard_id, []).append(
                            reply.report.to_report()
                        )
                        continue
                    if isinstance(reply, DispatchDoneReply):
                        report = ClusterReport(
                            shard_reports={
                                shard_id: merge_batch_reports(reports)
                                for shard_id, reports in collected.items()
                            },
                            dispatch_seconds=reply.dispatch_seconds,
                            admission=reply.admission.to_stats(),
                        )
                        self.last_expired = tuple(reply.expired)
                        for _ in reply.expired:
                            self._instruments.deadline_expired("dispatch")
                        return report
                    raise WireDecodeError(f"unexpected {reply.type!r} frame during dispatch")

        return self._with_retry("dispatch", attempt)

    def admission_totals(self) -> AdmissionStats:
        """Cluster-lifetime admission totals, as the coordinator reports them."""
        return self._stats().admission.to_stats()

    def queue_depths(self) -> dict[str, int]:
        return dict(self._stats().queue_depths)

    @property
    def shard_count(self) -> int:
        return self._stats().shard_count

    def _stats(self) -> StatsReply:
        reply = self._hedged_request(StatsRequest(), "stats")
        if not isinstance(reply, StatsReply):
            raise WireDecodeError(f"expected a stats reply, got {reply.type!r}")
        return reply

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._drop_connection_locked()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
