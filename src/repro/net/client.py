"""A blocking cluster client speaking the gateway's frame protocol.

:class:`ClusterClient` mirrors the slice of the
:class:`~repro.cluster.ClusterCoordinator` surface that drivers use —
``submit`` / ``dispatch`` / ``admission_totals`` / ``queue_depths`` — so the
open-loop load generator (and any closed-loop driver) can point at a network
cluster without changing a line: pass the client where the coordinator went.

``dispatch()`` consumes the gateway's streamed per-shard frames and reasembles
the same :class:`~repro.cluster.ClusterReport` the in-process path returns;
``report.signature()`` is byte-identical across the two transports.  Shards
that hit the request deadline before starting are recorded on
:attr:`last_expired` (their work was requeued server-side, not lost).

One connection, one request in flight (a lock enforces it) — that is the
protocol's per-connection backpressure; open more clients for concurrency.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Sequence

import networkx as nx

from repro.cluster.admission import AdmissionStats
from repro.cluster.coordinator import ClusterReport
from repro.metrics import MetricsRegistry, default_registry
from repro.net import address as net_address
from repro.net.frames import NetInstruments, recv_frame, send_frame
from repro.wire.codec import WireDecodeError
from repro.wire.messages import (
    DispatchDoneReply,
    DispatchRequest,
    DispatchShardReply,
    ErrorReply,
    Ping,
    Pong,
    StatsReply,
    StatsRequest,
    SubmitReply,
    SubmitRequest,
    WireGraph,
    WireMessage,
    WireRequest,
)
from repro.workloads import Workload

__all__ = ["ClusterClient", "GatewayError", "DeadlineExpired"]


class GatewayError(RuntimeError):
    """The gateway answered with an :class:`~repro.wire.messages.ErrorReply`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class DeadlineExpired(GatewayError):
    """The request's deadline lapsed before the gateway served it."""


def _raise_for(reply: WireMessage) -> WireMessage:
    if isinstance(reply, ErrorReply):
        if reply.code == "deadline":
            raise DeadlineExpired(reply.code, reply.message)
        raise GatewayError(reply.code, reply.message)
    return reply


class ClusterClient:
    """Blocking client for one :class:`~repro.net.gateway.ClusterGateway`.

    Args:
        address: the gateway's bound address tuple (``("unix", path)`` or
            ``("inet", host, port)``).
        timeout: socket timeout in seconds for connect and replies.
        metrics: registry for the ``repro_net_*{role="client"}`` series.
    """

    def __init__(
        self,
        address: tuple,
        timeout: float | None = 120.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.address = tuple(address)
        self._instruments = NetInstruments(
            metrics if metrics is not None else default_registry(), role="client"
        )
        self._sock = net_address.connect(self.address, timeout=timeout)
        self._instruments.connection_opened()
        self._lock = threading.Lock()
        self._closed = False
        # Graphs are replayed query after query; encode each object once.
        self._graph_cache: dict[int, tuple[nx.Graph, WireGraph]] = {}
        self.last_expired: tuple[str, ...] = ()

    # -- plumbing --------------------------------------------------------------

    def _recv(self) -> WireMessage:
        reply = recv_frame(self._sock, instruments=self._instruments)
        if reply is None:
            raise ConnectionError("the gateway closed the connection")
        return reply

    def _request(self, message: WireMessage) -> WireMessage:
        if self._closed:
            raise RuntimeError("the client is closed")
        with self._lock:
            send_frame(self._sock, message, instruments=self._instruments)
            return _raise_for(self._recv())

    def _wire_graph(self, graph: nx.Graph) -> WireGraph:
        cached = self._graph_cache.get(id(graph))
        if cached is not None and cached[0] is graph:
            return cached[1]
        wire_graph = WireGraph.from_graph(graph)
        self._graph_cache[id(graph)] = (graph, wire_graph)
        return wire_graph

    # -- the coordinator-shaped API -------------------------------------------

    def ping(self) -> bool:
        return isinstance(self._request(Ping()), Pong)

    def submit(
        self,
        graph: nx.Graph,
        requests: Sequence | Workload,
        load: int | None = None,
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
        workload: str = "",
        deadline: float | None = None,
    ) -> SubmitReply:
        """Plan/place/enqueue one query on the server; returns the admission outcome.

        The reply quacks like an admission decision: ``accepted``,
        ``shard_id``, and ``shed`` (a count — the shed items themselves stay
        server-side).
        """
        if isinstance(requests, Workload):
            workload = requests.name
            if load is None:
                load = requests.load
            requests = requests.requests
        reply = self._request(
            SubmitRequest(
                graph=self._wire_graph(graph),
                requests=tuple(WireRequest.from_request(request) for request in requests),
                load=load,
                backend=backend,
                backend_params=dict(backend_params) if backend_params is not None else None,
                workload=workload,
                deadline=deadline,
            )
        )
        if not isinstance(reply, SubmitReply):
            raise WireDecodeError(f"expected a submit reply, got {reply.type!r}")
        return reply

    def dispatch(self, deadline: float | None = None) -> ClusterReport:
        """One scatter/gather cycle; shard reports stream in as they complete."""
        if self._closed:
            raise RuntimeError("the client is closed")
        with self._lock:
            request = DispatchRequest(deadline=deadline)
            send_frame(self._sock, request, instruments=self._instruments)
            report = ClusterReport()
            while True:
                reply = _raise_for(self._recv())
                if isinstance(reply, DispatchShardReply):
                    report.shard_reports[reply.shard_id] = reply.report.to_report()
                    continue
                if isinstance(reply, DispatchDoneReply):
                    report.dispatch_seconds = reply.dispatch_seconds
                    report.admission = reply.admission.to_stats()
                    self.last_expired = tuple(reply.expired)
                    for _ in reply.expired:
                        self._instruments.deadline_expired("dispatch")
                    return report
                raise WireDecodeError(f"unexpected {reply.type!r} frame during dispatch")

    def admission_totals(self) -> AdmissionStats:
        """Cluster-lifetime admission totals, as the coordinator reports them."""
        return self._stats().admission.to_stats()

    def queue_depths(self) -> dict[str, int]:
        return dict(self._stats().queue_depths)

    @property
    def shard_count(self) -> int:
        return self._stats().shard_count

    def _stats(self) -> StatsReply:
        reply = self._request(StatsRequest())
        if not isinstance(reply, StatsReply):
            raise WireDecodeError(f"expected a stats reply, got {reply.type!r}")
        return reply

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        finally:
            self._instruments.connection_closed()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
