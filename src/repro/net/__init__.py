"""Network transports for the cluster serving tier.

The wire *schema* lives in :mod:`repro.wire`; this package puts it on
sockets: length-prefixed framing (:mod:`repro.net.frames`), shard server
processes (:mod:`repro.net.shard_server`), the coordinator's asyncio gateway
(:mod:`repro.net.gateway`), and the blocking client
(:mod:`repro.net.client`).  Unix sockets are the default (CI-friendly);
``family="inet"`` serves real TCP.
"""

from repro.net.address import FAMILIES, connect, describe
from repro.net.client import ClusterClient, DeadlineExpired, GatewayError
from repro.net.frames import (
    MAX_FRAME_BYTES,
    NetInstruments,
    pack_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.net.gateway import ClusterGateway
from repro.net.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.net.shard_server import (
    RemoteShard,
    ShardServerConfig,
    ShardSpawnError,
    serve_shard,
    start_shard_server,
)

__all__ = [
    "FAMILIES",
    "connect",
    "describe",
    "MAX_FRAME_BYTES",
    "NetInstruments",
    "pack_frame",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
    "ShardServerConfig",
    "ShardSpawnError",
    "serve_shard",
    "start_shard_server",
    "RemoteShard",
    "ClusterGateway",
    "ClusterClient",
    "GatewayError",
    "DeadlineExpired",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
]
