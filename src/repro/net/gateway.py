"""The cluster's network front door: an asyncio gateway over the coordinator.

:class:`ClusterGateway` multiplexes client connections onto one
:class:`~repro.cluster.ClusterCoordinator`.  It owns an asyncio event loop in
a background thread (the coordinator keeps its blocking, thread-pooled
internals) and speaks the frame protocol of :mod:`repro.net.frames`:

* **Backpressure, twice.** Each connection is served one frame at a time —
  a client cannot have two requests in flight on one connection, and a slow
  reader stops being written to (TCP does the rest).  Across connections a
  global semaphore bounds in-flight requests, so a connection storm queues at
  the door instead of overwhelming the admission tier.
* **Deadlines.** ``SubmitRequest.deadline`` / ``DispatchRequest.deadline``
  are *relative* second budgets (client clocks are never trusted).  An
  expired submit is refused with an ``ErrorReply(code="deadline")``; a
  dispatch slice whose shard has not *started* by the deadline is requeued —
  admitted work is never lost — and named in the done frame's ``expired``
  list.  Both paths count ``repro_net_deadline_expirations_total``.
* **Streaming.** A dispatch cycle answers with one
  :class:`~repro.wire.messages.DispatchShardReply` per busy shard *as each
  completes* — the client renders results shard by shard instead of waiting
  for the stragglers — then one :class:`~repro.wire.messages.DispatchDoneReply`.

Submission order is serialised by an internal lock, so one client driving the
gateway sees exactly the placement/admission sequence the in-process
coordinator gives — that is what makes ``transport="local"`` and
``transport="tcp"`` signature-compatible end to end.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import threading
import time

import networkx as nx

from repro.cluster.coordinator import ClusterCoordinator
from repro.net import address as net_address
from repro.net.frames import NetInstruments, read_frame, write_frame
from repro.wire.messages import (
    DispatchDoneReply,
    DispatchRequest,
    DispatchShardReply,
    ErrorReply,
    Ping,
    Pong,
    Shutdown,
    ShutdownAck,
    StatsReply,
    StatsRequest,
    SubmitReply,
    SubmitRequest,
    WireAdmissionStats,
    WireBatchReport,
    WireGraph,
    WireMessage,
)

__all__ = ["ClusterGateway"]


class ClusterGateway:
    """Serve a coordinator over unix or TCP sockets; one instance per cluster.

    Args:
        coordinator: the (already configured) cluster front door to expose.
        family: ``"unix"`` (default — binds ``socket_path``) or ``"inet"``
            (binds ``host`` on an ephemeral port).
        socket_path: listening path for the unix family.
        host: listening host for the inet family.
        max_inflight: global bound on concurrently served requests.
        metrics: registry for the ``repro_net_*{role="gateway"}`` series
            (default: the coordinator's registry).

    The constructor blocks until the listener is bound; :attr:`address` then
    holds the actual address (``("unix", path)`` or ``("inet", host, port)``).
    ``close()`` stops the loop and thread (idempotent); the coordinator itself
    is *not* closed — the caller owns it.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        family: str = "unix",
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        max_inflight: int = 64,
        metrics=None,
    ) -> None:
        if family not in net_address.FAMILIES:
            raise ValueError(f"unknown family {family!r}; use one of {net_address.FAMILIES}")
        if family == "unix" and not socket_path:
            raise ValueError("a unix gateway needs socket_path")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.coordinator = coordinator
        self._family = family
        self._socket_path = socket_path
        self._host = host
        self._max_inflight = max_inflight
        self._instruments = NetInstruments(
            metrics if metrics is not None else coordinator.metrics, role="gateway"
        )
        self.address: tuple = ()
        self._graph_cache: dict[str, nx.Graph] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._closed = False
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, name="repro-gateway", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        if not self.address:
            raise TimeoutError("gateway did not bind in time")

    # -- the serving loop ------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # noqa: BLE001 - surfaced to the constructor
            self._startup_error = error
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # Submissions (and queue drains) are serialised: placement and
        # admission order is then a pure function of frame arrival order,
        # exactly like call order on the in-process coordinator.
        self._submit_lock = asyncio.Lock()
        self._inflight = asyncio.Semaphore(self._max_inflight)
        if self._family == "unix":
            server = await asyncio.start_unix_server(self._handle, path=self._socket_path)
            self.address = ("unix", self._socket_path)
        else:
            server = await asyncio.start_server(self._handle, host=self._host, port=0)
            self.address = ("inet", self._host, server.sockets[0].getsockname()[1])
        self._ready.set()
        async with server:
            await self._stop.wait()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._instruments.connection_opened()
        try:
            while True:
                message = await read_frame(reader, self._instruments)
                if message is None:
                    break
                async with self._inflight:
                    try:
                        done = await self._answer(message, writer)
                    except Exception as error:  # noqa: BLE001 - reported to the peer
                        await self._send(
                            writer,
                            ErrorReply(
                                code="gateway-error",
                                message=f"{type(error).__name__}: {error}",
                            ),
                        )
                        done = False
                if done:
                    break
        finally:
            self._instruments.connection_closed()
            writer.close()
            # CancelledError included: loop shutdown cancels handler tasks
            # mid-wait, and an unhandled cancellation here is just log noise.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, message: WireMessage) -> None:
        await write_frame(writer, message, instruments=self._instruments)

    async def _answer(self, message: WireMessage, writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns True when the connection should close."""
        if isinstance(message, SubmitRequest):
            await self._send(writer, await self._submit(message))
        elif isinstance(message, DispatchRequest):
            await self._dispatch(message, writer)
        elif isinstance(message, StatsRequest):
            await self._send(writer, self._stats())
        elif isinstance(message, Ping):
            await self._send(writer, Pong())
        elif isinstance(message, Shutdown):
            await self._send(writer, ShutdownAck())
            if self._stop is not None:
                self._stop.set()
            return True
        else:
            await self._send(
                writer,
                ErrorReply(code="unsupported", message=f"gateway cannot serve {message.type!r}"),
            )
        return False

    # -- request handlers ------------------------------------------------------

    def _graph_for(self, wire_graph: WireGraph) -> nx.Graph:
        """Reconstruct (and memoize) the submitted graph.

        Clients replay the same graphs query after query; caching on the
        canonical payload keeps one graph *object* per distinct graph, so the
        coordinator's per-object fingerprint memoization works exactly as it
        does in process.
        """
        payload = wire_graph.to_payload()
        payload.pop("v", None)
        key = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        graph = self._graph_cache.get(key)
        if graph is None:
            graph = wire_graph.to_graph()
            self._graph_cache[key] = graph
        return graph

    async def _submit(self, request: SubmitRequest) -> WireMessage:
        if request.deadline is not None and request.deadline <= 0:
            self._instruments.deadline_expired("submit")
            return ErrorReply(code="deadline", message="submit deadline expired")
        graph = self._graph_for(request.graph)
        requests = tuple(entry.to_request() for entry in request.requests)
        async with self._submit_lock:
            decision = await asyncio.to_thread(
                self.coordinator.submit,
                graph,
                requests,
                load=request.load,
                backend=request.backend,
                backend_params=request.backend_params,
                workload=request.workload,
                idempotency_key=request.idempotency_key,
            )
        return SubmitReply(
            shard_id=decision.shard_id,
            accepted=decision.accepted,
            shed=len(decision.shed),
            duplicate=decision.duplicate,
        )

    async def _dispatch(self, request: DispatchRequest, writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        expires_at = started + request.deadline if request.deadline is not None else None
        async with self._submit_lock:
            busy = await asyncio.to_thread(self.coordinator.drain_slices)
        expired: list[str] = []
        running: set[asyncio.Task] = set()
        for shard_id in sorted(busy):
            if expires_at is not None and time.perf_counter() >= expires_at:
                # Not started in time: the slice goes back to the head of its
                # queue (it was admitted once — it is never lost) and the
                # shard is reported as expired.
                self.coordinator.admission.requeue(shard_id, busy[shard_id])
                self._instruments.deadline_expired("dispatch")
                expired.append(shard_id)
                continue

            async def serve(shard_id: str = shard_id, items=busy[shard_id]):
                report = await asyncio.to_thread(
                    self.coordinator.process_shard, shard_id, items
                )
                return shard_id, report

            running.add(asyncio.create_task(serve()))
        shard_reports = {}
        while running:
            done, running = await asyncio.wait(running, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                shard_id, report = task.result()
                shard_reports[shard_id] = report
                await self._send(
                    writer,
                    DispatchShardReply(
                        shard_id=shard_id, report=WireBatchReport.from_report(report)
                    ),
                )
        merged = self.coordinator.merge_reports(
            shard_reports, dispatch_seconds=time.perf_counter() - started
        )
        await self._send(
            writer,
            DispatchDoneReply(
                dispatch_seconds=merged.dispatch_seconds,
                admission=WireAdmissionStats.from_stats(merged.admission),
                expired=tuple(expired),
            ),
        )

    def _stats(self) -> StatsReply:
        return StatsReply(
            admission=WireAdmissionStats.from_stats(self.coordinator.admission_totals()),
            queue_depths=dict(self.coordinator.queue_depths()),
            shard_count=self.coordinator.shard_count,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop the listener and join the loop thread; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=10)
        if self._family == "unix" and self._socket_path:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
