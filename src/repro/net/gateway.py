"""The cluster's network front door: an asyncio gateway over the coordinator.

:class:`ClusterGateway` multiplexes client connections onto one
:class:`~repro.cluster.ClusterCoordinator`.  It owns an asyncio event loop in
a background thread (the coordinator keeps its blocking, thread-pooled
internals) and speaks the frame protocol of :mod:`repro.net.frames`:

* **Backpressure, twice.** Each connection is served one frame at a time —
  a client cannot have two requests in flight on one connection, and a slow
  reader stops being written to (TCP does the rest).  Across connections a
  global semaphore bounds in-flight requests, so a connection storm queues at
  the door instead of overwhelming the admission tier.
* **Coalescing.** Submits from *all* connections feed one admission queue
  drained by a single-writer loop.  The loop closes an adaptive micro-batch
  window — on ``max_batch`` submits, on ``max_delay_ms`` elapsed, or
  immediately when the queue runs dry with at most one connection active (a
  lone sequential client never waits) — and admits the whole window in one
  coordinator pass (:meth:`~repro.cluster.ClusterCoordinator.submit_many`,
  which group-commits the window's journal records in one fsync).  Replies
  are split back per connection afterwards.  Admission order is queue
  arrival order, so placement stays a pure function of frame arrival order
  exactly as it was under the old per-submit lock.
* **Fingerprint negotiation.** A client that has already uploaded a graph
  may submit with only its fingerprint; the gateway resolves it from an
  LRU-bounded cache and answers ``NeedGraphReply`` on a miss (eviction or a
  membership change, which invalidates the cache) so the client re-sends the
  full payload once.  ``repro_net_payloads_deduped_total`` counts the elided
  uploads.
* **Deadlines.** ``SubmitRequest.deadline`` / ``DispatchRequest.deadline``
  are *relative* second budgets (client clocks are never trusted).  An
  expired submit is refused with an ``ErrorReply(code="deadline")``; a
  dispatch slice whose shard has not *started* by the deadline is requeued —
  admitted work is never lost — and named in the done frame's ``expired``
  list.  Both paths count ``repro_net_deadline_expirations_total``.
* **Streaming.** A dispatch cycle answers with one
  :class:`~repro.wire.messages.DispatchShardReply` per busy shard *as each
  completes* — the client renders results shard by shard instead of waiting
  for the stragglers — then one :class:`~repro.wire.messages.DispatchDoneReply`.

Dispatch drains and the admission loop serialise on one mutex only around
their coordinator calls, so a drain no longer blocks submits from *queueing*
(they coalesce into the next window) and shard processing overlaps admission
entirely.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.cluster.coordinator import ClusterCoordinator
from repro.net import address as net_address
from repro.net.frames import NetInstruments, read_frame, write_frame
from repro.wire.codec import codec_name, negotiate_codec
from repro.wire.messages import (
    DispatchDoneReply,
    DispatchRequest,
    DispatchShardReply,
    ErrorReply,
    Hello,
    HelloReply,
    NeedGraphReply,
    Ping,
    Pong,
    Shutdown,
    ShutdownAck,
    StatsReply,
    StatsRequest,
    SubmitReply,
    SubmitRequest,
    WireAdmissionStats,
    WireBatchReport,
    WireGraph,
    WireMessage,
)

__all__ = ["ClusterGateway", "GATEWAY_FEATURES"]

#: Capabilities a new gateway advertises in its hello reply.  ``need-graph``
#: tells the client fingerprint-only submits are understood; a gateway
#: without it (or one answering ``unsupported``) gets full payloads forever.
GATEWAY_FEATURES = ("need-graph", "coalesce")


@dataclass
class _Ticket:
    """One queued submit: the coordinator kwargs plus the reply future."""

    kwargs: dict[str, Any]
    future: asyncio.Future = field(repr=False)


class _Connection:
    """Per-connection negotiated state (codec today, features tomorrow)."""

    __slots__ = ("codec",)

    def __init__(self) -> None:
        self.codec: int | None = None  # None = DEFAULT_CODEC (pre-hello traffic)


class ClusterGateway:
    """Serve a coordinator over unix or TCP sockets; one instance per cluster.

    Args:
        coordinator: the (already configured) cluster front door to expose.
        family: ``"unix"`` (default — binds ``socket_path``) or ``"inet"``
            (binds ``host`` on an ephemeral port).
        socket_path: listening path for the unix family.
        host: listening host for the inet family.
        max_inflight: global bound on concurrently served requests.
        max_batch: close a coalescing window once this many submits are in it.
        max_delay_ms: longest a window stays open waiting for company when
            more than one connection is active; a lone connection's window
            closes the moment its queue runs dry (zero added latency for
            sequential traffic).
        graph_cache_size: LRU capacity of the fingerprint-negotiation cache
            (distinct graphs resolvable without a payload); evicting an entry
            costs the next fingerprint-only submit one ``NeedGraphReply``
            round trip.
        metrics: registry for the ``repro_net_*{role="gateway"}`` series
            (default: the coordinator's registry).

    The constructor blocks until the listener is bound; :attr:`address` then
    holds the actual address (``("unix", path)`` or ``("inet", host, port)``).
    ``close()`` stops the loop and thread (idempotent); the coordinator itself
    is *not* closed — the caller owns it.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        family: str = "unix",
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        max_inflight: int = 64,
        max_batch: int = 16,
        max_delay_ms: float = 2.0,
        graph_cache_size: int = 128,
        metrics=None,
    ) -> None:
        if family not in net_address.FAMILIES:
            raise ValueError(f"unknown family {family!r}; use one of {net_address.FAMILIES}")
        if family == "unix" and not socket_path:
            raise ValueError("a unix gateway needs socket_path")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if graph_cache_size < 1:
            raise ValueError("graph_cache_size must be at least 1")
        self.coordinator = coordinator
        self._family = family
        self._socket_path = socket_path
        self._host = host
        self._max_inflight = max_inflight
        self._max_batch = max_batch
        self._max_delay = max(0.0, max_delay_ms) / 1000.0
        self._graph_cache_size = graph_cache_size
        self._instruments = NetInstruments(
            metrics if metrics is not None else coordinator.metrics, role="gateway"
        )
        self.address: tuple = ()
        # fingerprint -> reconstructed graph, LRU by last use.  One cache
        # serves two duties: per-content graph-object memoization (the
        # coordinator's per-object fingerprint cache needs stable objects)
        # and fingerprint negotiation (a hit is a payload the client may
        # elide).  A coordinator membership change clears it wholesale.
        self._graph_cache: "OrderedDict[str, nx.Graph]" = OrderedDict()
        self._membership_seen = coordinator.membership_version
        self._active_connections = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._closed = False
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, name="repro-gateway", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        if not self.address:
            raise TimeoutError("gateway did not bind in time")

    # -- the serving loop ------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # noqa: BLE001 - surfaced to the constructor
            self._startup_error = error
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # All submits flow through one queue into one single-writer admission
        # loop: placement and admission order is then a pure function of
        # queue (= frame) arrival order, exactly like call order on the
        # in-process coordinator.  The mutex serialises the admission loop
        # against dispatch drains — the only two coordinator writers.
        self._admit_queue: asyncio.Queue[_Ticket] = asyncio.Queue()
        self._admit_mutex = asyncio.Lock()
        self._inflight = asyncio.Semaphore(self._max_inflight)
        admitter = asyncio.create_task(self._admission_loop())
        if self._family == "unix":
            server = await asyncio.start_unix_server(self._handle, path=self._socket_path)
            self.address = ("unix", self._socket_path)
        else:
            server = await asyncio.start_server(self._handle, host=self._host, port=0)
            self.address = ("inet", self._host, server.sockets[0].getsockname()[1])
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            admitter.cancel()
            try:
                await admitter
            except asyncio.CancelledError:
                pass

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._instruments.connection_opened()
        self._active_connections += 1
        conn = _Connection()
        try:
            while True:
                message = await read_frame(reader, self._instruments)
                if message is None:
                    break
                async with self._inflight:
                    try:
                        done = await self._answer(message, writer, conn)
                    except Exception as error:  # noqa: BLE001 - reported to the peer
                        await self._send(
                            writer,
                            ErrorReply(
                                code="gateway-error",
                                message=f"{type(error).__name__}: {error}",
                            ),
                            conn,
                        )
                        done = False
                if done:
                    break
        finally:
            self._active_connections -= 1
            self._instruments.connection_closed()
            writer.close()
            # CancelledError included: loop shutdown cancels handler tasks
            # mid-wait, and an unhandled cancellation here is just log noise.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, message: WireMessage, conn: _Connection
    ) -> None:
        await write_frame(writer, message, codec=conn.codec, instruments=self._instruments)

    async def _answer(
        self, message: WireMessage, writer: asyncio.StreamWriter, conn: _Connection
    ) -> bool:
        """Serve one request; returns True when the connection should close."""
        if isinstance(message, SubmitRequest):
            await self._send(writer, await self._submit(message), conn)
        elif isinstance(message, DispatchRequest):
            await self._dispatch(message, writer, conn)
        elif isinstance(message, StatsRequest):
            await self._send(writer, self._stats(), conn)
        elif isinstance(message, Hello):
            conn.codec = negotiate_codec(message.codecs)
            await self._send(
                writer,
                HelloReply(
                    codec=codec_name(conn.codec),
                    features=GATEWAY_FEATURES,
                ),
                conn,
            )
        elif isinstance(message, Ping):
            await self._send(writer, Pong(), conn)
        elif isinstance(message, Shutdown):
            await self._send(writer, ShutdownAck(), conn)
            if self._stop is not None:
                self._stop.set()
            return True
        else:
            await self._send(
                writer,
                ErrorReply(code="unsupported", message=f"gateway cannot serve {message.type!r}"),
                conn,
            )
        return False

    # -- the admission loop ----------------------------------------------------

    async def _admission_loop(self) -> None:
        """Single writer: coalesce queued submits and admit them in one pass."""
        while True:
            batch = [await self._admit_queue.get()]
            window_closes = self._loop.time() + self._max_delay
            while len(batch) < self._max_batch:
                try:
                    batch.append(self._admit_queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                # Queue dry: wait for company only when another connection
                # could plausibly provide it within the window — a lone
                # sequential client sees zero added latency, so the local
                # and tcp transports stay latency- and order-equivalent.
                remaining = window_closes - self._loop.time()
                if self._active_connections <= 1 or remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._admit_queue.get(), timeout=remaining)
                    )
                except asyncio.TimeoutError:
                    break
            async with self._admit_mutex:
                outcomes = await asyncio.to_thread(
                    self.coordinator.submit_many, [ticket.kwargs for ticket in batch]
                )
            if len(batch) > 1:
                self._instruments.coalesced_batch(len(batch))
            for ticket, outcome in zip(batch, outcomes):
                if not ticket.future.done():  # the submitter may have gone away
                    ticket.future.set_result(outcome)

    # -- request handlers ------------------------------------------------------

    def _graph_for(self, wire_graph: WireGraph) -> nx.Graph:
        """Reconstruct (and LRU-memoize) an uploaded graph by fingerprint.

        Clients replay the same graphs query after query; caching on the
        canonical fingerprint keeps one graph *object* per distinct graph, so
        the coordinator's per-object fingerprint memoization works exactly as
        it does in process — and the same entry answers the next
        fingerprint-only submit without a payload.
        """
        key = wire_graph.fingerprint()
        graph = self._graph_cache.get(key)
        if graph is None:
            graph = wire_graph.to_graph()
            self._graph_cache[key] = graph
            while len(self._graph_cache) > self._graph_cache_size:
                self._graph_cache.popitem(last=False)
        self._graph_cache.move_to_end(key)
        return graph

    def _check_membership(self) -> None:
        """Drop every negotiated fingerprint when cluster membership changed.

        A membership change rebinds placements; entries negotiated against
        the old ring must not silently satisfy post-change submits, so the
        client re-uploads (one ``NeedGraphReply`` round trip per live graph).
        """
        version = self.coordinator.membership_version
        if version != self._membership_seen:
            self._membership_seen = version
            self._graph_cache.clear()

    async def _submit(self, request: SubmitRequest) -> WireMessage:
        if request.deadline is not None and request.deadline <= 0:
            self._instruments.deadline_expired("submit")
            return ErrorReply(code="deadline", message="submit deadline expired")
        self._check_membership()
        if request.graph is not None:
            graph = self._graph_for(request.graph)
            self._instruments.graph_uploaded()
        elif request.graph_fingerprint:
            graph = self._graph_cache.get(request.graph_fingerprint)
            if graph is None:
                # Never seen (or evicted, or invalidated): one round trip
                # buys the full payload; the client retries with it.
                self._instruments.need_graph()
                return NeedGraphReply(fingerprints=(request.graph_fingerprint,))
            self._graph_cache.move_to_end(request.graph_fingerprint)
            self._instruments.payload_deduped()
        else:
            return ErrorReply(
                code="bad-request", message="submit carries neither graph nor fingerprint"
            )
        future: asyncio.Future = self._loop.create_future()
        await self._admit_queue.put(
            _Ticket(
                kwargs=dict(
                    graph=graph,
                    requests=tuple(entry.to_request() for entry in request.requests),
                    load=request.load,
                    backend=request.backend,
                    backend_params=request.backend_params,
                    workload=request.workload,
                    idempotency_key=request.idempotency_key,
                ),
                future=future,
            )
        )
        decision = await future
        if isinstance(decision, Exception):
            raise decision
        return SubmitReply(
            shard_id=decision.shard_id,
            accepted=decision.accepted,
            shed=len(decision.shed),
            duplicate=decision.duplicate,
        )

    async def _dispatch(
        self, request: DispatchRequest, writer: asyncio.StreamWriter, conn: _Connection
    ) -> None:
        started = time.perf_counter()
        expires_at = started + request.deadline if request.deadline is not None else None
        # The mutex covers only the drain: queued submits keep coalescing
        # while shards grind through the drained slices below.
        async with self._admit_mutex:
            busy = await asyncio.to_thread(self.coordinator.drain_slices)
        expired: list[str] = []
        running: set[asyncio.Task] = set()
        for shard_id in sorted(busy):
            if expires_at is not None and time.perf_counter() >= expires_at:
                # Not started in time: the slice goes back to the head of its
                # queue (it was admitted once — it is never lost) and the
                # shard is reported as expired.
                self.coordinator.admission.requeue(shard_id, busy[shard_id])
                self._instruments.deadline_expired("dispatch")
                expired.append(shard_id)
                continue

            async def serve(shard_id: str = shard_id, items=busy[shard_id]):
                report = await asyncio.to_thread(
                    self.coordinator.process_shard, shard_id, items
                )
                return shard_id, report

            running.add(asyncio.create_task(serve()))
        shard_reports = {}
        while running:
            done, running = await asyncio.wait(running, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                shard_id, report = task.result()
                shard_reports[shard_id] = report
                await self._send(
                    writer,
                    DispatchShardReply(
                        shard_id=shard_id, report=WireBatchReport.from_report(report)
                    ),
                    conn,
                )
        merged = self.coordinator.merge_reports(
            shard_reports, dispatch_seconds=time.perf_counter() - started
        )
        await self._send(
            writer,
            DispatchDoneReply(
                dispatch_seconds=merged.dispatch_seconds,
                admission=WireAdmissionStats.from_stats(merged.admission),
                expired=tuple(expired),
            ),
            conn,
        )

    def _stats(self) -> StatsReply:
        return StatsReply(
            admission=WireAdmissionStats.from_stats(self.coordinator.admission_totals()),
            queue_depths=dict(self.coordinator.queue_depths()),
            shard_count=self.coordinator.shard_count,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop the listener and join the loop thread; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=10)
        if self._family == "unix" and self._socket_path:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
