"""Round-cost accounting: the CostLedger and the paper's cost formulas.

The paper's complexity statements are all CONGEST round counts.  Instead of
simulating every message of the recursive routing machinery (which would make
even modest experiments intractable in Python — see DESIGN.md substitution 3),
the routing engine performs real token movements over the real embedded paths
and charges rounds through a :class:`CostLedger`, using the paper's own
accounting rules:

* Fact 2.2 — one token along every path of a precomputed collection of quality
  ``Q`` costs ``Q^2`` rounds (``L`` tokens per path: ``L * Q^2``);
* broadcast / convergecast on a virtual graph costs its diameter times the
  flattened quality (squared for the deterministic schedule);
* simulating a depth-``d`` sorting network with load ``L`` and exchange routes
  of quality ``Q`` costs ``O(L * d) * Q^2`` rounds (Theorem 5.6 / Lemma 6.5);
* each shuffler iteration costs a portal-routing sort plus the matching send
  (Lemma 6.7).

Every phase is named so that preprocessing and query rounds can be reported
separately, which is exactly the tradeoff Theorem 1.1 is about.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CostLedger", "sorting_network_depth", "sort_round_cost", "send_round_cost"]


def sorting_network_depth(size: int) -> int:
    """Depth of the Batcher odd-even network on ``size`` wires: ``O(log^2 size)``."""
    if size <= 1:
        return 1
    bits = math.ceil(math.log2(size))
    return max(1, bits * (bits + 1) // 2)


def sort_round_cost(component_size: int, load: int, exchange_quality: int) -> int:
    """Round cost of one expander sort over a component (Theorem 5.6 accounting)."""
    depth = sorting_network_depth(component_size)
    quality = max(1, exchange_quality)
    return max(1, 2 * max(1, load) * depth) * quality * quality


def send_round_cost(tokens_per_path: int, quality: int) -> int:
    """Round cost of sending tokens along precomputed paths (Fact 2.2)."""
    quality = max(1, quality)
    return max(1, tokens_per_path) * quality * quality


@dataclass
class CostLedger:
    """Accumulates CONGEST rounds per named phase."""

    phases: dict[str, int] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list)

    def charge(self, phase: str, rounds: int) -> None:
        """Add ``rounds`` to ``phase`` (and to the enclosing phase prefix, if any)."""
        if rounds < 0:
            raise ValueError("cannot charge a negative number of rounds")
        label = self._qualified(phase)
        self.phases[label] = self.phases.get(label, 0) + int(rounds)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope subsequent charges under ``name`` (phases nest with '/')."""
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    def _qualified(self, phase: str) -> str:
        if not self._stack:
            return phase
        return "/".join(self._stack + [phase]) if phase else "/".join(self._stack)

    # -- reporting -----------------------------------------------------------

    def total(self, prefix: str = "") -> int:
        """Total rounds, optionally restricted to phases starting with ``prefix``."""
        return sum(
            rounds for label, rounds in self.phases.items() if label.startswith(prefix)
        )

    def merge(self, other: "CostLedger", prefix: str = "") -> None:
        """Fold another ledger's phases into this one (optionally prefixed)."""
        for label, rounds in other.phases.items():
            key = f"{prefix}{label}" if prefix else label
            self.phases[key] = self.phases.get(key, 0) + rounds

    def breakdown(self) -> dict[str, int]:
        """A copy of the per-phase totals, sorted by phase name."""
        return dict(sorted(self.phases.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostLedger(total={self.total()}, phases={len(self.phases)})"
