"""Formal task definitions (Definitions 4.1, 4.2, 4.3 and Task 1').

These dataclasses describe instances of the routing tasks the paper's
recursion is phrased in, together with validators for their preconditions.
They are used by the router to assert that every recursive call it makes is a
legal instance, and by the tests to generate/validate instances directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.tokens import Token

__all__ = ["Task1Instance", "Task2Instance", "Task3Instance"]


@dataclass
class Task1Instance:
    """Task 1 (Definition 4.1): route tokens to destination vertices.

    Preconditions: every vertex holds at most ``load`` tokens and is the
    destination of at most ``load`` tokens.
    """

    vertices: list
    tokens: list[Token]
    load: int

    def validate(self) -> list[str]:
        """Return a list of violated preconditions (empty = valid instance)."""
        problems: list[str] = []
        vertex_set = set(self.vertices)
        source_counts = Counter(token.current_vertex for token in self.tokens)
        destination_counts = Counter(token.destination for token in self.tokens)
        if source_counts and max(source_counts.values()) > self.load:
            problems.append(
                f"a vertex holds {max(source_counts.values())} tokens > load {self.load}"
            )
        if destination_counts and max(destination_counts.values()) > self.load:
            problems.append(
                f"a vertex is the destination of {max(destination_counts.values())} tokens"
                f" > load {self.load}"
            )
        for token in self.tokens:
            if token.destination not in vertex_set:
                problems.append(f"token {token.token_id} destined outside the graph")
                break
        return problems


@dataclass
class Task2Instance:
    """Task 2 (Definition 4.2): route tokens to best vertices identified by rank.

    ``best_count`` is ``|Xbest|`` for the hierarchy node; every token carries a
    ``destination_marker`` in ``[0, best_count)`` and at most
    ``load * rho_best`` tokens share a marker.
    """

    node_vertices: list
    best_count: int
    tokens: list[Token]
    load: int
    rho_best: float

    def validate(self) -> list[str]:
        problems: list[str] = []
        per_vertex = Counter(token.current_vertex for token in self.tokens)
        if per_vertex and max(per_vertex.values()) > self.load:
            problems.append(
                f"a vertex holds {max(per_vertex.values())} tokens > load {self.load}"
            )
        marker_counts = Counter(token.destination_marker for token in self.tokens)
        limit = self.load * max(self.rho_best, 1.0)
        for marker, count in marker_counts.items():
            if marker is None or not (0 <= marker < self.best_count):
                problems.append(f"marker {marker} out of range [0, {self.best_count})")
                break
            if count > limit + 1e-9:
                problems.append(
                    f"marker {marker} carried by {count} tokens > L*rho_best = {limit}"
                )
                break
        return problems


@dataclass
class Task3Instance:
    """Task 3 (Definition 4.3): deliver tokens to their marked parts.

    ``part_sizes`` lists ``|X*_j|``; every token has a ``part_mark`` and at most
    ``load * |X*_j|`` tokens share part mark ``j``.  The task is done when every
    token sits in its marked part and no vertex holds more than ``2 * load``.
    """

    part_sizes: list[int]
    tokens: list[Token]
    load: int

    def validate(self) -> list[str]:
        problems: list[str] = []
        per_vertex = Counter(token.current_vertex for token in self.tokens)
        if per_vertex and max(per_vertex.values()) > self.load:
            problems.append(
                f"a vertex holds {max(per_vertex.values())} tokens > load {self.load}"
            )
        mark_counts = Counter(token.part_mark for token in self.tokens)
        for mark, count in mark_counts.items():
            if mark is None or not (0 <= mark < len(self.part_sizes)):
                problems.append(f"part mark {mark} out of range")
                break
            if count > self.load * self.part_sizes[mark]:
                problems.append(
                    f"part mark {mark} carried by {count} tokens"
                    f" > L*|X*_j| = {self.load * self.part_sizes[mark]}"
                )
                break
        return problems

    def is_final_configuration(self, part_of: dict) -> bool:
        """Definition 6.1's final configuration: every token sits in its marked part."""
        return all(part_of.get(token.current_vertex) == token.part_mark for token in self.tokens)
