"""The deterministic expander router (Theorem 1.1, Corollary 1.2).

:class:`ExpanderRouter` is the library's front door.  It separates the two
phases the paper's tradeoff is about:

* :meth:`ExpanderRouter.preprocess` builds the hierarchical decomposition
  (Theorem 3.2), the best-vertex delegation (Appendix D), and a shuffler for
  every internal node (Lemma 5.5).  Cost: ``n^{O(eps)} + poly(psi^-1) *
  (log n)^{O(1/eps)}`` rounds, charged to the preprocessing ledger.
* :meth:`ExpanderRouter.route` answers one routing query (Task 1) re-using the
  preprocessed structures.  Cost: ``L * poly(psi^-1) * (log n)^{O(1/eps)}``
  rounds, charged to a fresh per-query ledger.

The recursion follows Sections 4 and 6 exactly: Task 1 is reduced to Task 2 by
delegating destinations to best vertices; Task 2 on an internal node rewrites
destination markers into part marks, solves Task 3 through the node's shuffler
(dispersion + meet-in-the-middle merge), walks tokens off the bad vertices via
the precomputed part matchings, and recurses into the children; leaf
components are finished with the precomputed sorting network (Lemma 6.5).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import ClassVar, Hashable, Sequence

import networkx as nx

from repro.core.cost import CostLedger, send_round_cost, sort_round_cost
from repro.core.leaf import route_in_leaf
from repro.core.merge import solve_task3, solve_task3_many
from repro.core.tasks import Task1Instance
from repro.core.tokens import RoutingRequest, Token, tokens_from_requests
from repro.cutmatching.game import CutMatchingGame
from repro.graphs.conductance import estimate_conductance
from repro.graphs.validation import max_degree, require_connected
from repro.hierarchy.best import BestVertexIndex, build_best_index, locate_best_rank
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy
from repro.hierarchy.node import HierarchicalDecomposition, HierarchyNode

__all__ = ["PreprocessArtifact", "PreprocessSummary", "RoutingOutcome", "ExpanderRouter"]


@dataclass
class PreprocessSummary:
    """What preprocessing built and what it cost.

    Attributes:
        rounds: total preprocessing rounds (Theorem 1.1's first term).
        hierarchy_levels: number of levels of the decomposition.
        node_count: number of good nodes.
        shuffler_count: number of shufflers built.
        best_vertex_count: ``|Vbest|``.
        rho_best: the delegation factor (Definition 3.7).
        breakdown: per-phase round counts.
    """

    rounds: int
    hierarchy_levels: int
    node_count: int
    shuffler_count: int
    best_vertex_count: int
    rho_best: float
    breakdown: dict[str, int] = field(default_factory=dict)


@dataclass
class RoutingOutcome:
    """Result of answering one routing query.

    Attributes:
        delivered: number of tokens that reached their requested destination.
        total_tokens: number of tokens routed.
        query_rounds: CONGEST rounds charged to this query (Theorem 1.1's
            second term; excludes preprocessing).
        preprocessing_rounds: rounds of the preprocessing phase in effect.
        load: the load parameter ``L`` of the instance.
        max_intermediate_part_load: diagnostic from the dispersion phases.
        dispersion_window_fraction: fraction of (part, mark) cells inside the
            Definition 6.1 window, averaged over all dispersions of the query.
        fallback_assignments: tokens placed by the merge fallback instead of a
            dummy pairing (0 in the common case).
        breakdown: per-phase round counts of the query ledger.
        tokens: the routed tokens (with their traces), for inspection.
    """

    delivered: int
    total_tokens: int
    query_rounds: int
    preprocessing_rounds: int
    load: int
    max_intermediate_part_load: int = 0
    dispersion_window_fraction: float = 1.0
    fallback_assignments: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    tokens: list[Token] = field(default_factory=list)

    @property
    def all_delivered(self) -> bool:
        return self.delivered == self.total_tokens

    @property
    def total_rounds_including_preprocessing(self) -> int:
        """Corollary 1.2's single-instance cost: preprocessing + one query."""
        return self.query_rounds + self.preprocessing_rounds


@dataclass
class PreprocessArtifact:
    """Everything :meth:`ExpanderRouter.preprocess` builds, as one picklable value.

    The paper's tradeoff only pays off when the expensive preprocessing is
    reused across many queries.  The artifact is the unit of that reuse: it can
    be pickled to disk, shipped between processes, cached by fingerprint
    (:mod:`repro.service`), and re-attached to a fresh router with
    :meth:`ExpanderRouter.from_artifact` — which skips preprocessing entirely.

    Attributes:
        decomposition: the hierarchical decomposition (Theorem 3.2), including
            every node's shuffler (Lemma 5.5).
        best_index: the best-vertex delegation structure (Appendix D).
        summary: the :class:`PreprocessSummary` reported when it was built.
        preprocess_phases: the preprocessing ledger's per-phase round counts,
            so a router restored from the artifact reports the same
            ``preprocessing_rounds`` as the one that built it.
        epsilon: tradeoff parameter the hierarchy was built with.
        psi: sparsity parameter the shufflers were built with.
        hierarchy_params: the full :class:`HierarchyParameters` used.
        fingerprint: canonical graph+parameter hash (set by the service layer;
            ``None`` for artifacts exported outside the cache).
        format_version: bumped on incompatible layout changes so stale on-disk
            pickles can be rejected instead of mis-read.
    """

    FORMAT_VERSION: ClassVar[int] = 1

    decomposition: HierarchicalDecomposition
    best_index: BestVertexIndex
    summary: PreprocessSummary
    preprocess_phases: dict[str, int]
    epsilon: float
    psi: float
    hierarchy_params: HierarchyParameters
    fingerprint: str | None = None
    format_version: int = FORMAT_VERSION

    @property
    def preprocessing_rounds(self) -> int:
        """Total preprocessing rounds recorded in the artifact."""
        return sum(self.preprocess_phases.values())

    def vertex_set(self) -> frozenset:
        """The vertex set the artifact was preprocessed for."""
        return frozenset(self.decomposition.graph.nodes())


class ExpanderRouter:
    """Deterministic expander routing with a preprocessing/query tradeoff."""

    def __init__(
        self,
        graph: nx.Graph,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
        max_constant_degree: int = 64,
    ) -> None:
        """Create a router for a (roughly constant-degree) expander ``graph``.

        Args:
            graph: connected expander with hashable, orderable vertex ids.
            epsilon: the tradeoff parameter of Theorem 1.1 (``k = n^epsilon``).
            psi: sparsity parameter; estimated from the graph when omitted.
            hierarchy_params: full control over the decomposition parameters.
            max_constant_degree: guard — graphs with larger maximum degree
                should go through :class:`repro.core.general.GeneralGraphRouter`
                (the expander-split reduction of Appendix E).
        """
        require_connected(graph)
        worst_degree = max_degree(graph)
        if worst_degree > max_constant_degree:
            raise ValueError(
                f"maximum degree {worst_degree} exceeds {max_constant_degree}; "
                "use repro.core.general.GeneralGraphRouter (expander split, Appendix E)"
            )
        self.graph = graph
        self.epsilon = epsilon
        if psi is None:
            estimated = estimate_conductance(graph, exact_threshold=10)
            psi = max(min(estimated / 2.0, 0.5), 0.01)
        self.psi = psi
        if hierarchy_params is None:
            hierarchy_params = HierarchyParameters(epsilon=epsilon, psi=min(psi, 0.25))
        self.hierarchy_params = hierarchy_params

        self.decomposition: HierarchicalDecomposition | None = None
        self.best_index: BestVertexIndex | None = None
        self.preprocess_ledger = CostLedger()
        self.preprocessed = False
        self.artifact: PreprocessArtifact | None = None

    # -- preprocessing -------------------------------------------------------

    def preprocess(self) -> PreprocessSummary:
        """Build the hierarchy, the delegation index, and every shuffler (Theorem 1.1)."""
        ledger = self.preprocess_ledger
        with ledger.phase("preprocess"):
            decomposition = build_hierarchy(self.graph, params=self.hierarchy_params)
            ledger.charge("hierarchy", decomposition.build_rounds)
            best_index = build_best_index(decomposition)

            # Nodes at the same level live on disjoint vertex sets, so their
            # preprocessing steps run in parallel in CONGEST: within a level we
            # charge the maximum node cost, across levels we sum.
            nodes_by_level: dict[int, list[HierarchyNode]] = {}
            for node in decomposition.all_nodes():
                nodes_by_level.setdefault(node.level, []).append(node)

            # Appendix D: computing |Xbest| per node plus propagating it costs a
            # bottom-up/top-down sweep of every virtual graph.
            sweep_rounds = sum(
                max(
                    node.virtual_diameter() * max(1, node.flatten_quality())
                    for node in level_nodes
                )
                for level_nodes in nodes_by_level.values()
            )
            ledger.charge("best-index", sweep_rounds)

            shuffler_count = 0
            for level in sorted(nodes_by_level):
                level_rounds = 0
                for node in nodes_by_level[level]:
                    if node.is_leaf or len(node.parts) <= 1:
                        continue
                    parts = [sorted(part.vertices) for part in node.parts]
                    game = CutMatchingGame(
                        node.virtual_graph, parts, psi=self.hierarchy_params.psi
                    )
                    outcome = game.play()
                    if outcome.shuffler is None:
                        raise RuntimeError(
                            "cut-matching game reported a sparse cut during preprocessing; "
                            "the input graph does not have the expected expansion"
                        )
                    node.shuffler = outcome.shuffler
                    level_rounds = max(level_rounds, outcome.rounds)
                    shuffler_count += 1
                if level_rounds:
                    ledger.charge("shuffler", level_rounds)

            # Leaf components gather their whole topology during preprocessing
            # (Lemma 6.5): |X|^2 words through the flattened virtual graph.
            leaf_rounds = 0
            for node in decomposition.leaves():
                leaf_rounds = max(
                    leaf_rounds, node.size * node.size * max(1, node.flatten_quality())
                )
            ledger.charge("leaf-topology", leaf_rounds)

            # All-to-best routes (Appendix D): one constant-load Task 2 style
            # pass per level, reusing the structures just built.
            delegation_rounds = sum(
                max(
                    sort_round_cost(node.size, 1, node.flatten_quality())
                    for node in level_nodes
                )
                for level_nodes in nodes_by_level.values()
            )
            ledger.charge("all-to-best-routes", delegation_rounds)

        self.decomposition = decomposition
        self.best_index = best_index
        self.preprocessed = True
        summary = PreprocessSummary(
            rounds=ledger.total("preprocess"),
            hierarchy_levels=decomposition.levels(),
            node_count=len(decomposition.all_nodes()),
            shuffler_count=shuffler_count,
            best_vertex_count=best_index.size,
            rho_best=decomposition.rho_best(),
            breakdown=ledger.breakdown(),
        )
        self.artifact = PreprocessArtifact(
            decomposition=decomposition,
            best_index=best_index,
            summary=summary,
            preprocess_phases=ledger.breakdown(),
            epsilon=self.epsilon,
            psi=self.psi,
            hierarchy_params=self.hierarchy_params,
        )
        return summary

    def export_artifact(self, fingerprint: str | None = None) -> PreprocessArtifact:
        """The preprocessed state as a picklable artifact (preprocessing first if needed).

        Args:
            fingerprint: optional canonical graph hash to stamp onto the
                artifact (the service layer keys its cache with it).
        """
        if not self.preprocessed:
            self.preprocess()
        assert self.artifact is not None
        if fingerprint is not None:
            self.artifact.fingerprint = fingerprint
        return self.artifact

    @classmethod
    def from_artifact(cls, graph: nx.Graph, artifact: PreprocessArtifact) -> "ExpanderRouter":
        """A query-ready router that reuses ``artifact`` instead of preprocessing.

        This is the lightweight query path: no connectivity check, no
        conductance estimation, no hierarchy build — the router is ready to
        :meth:`route` immediately, and reports the artifact's preprocessing
        rounds in every outcome.  The caller is responsible for ``graph``
        actually being the graph the artifact was preprocessed for (the
        service layer guarantees this via fingerprinting); only the vertex set
        is cross-checked here because that check is cheap.

        Raises:
            ValueError: if the artifact has an incompatible format version or
                was built for a different vertex set.
        """
        if artifact.format_version != PreprocessArtifact.FORMAT_VERSION:
            raise ValueError(
                f"artifact format version {artifact.format_version} is not supported "
                f"(expected {PreprocessArtifact.FORMAT_VERSION})"
            )
        if frozenset(graph.nodes()) != artifact.vertex_set():
            raise ValueError("artifact was preprocessed for a different vertex set")
        router = cls.__new__(cls)
        router.graph = graph
        router.epsilon = artifact.epsilon
        router.psi = artifact.psi
        router.hierarchy_params = artifact.hierarchy_params
        router.decomposition = artifact.decomposition
        router.best_index = artifact.best_index
        router.preprocess_ledger = CostLedger(phases=dict(artifact.preprocess_phases))
        router.preprocessed = True
        router.artifact = artifact
        return router

    # -- queries ---------------------------------------------------------------

    def route(
        self,
        requests: Sequence[RoutingRequest],
        load: int | None = None,
    ) -> RoutingOutcome:
        """Answer one routing query (Task 1) using the preprocessed structures.

        Args:
            requests: the tokens to deliver; every vertex may appear as the
                source of at most ``L`` requests and the destination of at most
                ``L`` requests.
            load: the load parameter ``L``; inferred from the requests when
                omitted (the doubling trick of Appendix E makes this harmless).
        """
        if not self.preprocessed:
            self.preprocess()
        assert self.decomposition is not None and self.best_index is not None

        tokens = tokens_from_requests(requests)
        if load is None:
            source_counts: dict[Hashable, int] = {}
            destination_counts: dict[Hashable, int] = {}
            for token in tokens:
                source_counts[token.source] = source_counts.get(token.source, 0) + 1
                destination_counts[token.destination] = (
                    destination_counts.get(token.destination, 0) + 1
                )
            load = max(
                max(source_counts.values(), default=1),
                max(destination_counts.values(), default=1),
            )
        instance = Task1Instance(
            vertices=sorted(self.graph.nodes()), tokens=tokens, load=load
        )
        problems = instance.validate()
        if problems:
            raise ValueError("invalid Task 1 instance: " + "; ".join(problems))

        ledger = CostLedger()
        stats = _QueryStats()
        with ledger.phase("query"):
            # Task 1 -> Task 1': translate destination IDs to ranks (one
            # expander sort over the root, Lemma D.1).
            root = self.decomposition.root
            ledger.charge(
                "id-translation", sort_round_cost(root.size, load, root.flatten_quality())
            )
            # Task 1' -> Task 2: delegate each destination to a best vertex.
            best_index = self.best_index
            for token in tokens:
                delegate = best_index.delegate_of[token.destination]
                token.destination_marker = best_index.rank_of[delegate]
            self._solve_task2(root, tokens, load, ledger, stats)
            # Final leg (Appendix D): tokens now sit on the delegated best
            # vertices; walk them along the reversed all-to-best routes.
            needs_reversal = [
                token for token in tokens if token.current_vertex != token.destination
            ]
            if needs_reversal:
                per_best: dict[Hashable, int] = {}
                for token in needs_reversal:
                    per_best[token.current_vertex] = per_best.get(token.current_vertex, 0) + 1
                max_per_best = max(per_best.values(), default=1)
                reversal_quality = max(
                    (leaf.flatten_quality() for leaf in self.decomposition.leaves()), default=1
                )
                ledger.charge(
                    "delegation-reversal", send_round_cost(max_per_best, reversal_quality)
                )
                for token in needs_reversal:
                    token.move_to(token.destination, phase="delegation-reversal")

        delivered = sum(1 for token in tokens if token.delivered)
        return RoutingOutcome(
            delivered=delivered,
            total_tokens=len(tokens),
            query_rounds=ledger.total("query"),
            preprocessing_rounds=self.preprocess_ledger.total("preprocess"),
            load=load,
            max_intermediate_part_load=stats.max_part_load,
            dispersion_window_fraction=stats.window_fraction(),
            fallback_assignments=stats.fallbacks,
            breakdown=ledger.breakdown(),
            tokens=tokens,
        )

    def route_many(
        self,
        request_groups: Sequence[Sequence[RoutingRequest]],
        loads: Sequence[int | None] | None = None,
    ) -> list[RoutingOutcome]:
        """Answer several routing queries through one fused recursion.

        The fused twin of calling :meth:`route` once per group: all queries
        walk the hierarchy together, and at every internal node their Task 3
        dispersions run as one batched kernel call
        (:func:`~repro.core.merge.solve_task3_many`) instead of a per-query
        Python loop.  Every outcome — deliveries, traces, per-phase round
        breakdowns, diagnostics — is identical to the sequential result;
        only the wall-clock cost is amortized.  Under the reference kernel
        (or for a single group) this simply loops over :meth:`route`.
        """
        from repro.kernels import use_numpy

        if loads is None:
            loads = [None] * len(request_groups)
        if len(loads) != len(request_groups):
            raise ValueError("loads must match request_groups in length")
        if not use_numpy() or len(request_groups) <= 1:
            return [
                self.route(requests, load)
                for requests, load in zip(request_groups, loads)
            ]
        if not self.preprocessed:
            self.preprocess()
        assert self.decomposition is not None and self.best_index is not None

        # Per-query setup, exactly as in route().
        token_groups: list[list[Token]] = []
        resolved_loads: list[int] = []
        for requests, load in zip(request_groups, loads):
            tokens = tokens_from_requests(requests)
            if load is None:
                source_counts: dict[Hashable, int] = {}
                destination_counts: dict[Hashable, int] = {}
                for token in tokens:
                    source_counts[token.source] = source_counts.get(token.source, 0) + 1
                    destination_counts[token.destination] = (
                        destination_counts.get(token.destination, 0) + 1
                    )
                load = max(
                    max(source_counts.values(), default=1),
                    max(destination_counts.values(), default=1),
                )
            instance = Task1Instance(
                vertices=sorted(self.graph.nodes()), tokens=tokens, load=load
            )
            problems = instance.validate()
            if problems:
                raise ValueError("invalid Task 1 instance: " + "; ".join(problems))
            token_groups.append(tokens)
            resolved_loads.append(load)

        ledgers = [CostLedger() for _ in token_groups]
        stats_list = [_QueryStats() for _ in token_groups]
        root = self.decomposition.root
        best_index = self.best_index
        id_translation_by_load: dict[int, int] = {}
        with ExitStack() as stack:
            for ledger in ledgers:
                stack.enter_context(ledger.phase("query"))
            for index, tokens in enumerate(token_groups):
                load = resolved_loads[index]
                if load not in id_translation_by_load:
                    id_translation_by_load[load] = sort_round_cost(
                        root.size, load, root.flatten_quality()
                    )
                ledgers[index].charge("id-translation", id_translation_by_load[load])
                for token in tokens:
                    delegate = best_index.delegate_of[token.destination]
                    token.destination_marker = best_index.rank_of[delegate]
            self._solve_task2_many(
                root,
                [
                    (index, tokens)
                    for index, tokens in enumerate(token_groups)
                    if tokens
                ],
                resolved_loads,
                ledgers,
                stats_list,
            )
            for index, tokens in enumerate(token_groups):
                needs_reversal = [
                    token for token in tokens if token.current_vertex != token.destination
                ]
                if needs_reversal:
                    per_best: dict[Hashable, int] = {}
                    for token in needs_reversal:
                        per_best[token.current_vertex] = (
                            per_best.get(token.current_vertex, 0) + 1
                        )
                    max_per_best = max(per_best.values(), default=1)
                    reversal_quality = max(
                        (leaf.flatten_quality() for leaf in self.decomposition.leaves()),
                        default=1,
                    )
                    ledgers[index].charge(
                        "delegation-reversal",
                        send_round_cost(max_per_best, reversal_quality),
                    )
                    for token in needs_reversal:
                        token.move_to(token.destination, phase="delegation-reversal")

        preprocessing_rounds = self.preprocess_ledger.total("preprocess")
        return [
            RoutingOutcome(
                delivered=sum(1 for token in tokens if token.delivered),
                total_tokens=len(tokens),
                query_rounds=ledgers[index].total("query"),
                preprocessing_rounds=preprocessing_rounds,
                load=resolved_loads[index],
                max_intermediate_part_load=stats_list[index].max_part_load,
                dispersion_window_fraction=stats_list[index].window_fraction(),
                fallback_assignments=stats_list[index].fallbacks,
                breakdown=ledgers[index].breakdown(),
                tokens=tokens,
            )
            for index, tokens in enumerate(token_groups)
        ]

    # -- the Task 2 recursion ---------------------------------------------------

    def _solve_task2_many(
        self,
        node: HierarchyNode,
        groups: list[tuple[int, list[Token]]],
        loads: Sequence[int],
        ledgers: Sequence[CostLedger],
        stats_list: Sequence["_QueryStats"],
    ) -> None:
        """Fused :meth:`_solve_task2`: every query's tokens walk ``node`` together.

        ``groups`` carries ``(query_index, tokens)`` pairs with non-empty
        token lists; ``loads``/``ledgers``/``stats_list`` are indexed by the
        query index.  Per query, the moves and charges are exactly those of
        the solo recursion — queries never interact (tokens, ledgers, and
        diagnostics are all per-query; the shared node-level caches are
        deterministic pure functions of the node), the batching only stacks
        the Task 3 dispersions into single kernel calls.
        """
        if not groups:
            return
        if node.is_leaf:
            for index, tokens in groups:
                result = route_in_leaf(node, tokens, loads[index], ledgers[index])
                for token in tokens:
                    token.move_to(result.placements[token.token_id], phase="leaf")
            return

        # Rewrite destination markers into (part mark, next-level marker).
        next_marker: dict[int, dict[int, int]] = {}
        for index, tokens in groups:
            markers = next_marker[index] = {}
            for token in tokens:
                marker = token.destination_marker
                if marker is None:
                    raise ValueError(f"token {token.token_id} has no destination marker")
                part_index, remainder = locate_best_rank(node, marker)
                token.part_mark = part_index
                markers[token.token_id] = remainder

        # Task 3, batched: one dispersion kernel call for every query at once.
        task3_results = solve_task3_many(
            node,
            [tokens for _, tokens in groups],
            [loads[index] for index, _ in groups],
            [ledgers[index] for index, _ in groups],
        )
        for (index, tokens), task3 in zip(groups, task3_results):
            stats_list[index].absorb_task3(task3)
            for token in tokens:
                if token.token_id in task3.assignments:
                    token.move_to(
                        task3.assignments[token.token_id], phase=f"task3-L{node.level}"
                    )

        # Property 3.1(3): walk tokens off the bad vertices into the good child.
        matching_quality = max(1, node.part_matching_embedding.quality) * max(
            1, node.flatten_quality()
        )
        for index, tokens in groups:
            moved_off_bad = 0
            for part in node.parts:
                if not part.bad_vertices:
                    continue
                for token in tokens:
                    if (
                        token.part_mark == part.index
                        and token.current_vertex in part.bad_vertices
                    ):
                        mate = part.matching.get(token.current_vertex)
                        if mate is None:
                            mate = min(part.good_vertices)
                        token.move_to(mate, phase=f"bad-to-good-L{node.level}")
                        moved_off_bad += 1
            if moved_off_bad:
                ledgers[index].charge(
                    f"bad-to-good-L{node.level}",
                    send_round_cost(2 * loads[index], matching_quality),
                )

        # Recurse into every part's good child, all queries together.  The
        # children run on disjoint subgraphs (per query, the level costs its
        # slowest child), so per query we charge the max child-ledger total —
        # identical to the solo recursion's accounting.
        tokens_by_part: dict[int, dict[int, list[Token]]] = {}
        for index, tokens in groups:
            by_part = tokens_by_part[index] = {}
            for token in tokens:
                by_part.setdefault(token.part_mark, []).append(token)
        child_costs: dict[int, list[int]] = {index: [] for index, _ in groups}
        child_loads = list(loads)
        for index, _ in groups:
            child_loads[index] = 4 * loads[index]
        for part in node.parts:
            child = part.child
            if child is None:
                continue
            child_groups: list[tuple[int, list[Token]]] = []
            child_ledgers: dict[int, CostLedger] = {}
            for index, _ in groups:
                child_tokens = tokens_by_part[index].get(part.index, [])
                if not child_tokens:
                    continue
                for token in child_tokens:
                    token.destination_marker = next_marker[index][token.token_id]
                child_groups.append((index, child_tokens))
                child_ledgers[index] = CostLedger()
            if not child_groups:
                continue
            ledger_vector = [
                child_ledgers.get(index, ledgers[index]) for index in range(len(ledgers))
            ]
            self._solve_task2_many(child, child_groups, child_loads, ledger_vector, stats_list)
            for index, _ in child_groups:
                child_costs[index].append(child_ledgers[index].total())
        for index, _ in groups:
            if child_costs[index]:
                ledgers[index].charge(f"children-L{node.level + 1}", max(child_costs[index]))

    def _solve_task2(
        self,
        node: HierarchyNode,
        tokens: Sequence[Token],
        load: int,
        ledger: CostLedger,
        stats: "_QueryStats",
    ) -> None:
        """Deliver each token to the node's marker-th best vertex (Definition 4.2)."""
        if not tokens:
            return
        if node.is_leaf:
            result = route_in_leaf(node, tokens, load, ledger)
            for token in tokens:
                token.move_to(result.placements[token.token_id], phase="leaf")
            return

        # Rewrite destination markers into (part mark, next-level marker).
        next_marker: dict[int, int] = {}
        for token in tokens:
            marker = token.destination_marker
            if marker is None:
                raise ValueError(f"token {token.token_id} has no destination marker")
            part_index, remainder = locate_best_rank(node, marker)
            token.part_mark = part_index
            next_marker[token.token_id] = remainder

        # Task 3: deliver every token to a vertex of its marked part.
        task3 = solve_task3(node, tokens, load, ledger)
        stats.absorb_task3(task3)
        for token in tokens:
            if token.token_id in task3.assignments:
                token.move_to(task3.assignments[token.token_id], phase=f"task3-L{node.level}")

        # Property 3.1(3): walk tokens off the bad vertices into the good child.
        matching_quality = max(1, node.part_matching_embedding.quality) * max(
            1, node.flatten_quality()
        )
        moved_off_bad = 0
        for part in node.parts:
            if not part.bad_vertices:
                continue
            for token in tokens:
                if token.part_mark == part.index and token.current_vertex in part.bad_vertices:
                    mate = part.matching.get(token.current_vertex)
                    if mate is None:
                        mate = min(part.good_vertices)
                    token.move_to(mate, phase=f"bad-to-good-L{node.level}")
                    moved_off_bad += 1
        if moved_off_bad:
            ledger.charge(
                f"bad-to-good-L{node.level}",
                send_round_cost(2 * load, matching_quality),
            )

        # Recurse into every part's good child with the rewritten markers.
        # Group before recursing: the recursive calls rewrite part marks for
        # their own level, so re-filtering inside the loop would double-route.
        # The children's instances run on disjoint subgraphs and therefore in
        # parallel in CONGEST; the level costs as much as its slowest child
        # (this is why Theorem 6.8's recurrence has a single T2(6|X|/k, 4L)
        # term), so we charge the maximum child cost, not the sum.
        tokens_by_part: dict[int, list[Token]] = {}
        for token in tokens:
            tokens_by_part.setdefault(token.part_mark, []).append(token)
        child_costs: list[int] = []
        for part in node.parts:
            child = part.child
            if child is None:
                continue
            child_tokens = tokens_by_part.get(part.index, [])
            if not child_tokens:
                continue
            for token in child_tokens:
                token.destination_marker = next_marker[token.token_id]
            child_ledger = CostLedger()
            self._solve_task2(child, child_tokens, 4 * load, child_ledger, stats)
            child_costs.append(child_ledger.total())
        if child_costs:
            ledger.charge(f"children-L{node.level + 1}", max(child_costs))


class _QueryStats:
    """Aggregates diagnostics across the recursion of one query."""

    def __init__(self) -> None:
        self.max_part_load = 0
        self.fallbacks = 0
        self._window_hits = 0
        self._window_cells = 0

    def absorb_task3(self, task3) -> None:
        self.max_part_load = max(
            self.max_part_load, task3.real_stats.max_part_load, task3.dummy_stats.max_part_load
        )
        self.fallbacks += task3.fallback_assignments
        for dispersion in (task3.real_stats, task3.dummy_stats):
            self._window_hits += dispersion.within_window
            self._window_cells += dispersion.total_cells

    def window_fraction(self) -> float:
        if self._window_cells == 0:
            return 1.0
        return self._window_hits / self._window_cells
