"""Leaf-component routing (Lemma 6.5, Section 6.4).

On a leaf component ``X`` the whole topology was gathered during
preprocessing and an AKS-style sorting network ``I_AKS`` over the component's
vertices was fixed (we use the Batcher network, see DESIGN.md).  A query is
answered with three passes over the network (serialization pass, counting
pass, and the final meet-in-the-middle pass pairing query tokens with per
destination dummy tokens), after which each token is walked to the vertex
whose rank equals its destination marker.

Round cost: preprocessing ``poly(psi^-1, k, log^{1/eps} n)`` (charged when the
hierarchy is built); each query ``O(L * log|X|) * Q(I_AKS)^2`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.cost import CostLedger, sort_round_cost
from repro.core.tokens import Token
from repro.hierarchy.node import HierarchyNode

__all__ = ["LeafRoutingResult", "route_in_leaf"]


@dataclass
class LeafRoutingResult:
    """Outcome of routing inside one leaf component.

    Attributes:
        placements: token id -> final vertex (the marker-th best vertex).
        max_vertex_load: largest number of tokens delivered to one vertex.
        rounds: CONGEST rounds charged for the query.
    """

    placements: dict[int, Hashable] = field(default_factory=dict)
    max_vertex_load: int = 0
    rounds: int = 0


def route_in_leaf(
    node: HierarchyNode,
    tokens: Sequence[Token],
    load: int,
    ledger: CostLedger,
) -> LeafRoutingResult:
    """Deliver every token to the vertex whose best-rank equals its marker (Lemma 6.5)."""
    if not node.is_leaf:
        raise ValueError("route_in_leaf called on an internal node")
    best = sorted(node.vertices)
    result = LeafRoutingResult()
    per_vertex: dict[Hashable, int] = {}
    for token in tokens:
        marker = token.destination_marker
        if marker is None or not (0 <= marker < len(best)):
            raise ValueError(
                f"token {token.token_id} carries marker {marker!r},"
                f" outside the leaf's best range [0, {len(best)})"
            )
        vertex = best[marker]
        result.placements[token.token_id] = vertex
        per_vertex[vertex] = per_vertex.get(vertex, 0) + 1
    result.max_vertex_load = max(per_vertex.values(), default=0)

    # Lemma 6.5: three sorting-network passes with maximum load 2L over the
    # precomputed I_AKS whose exchange routes have the leaf's flattened quality.
    quality = max(1, node.flatten_quality())
    result.rounds = 3 * sort_round_cost(len(best), 2 * max(1, load), quality)
    ledger.charge("leaf", result.rounds)
    return result
