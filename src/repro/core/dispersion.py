"""Routing tokens to a dispersed configuration via a shuffler (Sections 6.1-6.2).

The dispersion procedure replays the shuffler's fractional matchings: in
iteration ``q``, for every pair of parts ``(i, j)`` with fractional value
``m_ij`` and every part mark ``l``, it sends ``floor((m_ij / 2) * |T_{i,l}|)``
of the mark-``l`` tokens currently in part ``i`` over to part ``j`` (and
symmetrically), through the matching's embedded portal paths.  Lemma 6.2 shows
the result is a *dispersed configuration* (Definition 6.1): every part ends up
with close to a ``1/t`` share of every mark class.

Token movements here are tracked at part granularity (which part currently
hosts each item); the assignment to concrete vertices inside the final part
happens in the merge step (:mod:`repro.core.merge`), exactly as in the paper
where the within-part placement is handled by expander sorting.

Round accounting per iteration (Lemma 6.7): one portal-routing expander sort
per part (they run in parallel, so we charge the maximum) plus the send along
the shuffler matching paths, ``O(L) * (Q(M_X) * Q(f0_HX))^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.cost import CostLedger, send_round_cost, sort_round_cost
from repro.cutmatching.shuffler import Shuffler
from repro.kernels import use_numpy

__all__ = ["DispersionState", "DispersionStats", "disperse", "disperse_many"]


@dataclass
class DispersionStats:
    """Measurements of one dispersion run, used by experiment E8 and tests.

    Attributes:
        iterations: number of shuffler matchings replayed.
        final_counts: ``(part, mark) -> token count`` at the end.
        mark_totals: total token count per mark.
        within_window: number of ``(part, mark)`` cells inside the
            Definition 6.1 window.
        total_cells: number of ``(part, mark)`` cells checked.
        max_part_load: largest number of tokens co-located in one part at any time.
        rounds: CONGEST rounds charged.
    """

    iterations: int = 0
    final_counts: dict[tuple[int, Any], int] = field(default_factory=dict)
    mark_totals: dict[Any, int] = field(default_factory=dict)
    within_window: int = 0
    total_cells: int = 0
    max_part_load: int = 0
    rounds: int = 0

    @property
    def window_fraction(self) -> float:
        """Fraction of cells satisfying the dispersed-configuration window."""
        if self.total_cells == 0:
            return 1.0
        return self.within_window / self.total_cells


class DispersionState:
    """Per-part, per-mark queues of items being dispersed."""

    def __init__(self, part_count: int) -> None:
        self.part_count = part_count
        self.queues: dict[int, dict[Any, list]] = {i: {} for i in range(part_count)}

    def add(self, part: int, mark: Any, item: Any) -> None:
        self.queues[part].setdefault(mark, []).append(item)

    def count(self, part: int, mark: Any) -> int:
        return len(self.queues[part].get(mark, []))

    def part_load(self, part: int) -> int:
        return sum(len(items) for items in self.queues[part].values())

    def marks(self) -> list:
        seen: set = set()
        for per_mark in self.queues.values():
            seen.update(per_mark.keys())
        return sorted(seen, key=repr)

    def pop_front(self, part: int, mark: Any, amount: int) -> list:
        queue = self.queues[part].get(mark, [])
        taken, remaining = queue[:amount], queue[amount:]
        self.queues[part][mark] = remaining
        return taken

    def push_back(self, part: int, mark: Any, items: Sequence[Any]) -> None:
        if items:
            self.queues[part].setdefault(mark, []).extend(items)

    def items(self, part: int, mark: Any) -> list:
        return list(self.queues[part].get(mark, []))


def disperse(
    state: DispersionState,
    shuffler: Shuffler,
    part_sizes: Sequence[int],
    load: int,
    flatten_quality: int,
    ledger: CostLedger | None = None,
    phase: str = "disperse",
) -> DispersionStats:
    """Replay the shuffler's fractional matchings on ``state`` (Lemma 6.2).

    Args:
        state: the per-part, per-mark queues (mutated in place).
        shuffler: the precomputed shuffler of the owning good node.
        part_sizes: ``|X*_i|`` per part (for the window check and cost model).
        load: the instance's load parameter ``L``.
        flatten_quality: ``Q(f0_HX)`` of the owning node (round accounting).
        ledger: optional ledger to charge rounds to.
        phase: ledger phase name.

    Returns:
        Dispersion statistics including the Definition 6.1 window check.

    Dispatches to the vectorized kernel unless ``REPRO_KERNEL=reference``
    selects the loop implementation below; token movements, statistics, and
    charged rounds are identical either way.
    """
    stats = DispersionStats()
    t = state.part_count
    if t <= 1 or len(shuffler) == 0:
        stats.final_counts = {
            (part, mark): state.count(part, mark)
            for part in range(t)
            for mark in state.marks()
        }
        stats.mark_totals = {
            mark: sum(state.count(part, mark) for part in range(t)) for mark in state.marks()
        }
        return stats
    if use_numpy():
        from repro.kernels.dispersion import disperse_numpy

        return disperse_numpy(state, shuffler, part_sizes, load, flatten_quality, ledger, phase)

    max_part_size = max(part_sizes) if part_sizes else 1
    rounds = 0
    for matching in shuffler.matchings:
        stats.iterations += 1
        marks = state.marks()
        # Snapshot the counts so all sends of this iteration use T^{q-1}.
        snapshot = {
            (part, mark): state.count(part, mark) for part in range(t) for mark in marks
        }
        moved_total = 0
        outgoing: dict[tuple[int, Any], int] = {}
        # Determine amounts first (so symmetric sends both use the snapshot),
        # then perform the moves.  Amounts are rounded with a deterministic
        # largest-remainder rule per (origin part, mark): plain flooring
        # (Lemma 6.2's analysis) systematically under-moves when part sizes
        # are small relative to t, which only matters at experiment scale —
        # largest-remainder rounding stays within the lemma's +-1-per-pair
        # error while removing the systematic bias.
        desired: dict[tuple[int, Any], list[tuple[float, int]]] = {}
        for (u, v), value in sorted(matching.fractional.items()):
            for mark in marks:
                amount_uv = (value / 2.0) * snapshot[(u, mark)]
                amount_vu = (value / 2.0) * snapshot[(v, mark)]
                if amount_uv > 0:
                    desired.setdefault((u, mark), []).append((amount_uv, v))
                if amount_vu > 0:
                    desired.setdefault((v, mark), []).append((amount_vu, u))
        transfers: list[tuple[int, int, Any, int]] = []
        for (origin, mark), wanted in sorted(desired.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))):
            budget = min(
                snapshot[(origin, mark)], math.floor(sum(amount for amount, _ in wanted))
            )
            floors = [(math.floor(amount), amount - math.floor(amount), target) for amount, target in wanted]
            allocation = {target: base for base, _, target in floors}
            remaining = budget - sum(allocation.values())
            if remaining > 0:
                by_remainder = sorted(floors, key=lambda item: (-item[1], item[2]))
                for base, _, target in by_remainder:
                    if remaining <= 0:
                        break
                    allocation[target] += 1
                    remaining -= 1
            for target, amount in sorted(allocation.items()):
                if amount > 0:
                    transfers.append((origin, target, mark, amount))
        for origin, target, mark, amount in transfers:
            items = state.pop_front(origin, mark, amount)
            state.push_back(target, mark, items)
            moved_total += len(items)
            outgoing[(origin, target)] = outgoing.get((origin, target), 0) + len(items)

        # -- round accounting for this iteration (Lemma 6.7) -----------------
        current_max_load = max(state.part_load(part) for part in range(t))
        stats.max_part_load = max(stats.max_part_load, current_max_load)
        per_part_load = max(1, math.ceil(current_max_load / max(1, max_part_size)))
        portal_sort = sort_round_cost(max_part_size, per_part_load, flatten_quality)
        # Tokens per portal path: spread the largest directed transfer over the
        # number of matched portal pairs between the two parts.
        tokens_per_portal = 1
        part_of = shuffler.part_of
        for (origin, target), amount in outgoing.items():
            portal_pairs = max(1, len(matching.portals(part_of, origin, target)))
            tokens_per_portal = max(tokens_per_portal, math.ceil(amount / portal_pairs))
        send = send_round_cost(tokens_per_portal, matching.quality * max(1, flatten_quality))
        rounds += portal_sort + send

    stats.rounds = rounds
    if ledger is not None:
        ledger.charge(phase, rounds)

    # -- Definition 6.1 window check ------------------------------------------
    marks = state.marks()
    total_vertices = sum(part_sizes) if part_sizes else t
    for mark in marks:
        total = sum(state.count(part, mark) for part in range(t))
        stats.mark_totals[mark] = total
        for part in range(t):
            count = state.count(part, mark)
            stats.final_counts[(part, mark)] = count
            lower = 0.9 * total / t - 0.1 * total_vertices / (t * t)
            upper = 1.1 * total / t + 0.1 * total_vertices / (t * t)
            # The paper's slack assumes |X| >= n^{4 epsilon}; at experiment
            # scale we additionally allow the +-(lambda * t) additive error of
            # Lemma 6.2's derivation explicitly.
            slack = stats.iterations * 1.0
            stats.total_cells += 1
            if lower - slack <= count <= upper + slack:
                stats.within_window += 1
    return stats


def disperse_many(
    states: Sequence[DispersionState],
    shuffler: Shuffler,
    part_sizes: Sequence[int],
    loads: Sequence[int],
    flatten_quality: int,
) -> list[DispersionStats]:
    """Disperse several independent states through one shuffler replay.

    The fused twin of calling :func:`disperse` once per state (no ledger —
    callers charge ``stats.rounds`` themselves): every state's token
    movements, statistics, and round counts are identical to its solo run,
    but under the numpy kernel all states share one transfer-planning pass
    per matching (:func:`repro.kernels.batched.disperse_many_numpy`), which
    is what makes warm same-graph query batches cheap.
    """
    if not states:
        return []
    t = states[0].part_count
    if any(state.part_count != t for state in states):
        raise ValueError("disperse_many requires states over the same partition")
    if t <= 1 or len(shuffler) == 0 or not use_numpy():
        return [
            disperse(state, shuffler, part_sizes, load, flatten_quality, ledger=None)
            for state, load in zip(states, loads)
        ]
    from repro.kernels.batched import disperse_many_numpy

    return disperse_many_numpy(states, shuffler, part_sizes, flatten_quality)
