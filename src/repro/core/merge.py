"""Merging two dispersed configurations (Section 6.3) and the Task 3 driver.

Task 3 (Definition 4.3) is solved with a meet-in-the-middle argument:

1. *real* tokens (each carrying a part mark ``j_z``) are routed into a
   dispersed configuration through the node's shuffler (Section 6.1);
2. *dummy* tokens — ``2L`` per vertex of every part ``X*_j``, all carrying part
   mark ``j`` — are routed into a dispersed configuration the same way;
3. inside every part, real and dummy tokens with the same part mark are paired
   up (Lemma 6.4 guarantees the dummies outnumber the reals in every cell) and
   each dummy token walks its paired real token back to the dummy's origin
   vertex, which lies in the marked part.

The implementation mirrors this exactly.  Pairing inside a part is the
expander-sorting step of Section 6.3 and is charged accordingly; in the rare
event that rounding noise leaves a cell with more real tokens than dummies at
experiment scale, the leftovers are assigned round-robin over the marked
part's vertices and the event is counted (tests check it is the exception).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.cost import CostLedger, send_round_cost, sort_round_cost
from repro.core.dispersion import DispersionState, DispersionStats, disperse, disperse_many
from repro.core.tokens import Token
from repro.cutmatching.shuffler import Shuffler
from repro.hierarchy.node import HierarchyNode
from repro.kernels import use_numpy

__all__ = ["Task3Result", "solve_task3", "solve_task3_many"]


@dataclass
class Task3Result:
    """Outcome of one Task 3 invocation on a hierarchy node.

    Attributes:
        assignments: token -> vertex of the marked part the token now occupies.
        real_stats: dispersion statistics of the real tokens.
        dummy_stats: dispersion statistics of the dummy tokens.
        fallback_assignments: number of tokens placed by the round-robin
            fallback instead of a dummy pairing.
        max_vertex_load: maximum number of real tokens assigned to one vertex.
        rounds: CONGEST rounds charged (also added to the ledger).
    """

    assignments: dict[int, Hashable] = field(default_factory=dict)
    real_stats: DispersionStats = field(default_factory=DispersionStats)
    dummy_stats: DispersionStats = field(default_factory=DispersionStats)
    fallback_assignments: int = 0
    max_vertex_load: int = 0
    rounds: int = 0


def _part_vertices(node: HierarchyNode) -> list[list]:
    if use_numpy():
        cached = getattr(node, "_sorted_parts_cache", None)
        if cached is None:
            cached = node._sorted_parts_cache = [sorted(part.vertices) for part in node.parts]
        return cached
    return [sorted(part.vertices) for part in node.parts]


def _part_of_vertex(node: HierarchyNode) -> dict:
    if use_numpy():
        cached = getattr(node, "_part_of_cache", None)
        if cached is None:
            cached = node._part_of_cache = node.part_of_vertex()
        return cached
    return node.part_of_vertex()


def _dispersed_dummies(
    node: HierarchyNode,
    shuffler: Shuffler,
    parts: list[list],
    part_sizes: list[int],
    dummies_per_vertex: int,
    flatten_quality: int,
) -> tuple[DispersionState, DispersionStats]:
    """The fully dispersed dummy configuration for ``dummies_per_vertex``.

    Dummy dispersion is a pure function of the node's partition, its shuffler,
    and ``dummies_per_vertex`` — the same replay happens on every query — so
    the fast path computes it once per node and reuses the final state
    (consumed read-only by the pairing step) and its statistics.  The caller
    charges the recorded rounds to its own ledger, preserving the reference
    accounting exactly.
    """
    cache = None
    if use_numpy():
        cache = getattr(node, "_dummy_dispersion_cache", None)
        if cache is None:
            cache = node._dummy_dispersion_cache = {}
        entry = cache.get(dummies_per_vertex)
        if entry is not None:
            return entry
    dummy_state = DispersionState(len(parts))
    for part_index, vertices in enumerate(parts):
        for vertex in vertices:
            for _ in range(dummies_per_vertex):
                dummy_state.add(part_index, part_index, vertex)
    stats = disperse(
        dummy_state,
        shuffler,
        part_sizes,
        dummies_per_vertex,
        flatten_quality,
        ledger=None,
    )
    if cache is not None:
        cache[dummies_per_vertex] = (dummy_state, stats)
    return dummy_state, stats


def solve_task3(
    node: HierarchyNode,
    tokens: Sequence[Token],
    load: int,
    ledger: CostLedger,
    dummies_per_vertex: int | None = None,
) -> Task3Result:
    """Deliver every token to a vertex of its marked part (Definition 4.3).

    Args:
        node: the internal good node whose shuffler is used.
        tokens: real tokens, each with ``part_mark`` set and currently located
            on a vertex of ``node``.
        load: the load parameter ``L`` of the Task 3 instance.
        ledger: cost ledger charged with the rounds.
        dummies_per_vertex: how many dummy tokens each vertex generates
            (paper: ``2L``); configurable for the ablation experiments.

    Returns:
        The per-token vertex assignments plus dispersion statistics.
    """
    if node.shuffler is None:
        raise RuntimeError("node has no shuffler; run preprocessing before routing queries")
    shuffler: Shuffler = node.shuffler
    parts = _part_vertices(node)
    part_sizes = [len(vertices) for vertices in parts]
    t = len(parts)
    part_of = _part_of_vertex(node)
    flatten_quality = node.flatten_quality()
    if dummies_per_vertex is None:
        dummies_per_vertex = 2 * max(1, load)

    result = Task3Result()
    if t == 0:
        return result
    if t == 1:
        # Single part: every token already sits in its marked part.
        only = parts[0]
        for index, token in enumerate(tokens):
            result.assignments[token.token_id] = token.current_vertex
        return result

    with ledger.phase("task3"):
        # -- 1. disperse the real tokens -----------------------------------
        real_state = DispersionState(t)
        for token in tokens:
            origin_part = part_of.get(token.current_vertex)
            if origin_part is None:
                raise ValueError(
                    f"token {token.token_id} is not located on a vertex of this node"
                )
            if token.part_mark is None:
                raise ValueError(f"token {token.token_id} has no part mark")
            real_state.add(origin_part, token.part_mark, token)
        result.real_stats = disperse(
            real_state, shuffler, part_sizes, load, flatten_quality, ledger, phase="real-disperse"
        )
        _finish_task3(
            node,
            shuffler,
            parts,
            part_sizes,
            t,
            load,
            ledger,
            dummies_per_vertex,
            flatten_quality,
            real_state,
            result,
        )
    return result


def _finish_task3(
    node: HierarchyNode,
    shuffler: Shuffler,
    parts: list[list],
    part_sizes: list[int],
    t: int,
    load: int,
    ledger: CostLedger,
    dummies_per_vertex: int,
    flatten_quality: int,
    real_state: DispersionState,
    result: Task3Result,
) -> None:
    """Steps 2-3 of Task 3 (dummy dispersion + pairing), after the reals moved.

    Shared between :func:`solve_task3` and :func:`solve_task3_many`; the
    caller holds the ``"task3"`` ledger phase open and has already set (and
    charged) ``result.real_stats``.
    """
    # -- 2. disperse the dummy tokens -----------------------------------
    dummy_state, result.dummy_stats = _dispersed_dummies(
        node, shuffler, parts, part_sizes, dummies_per_vertex, flatten_quality
    )
    if len(shuffler) > 0:
        # disperse() would have charged this phase itself had it been
        # handed the ledger; charging here keeps the replay cacheable.
        ledger.charge("dummy-disperse", result.dummy_stats.rounds)

    # -- 3. pair real and dummy tokens inside every part ----------------
    per_vertex_load: dict[Hashable, int] = {}
    merge_rounds = 0
    for part_index in range(t):
        marks_here = set(real_state.queues[part_index].keys())
        part_load = real_state.part_load(part_index) + dummy_state.part_load(part_index)
        merge_rounds = max(
            merge_rounds,
            sort_round_cost(
                part_sizes[part_index],
                max(1, math.ceil(part_load / max(1, part_sizes[part_index]))),
                flatten_quality,
            ),
        )
        for mark in sorted(marks_here, key=repr):
            reals = real_state.items(part_index, mark)
            dummies = dummy_state.items(part_index, mark)
            for position, token in enumerate(reals):
                if position < len(dummies):
                    destination_vertex = dummies[position]
                else:
                    # Rounding left this cell short of dummies; place the
                    # token round-robin over the marked part directly.
                    target_part = parts[mark]
                    destination_vertex = target_part[
                        result.fallback_assignments % len(target_part)
                    ]
                    result.fallback_assignments += 1
                result.assignments[token.token_id] = destination_vertex
                per_vertex_load[destination_vertex] = (
                    per_vertex_load.get(destination_vertex, 0) + 1
                )
    # Walking each paired token back along the dummy's dispersion route
    # costs one more pass over the shuffler paths.
    walk_back = send_round_cost(
        max(1, 2 * load), shuffler.quality * max(1, flatten_quality)
    )
    merge_rounds += walk_back
    ledger.charge("merge", merge_rounds)
    result.rounds = result.real_stats.rounds + result.dummy_stats.rounds + merge_rounds
    result.max_vertex_load = max(per_vertex_load.values(), default=0)


def solve_task3_many(
    node: HierarchyNode,
    token_groups: Sequence[Sequence[Token]],
    loads: Sequence[int],
    ledgers: Sequence[CostLedger],
    dummies_per_vertex: int | None = None,
) -> list[Task3Result]:
    """Solve one Task 3 instance per token group through a single dispersion.

    The fused twin of calling :func:`solve_task3` once per group: the real
    tokens of all groups disperse through one batched shuffler replay
    (:func:`~repro.core.dispersion.disperse_many`), the cached dummy
    configuration is shared as before, and the pairing, charges, and results
    per group are identical to the solo runs — each group's rounds land on
    its own ledger.
    """
    if node.shuffler is None:
        raise RuntimeError("node has no shuffler; run preprocessing before routing queries")
    shuffler: Shuffler = node.shuffler
    parts = _part_vertices(node)
    part_sizes = [len(vertices) for vertices in parts]
    t = len(parts)
    part_of = _part_of_vertex(node)
    flatten_quality = node.flatten_quality()

    results = [Task3Result() for _ in token_groups]
    if t == 0:
        return results
    if t == 1:
        # Single part: every token already sits in its marked part.
        for result, tokens in zip(results, token_groups):
            for token in tokens:
                result.assignments[token.token_id] = token.current_vertex
        return results

    real_states: list[DispersionState] = []
    for tokens in token_groups:
        real_state = DispersionState(t)
        for token in tokens:
            origin_part = part_of.get(token.current_vertex)
            if origin_part is None:
                raise ValueError(
                    f"token {token.token_id} is not located on a vertex of this node"
                )
            if token.part_mark is None:
                raise ValueError(f"token {token.token_id} has no part mark")
            real_state.add(origin_part, token.part_mark, token)
        real_states.append(real_state)
    real_stats_list = disperse_many(
        real_states, shuffler, part_sizes, list(loads), flatten_quality
    )

    for index, result in enumerate(results):
        ledger = ledgers[index]
        load = loads[index]
        per_query_dummies = (
            dummies_per_vertex if dummies_per_vertex is not None else 2 * max(1, load)
        )
        with ledger.phase("task3"):
            result.real_stats = real_stats_list[index]
            if len(shuffler) > 0:
                ledger.charge("real-disperse", result.real_stats.rounds)
            _finish_task3(
                node,
                shuffler,
                parts,
                part_sizes,
                t,
                load,
                ledger,
                per_query_dummies,
                flatten_quality,
                real_states[index],
                result,
            )
    return results
