"""The paper's core contribution: deterministic expander routing with tradeoffs."""

from repro.core.cost import CostLedger, send_round_cost, sort_round_cost, sorting_network_depth
from repro.core.dispersion import DispersionState, DispersionStats, disperse
from repro.core.general import GeneralGraphRouter
from repro.core.leaf import LeafRoutingResult, route_in_leaf
from repro.core.merge import Task3Result, solve_task3
from repro.core.router import (
    ExpanderRouter,
    PreprocessArtifact,
    PreprocessSummary,
    RoutingOutcome,
)
from repro.core.tasks import Task1Instance, Task2Instance, Task3Instance
from repro.core.tokens import RoutingRequest, Token, TokenConfiguration, tokens_from_requests

__all__ = [
    "CostLedger",
    "send_round_cost",
    "sort_round_cost",
    "sorting_network_depth",
    "DispersionState",
    "DispersionStats",
    "disperse",
    "GeneralGraphRouter",
    "LeafRoutingResult",
    "route_in_leaf",
    "Task3Result",
    "solve_task3",
    "ExpanderRouter",
    "PreprocessArtifact",
    "PreprocessSummary",
    "RoutingOutcome",
    "Task1Instance",
    "Task2Instance",
    "Task3Instance",
    "RoutingRequest",
    "Token",
    "TokenConfiguration",
    "tokens_from_requests",
]
