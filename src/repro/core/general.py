"""Routing on general (non-constant-degree) expanders via the expander split (Appendix E).

The core machinery assumes a constant-degree graph.  For a general expander
``G`` where vertex ``v`` may source/sink up to ``deg(v)`` tokens, Appendix E
reduces to the constant-degree case through the expander split ``G_diamond``:

* each vertex ``v`` becomes a gadget of ``deg(v)`` split vertices;
* token loads of ``deg(v)`` per original vertex become ``O(1)`` per split vertex;
* destination labels ``(v, i)`` are assigned load-balanced with the
  local-propagation + local-serialization primitives — token ``z`` addressed to
  ``v`` with serial ``SID_z`` goes to split copy ``SID_z mod deg(v)``.

:class:`GeneralGraphRouter` wraps an :class:`~repro.core.router.ExpanderRouter`
built on the split graph and translates requests/results both ways.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.core.router import ExpanderRouter, PreprocessSummary, RoutingOutcome
from repro.core.tokens import RoutingRequest
from repro.graphs.expander_split import ExpanderSplit, expander_split
from repro.graphs.validation import require_connected
from repro.hierarchy.builder import HierarchyParameters

__all__ = ["GeneralGraphRouter"]


class GeneralGraphRouter:
    """Expander routing on general-degree expanders (Appendix E reduction)."""

    def __init__(
        self,
        graph: nx.Graph,
        epsilon: float = 0.5,
        psi: float | None = None,
        hierarchy_params: HierarchyParameters | None = None,
    ) -> None:
        require_connected(graph)
        self.graph = graph
        self.split: ExpanderSplit = expander_split(graph)
        self.router = ExpanderRouter(
            self.split.split,
            epsilon=epsilon,
            psi=psi,
            hierarchy_params=hierarchy_params,
            max_constant_degree=max(16, 2 + max(dict(self.split.split.degree()).values())),
        )

    def preprocess(self) -> PreprocessSummary:
        """Preprocess the split graph's router (Theorem 1.1 on ``G_diamond``)."""
        return self.router.preprocess()

    def route(
        self, requests: Sequence[RoutingRequest], load: int | None = None
    ) -> RoutingOutcome:
        """Route requests whose per-vertex load may be proportional to the degree.

        Requests are translated to the split graph: the ``s``-th request leaving
        a vertex departs from that vertex's ``s``-th split copy, and the ``d``-th
        request addressed to a vertex arrives at its ``d``-th split copy
        (the load-balanced label assignment of Appendix E).  The returned
        outcome reports delivery in terms of the *original* destinations.
        """
        ordered = sorted(
            requests, key=lambda request: (repr(request.source), repr(request.destination))
        )
        out_serial: dict[Hashable, int] = {}
        in_serial: dict[Hashable, int] = {}
        split_requests: list[RoutingRequest] = []
        for request in ordered:
            source_index = out_serial.get(request.source, 0)
            out_serial[request.source] = source_index + 1
            destination_index = in_serial.get(request.destination, 0)
            in_serial[request.destination] = destination_index + 1
            split_source = self.split.assign_destination(request.source, source_index)
            split_destination = self.split.assign_destination(
                request.destination, destination_index
            )
            split_requests.append(
                RoutingRequest(
                    source=split_source,
                    destination=split_destination,
                    payload=(request.payload, request.destination),
                )
            )
        outcome = self.router.route(split_requests, load=load)
        # Delivery in original terms: a token is delivered when its split
        # position lifts back to the requested original destination.
        delivered = 0
        for token in outcome.tokens:
            _, original_destination = token.payload
            if self.split.lift_token_position(token.current_vertex) == original_destination:
                delivered += 1
        outcome.delivered = delivered
        return outcome
