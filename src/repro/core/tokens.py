"""Tokens, routing requests, and token configurations.

The expander routing problem moves *tokens*: each vertex is the source of at
most ``L`` tokens and the destination of at most ``L`` tokens (Task 1,
Definition 4.1).  A :class:`Token` keeps its full life story — source,
destination, current position, the destination markers the recursion rewrites
(Section 4), and a trace of the phases it went through — so invariants can be
asserted at every stage and failures are debuggable.

A :class:`TokenConfiguration` is the global state "which tokens sit on which
vertex"; it provides the load accounting that the paper's statements are all
phrased in terms of.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence

__all__ = ["RoutingRequest", "Token", "TokenConfiguration"]


@dataclass(frozen=True)
class RoutingRequest:
    """A user-facing routing request: carry ``payload`` from ``source`` to ``destination``."""

    source: Hashable
    destination: Hashable
    payload: Any = None


@dataclass
class Token:
    """One routed token.

    Attributes:
        token_id: unique id (assigned by the router; drives deterministic ties).
        source: origin vertex.
        destination: requested destination vertex.
        payload: opaque payload carried along.
        current_vertex: where the token currently resides.
        destination_marker: the Task 2 marker ``i_z`` (rank among best vertices).
        part_mark: the Task 3 marker ``j_z`` (index of the target part).
        is_dummy: True for the dummy tokens the meet-in-the-middle steps create.
        trace: human-readable list of the phases the token passed through.
    """

    token_id: int
    source: Hashable
    destination: Hashable
    payload: Any = None
    current_vertex: Hashable = None
    destination_marker: int | None = None
    part_mark: int | None = None
    is_dummy: bool = False
    trace: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.current_vertex is None:
            self.current_vertex = self.source

    def move_to(self, vertex: Hashable, phase: str = "") -> None:
        """Relocate the token and record the phase responsible."""
        self.current_vertex = vertex
        if phase:
            self.trace.append(phase)

    @property
    def delivered(self) -> bool:
        """True when the token sits on its requested destination."""
        return self.current_vertex == self.destination


class TokenConfiguration:
    """The placement of a set of tokens on graph vertices."""

    def __init__(self, vertices: Iterable[Hashable], tokens: Iterable[Token] = ()) -> None:
        self._at: dict[Hashable, list[Token]] = {vertex: [] for vertex in vertices}
        for token in tokens:
            self.place(token, token.current_vertex)

    # -- placement ---------------------------------------------------------

    def place(self, token: Token, vertex: Hashable) -> None:
        """Put ``token`` on ``vertex`` (adding the vertex if unseen)."""
        if vertex not in self._at:
            self._at[vertex] = []
        token.current_vertex = vertex
        self._at[vertex].append(token)

    def move(self, token: Token, vertex: Hashable, phase: str = "") -> None:
        """Move a token from its current vertex to ``vertex``."""
        current = token.current_vertex
        if current in self._at and token in self._at[current]:
            self._at[current].remove(token)
        token.move_to(vertex, phase)
        if vertex not in self._at:
            self._at[vertex] = []
        self._at[vertex].append(token)

    # -- queries ------------------------------------------------------------

    def tokens_at(self, vertex: Hashable) -> list[Token]:
        return list(self._at.get(vertex, []))

    def load(self, vertex: Hashable) -> int:
        return len(self._at.get(vertex, []))

    def max_load(self) -> int:
        return max((len(tokens) for tokens in self._at.values()), default=0)

    def all_tokens(self) -> list[Token]:
        result: list[Token] = []
        for vertex in sorted(self._at, key=repr):
            result.extend(self._at[vertex])
        return result

    def vertices(self) -> list[Hashable]:
        return list(self._at.keys())

    def __len__(self) -> int:
        return sum(len(tokens) for tokens in self._at.values())

    # -- invariants ----------------------------------------------------------

    def check_source_load(self, limit: int) -> bool:
        """Every vertex currently holds at most ``limit`` tokens."""
        return self.max_load() <= limit

    def destination_load(self) -> dict[Hashable, int]:
        """Number of tokens destined to each vertex."""
        counts: dict[Hashable, int] = {}
        for tokens in self._at.values():
            for token in tokens:
                counts[token.destination] = counts.get(token.destination, 0) + 1
        return counts

    def check_destination_load(self, limit: int) -> bool:
        """No vertex is the destination of more than ``limit`` tokens."""
        counts = self.destination_load()
        return max(counts.values(), default=0) <= limit

    def all_delivered(self) -> bool:
        """Every token sits on its requested destination."""
        return all(token.delivered for token in self.all_tokens())


def tokens_from_requests(requests: Sequence[RoutingRequest]) -> list[Token]:
    """Materialise tokens from user requests with deterministic ids."""
    ordered = sorted(
        requests, key=lambda request: (repr(request.source), repr(request.destination))
    )
    return [
        Token(
            token_id=index,
            source=request.source,
            destination=request.destination,
            payload=request.payload,
        )
        for index, request in enumerate(ordered)
    ]
