"""Best-vertex delegation utilities (Definitions 3.6, 3.7 and Appendix D).

The routing reduction (Task 1 -> Task 2) delegates every destination vertex
``v`` to a *best* vertex ``h(v)`` — a vertex covered by some good leaf of the
hierarchy — so the recursive machinery only ever has to deliver tokens to best
vertices, identified by their rank in the sorted order of ``Vbest``.

This module computes:

* the sorted list of best vertices and the rank lookup both ways;
* the delegation map ``h(v) = rank-(ID(v) mod |Vbest|)`` best vertex, whose
  pre-image sizes are bounded by ``ceil(n / |Vbest|) <= rho_best`` — this is
  the load-balance property Appendix D relies on;
* per-node prefix counts of best vertices per part, which is what lets a
  query rewrite a destination marker ``i_z`` into ``(j_z, i'_z)`` locally
  (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.hierarchy.node import HierarchicalDecomposition, HierarchyNode

__all__ = ["BestVertexIndex", "build_best_index"]


@dataclass
class BestVertexIndex:
    """Delegation structure over the best vertices of a decomposition.

    Attributes:
        best_vertices: ``Vbest`` sorted by ID.
        rank_of: vertex -> its rank in ``Vbest`` (only best vertices appear).
        delegate_of: every graph vertex -> the best vertex responsible for it.
        delegated_to: best vertex -> sorted list of vertices it represents.
    """

    best_vertices: list
    rank_of: dict[Hashable, int] = field(default_factory=dict)
    delegate_of: dict[Hashable, Hashable] = field(default_factory=dict)
    delegated_to: dict[Hashable, list] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.best_vertices)

    def best_by_rank(self, rank: int) -> Hashable:
        """The ``rank``-th smallest best vertex (0-based)."""
        return self.best_vertices[rank]

    def max_delegation_load(self) -> int:
        """Largest number of vertices delegated to a single best vertex."""
        if not self.delegated_to:
            return 0
        return max(len(group) for group in self.delegated_to.values())


def build_best_index(decomposition: HierarchicalDecomposition) -> BestVertexIndex:
    """Compute the best-vertex delegation for a decomposition (Appendix D's ``h``)."""
    best = decomposition.best_vertices()
    if not best:
        raise ValueError("decomposition has no best vertices; cannot delegate destinations")
    rank_of = {vertex: rank for rank, vertex in enumerate(best)}
    all_vertices = sorted(decomposition.graph.nodes())
    delegate_of: dict[Hashable, Hashable] = {}
    delegated_to: dict[Hashable, list] = {vertex: [] for vertex in best}
    for position, vertex in enumerate(all_vertices):
        delegate = best[position % len(best)]
        delegate_of[vertex] = delegate
        delegated_to[delegate].append(vertex)
    return BestVertexIndex(
        best_vertices=best,
        rank_of=rank_of,
        delegate_of=delegate_of,
        delegated_to=delegated_to,
    )


def best_counts_per_part(node: HierarchyNode) -> list[int]:
    """Number of best vertices inside each part of an internal node.

    Together with Property 3.1(1) (parts are ID-contiguous and best vertices
    inherit that order) this is exactly the information a vertex needs to
    rewrite a destination marker ``i_z`` into ``(j_z, i'_z)`` at query time.
    """
    from repro.kernels import use_numpy

    if use_numpy():
        cached = getattr(node, "_best_counts_cache", None)
        if cached is None:
            cached = node._best_counts_cache = [
                len(part.child.best_vertices()) if part.child is not None else 0
                for part in node.parts
            ]
        return cached
    counts: list[int] = []
    for part in node.parts:
        child = part.child
        counts.append(len(child.best_vertices()) if child is not None else 0)
    return counts


def locate_best_rank(node: HierarchyNode, marker: int) -> tuple[int, int]:
    """Rewrite a destination marker at an internal node (Section 4).

    Returns ``(j_z, i'_z)``: the index of the part containing the ``marker``-th
    best vertex of ``node`` and the marker relative to that part.
    """
    counts = best_counts_per_part(node)
    remaining = marker
    for index, count in enumerate(counts):
        if remaining < count:
            return index, remaining
        remaining -= count
    raise IndexError(f"marker {marker} out of range for node with {sum(counts)} best vertices")
