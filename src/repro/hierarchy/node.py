"""Hierarchy nodes and the hierarchical decomposition tree (Property 3.1).

The decomposition ``T`` is a tree of vertex sets.  Each *good* node ``X``
carries:

* its virtual graph ``H_X`` (the root's virtual graph is ``G[X]`` itself,
  deeper virtual graphs are unions of embedded matchings of max degree
  ``O(log n)``);
* the embedding ``f_X`` of ``H_X`` into the parent's virtual graph
  ``H_{p(X)}``;
* its partition into parts ``X*_i = X_i ∪ X'_i`` where ``X_i`` is the good
  child (carrying its own virtual expander) and ``X'_i`` is the bad sibling
  matched into ``X_i`` (Property 3.1(3));
* the matching embedding ``f_{M_X}`` realising those ``X'_i -> X_i``
  matchings inside ``H_X``;
* after preprocessing, the node's *shuffler* (Definition 5.4).

``Xbest`` (Definition 3.6) is the union of good leaf descendants; every
routing destination is delegated to a best vertex, with at most
``rho_best = max_X |X| / |Xbest|`` (Definition 3.7) destinations per best
vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Optional

import networkx as nx

from repro.cutmatching.shuffler import Shuffler
from repro.embedding.embedding import Embedding, compose, identity_embedding

__all__ = ["Part", "HierarchyNode", "HierarchicalDecomposition"]


@dataclass
class Part:
    """One part ``X*_i = X_i ∪ X'_i`` of a good internal node.

    Attributes:
        index: the part index ``i`` (0-based).
        good_vertices: ``X_i`` — vertices covered by the child's virtual expander.
        bad_vertices: ``X'_i`` — leftover vertices matched into ``X_i``.
        matching: map from each bad vertex to its good mate (Property 3.1(3)).
        child: the good child hierarchy node built on ``X_i`` (None until built).
    """

    index: int
    good_vertices: frozenset
    bad_vertices: frozenset = frozenset()
    matching: dict[Hashable, Hashable] = field(default_factory=dict)
    child: Optional["HierarchyNode"] = None

    @property
    def vertices(self) -> frozenset:
        """All vertices of the part (good and bad)."""
        return self.good_vertices | self.bad_vertices

    @property
    def size(self) -> int:
        return len(self.good_vertices) + len(self.bad_vertices)


@dataclass
class HierarchyNode:
    """A good node of the hierarchical decomposition."""

    vertices: frozenset
    level: int
    virtual_graph: nx.Graph
    embedding_to_parent: Embedding
    parent: Optional["HierarchyNode"] = None
    parts: list[Part] = field(default_factory=list)
    part_matching_embedding: Embedding = field(default_factory=Embedding)
    shuffler: Optional[Shuffler] = None
    is_leaf: bool = False
    sorting_network_quality: int = 1
    flatten_quality_cache: Optional[int] = None

    # -- basic structure ---------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.vertices)

    @property
    def children(self) -> list["HierarchyNode"]:
        return [part.child for part in self.parts if part.child is not None]

    def part_of_vertex(self) -> dict:
        """Map each vertex of this node to the index of the part containing it."""
        result: dict = {}
        for part in self.parts:
            for vertex in part.vertices:
                result[vertex] = part.index
        return result

    def iter_subtree(self) -> Iterator["HierarchyNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    # -- best vertices (Definitions 3.6 / 3.7) ------------------------------

    def best_vertices(self) -> list:
        """``Xbest``: sorted union of good-leaf vertices in this subtree."""
        if self.is_leaf:
            return sorted(self.vertices)
        collected: set = set()
        for child in self.children:
            collected.update(child.best_vertices())
        return sorted(collected)

    def best_ratio(self) -> float:
        """``|X| / |Xbest|`` for this node (contributes to rho_best)."""
        best = self.best_vertices()
        if not best:
            return float("inf")
        return len(self.vertices) / len(best)

    # -- embeddings ---------------------------------------------------------

    def flatten_embedding(self) -> Embedding:
        """The flatten embedding ``f^0_X`` of Definition 3.3 (H_X into the root graph).

        Composes ``f_X`` with every ancestor's embedding.  The root's flatten
        embedding is the identity on its own virtual graph.
        """
        if self.parent is None:
            return identity_embedding(self.virtual_graph, name="f0-root")
        flattened = self.embedding_to_parent
        ancestor = self.parent
        while ancestor is not None and ancestor.parent is not None:
            flattened = compose(ancestor.embedding_to_parent, flattened)
            ancestor = ancestor.parent
        return flattened

    def flatten_quality(self) -> int:
        """Quality upper bound of ``f^0_X`` (Corollary 3.4 accounting).

        Computed as the product of the per-level embedding qualities along the
        path to the root; cached because it is read on every routing query.
        """
        if self.flatten_quality_cache is not None:
            return self.flatten_quality_cache
        quality = 1
        node: Optional[HierarchyNode] = self
        while node is not None and node.parent is not None:
            quality *= max(1, node.embedding_to_parent.quality)
            node = node.parent
        self.flatten_quality_cache = quality
        return quality

    def virtual_diameter(self) -> int:
        """Diameter of the node's virtual graph (used in round accounting)."""
        if self.virtual_graph.number_of_nodes() <= 1:
            return 0
        if not nx.is_connected(self.virtual_graph):
            return self.virtual_graph.number_of_nodes()
        return nx.diameter(self.virtual_graph)


@dataclass
class HierarchicalDecomposition:
    """The full decomposition: the root node plus global metadata.

    Attributes:
        root: the root good node ``W`` (covers >= 2/3 of the graph's vertices).
        graph: the original base graph ``G``.
        uncovered: vertices of ``G`` outside the root (``V \\ W``).
        root_matching: map from each uncovered vertex to its mate in ``W``
            (Lemma 3.5), with its path embedding in ``root_matching_embedding``.
        epsilon: the tradeoff parameter the decomposition was built with.
        build_rounds: CONGEST rounds charged for the construction (Thm 3.2).
    """

    root: HierarchyNode
    graph: nx.Graph
    uncovered: frozenset = frozenset()
    root_matching: dict[Hashable, Hashable] = field(default_factory=dict)
    root_matching_embedding: Embedding = field(default_factory=Embedding)
    epsilon: float = 0.5
    build_rounds: int = 0

    def all_nodes(self) -> list[HierarchyNode]:
        """All good nodes of the hierarchy in pre-order."""
        return list(self.root.iter_subtree())

    def levels(self) -> int:
        """Number of levels ``ell(T)`` (root is level 0)."""
        return 1 + max(node.level for node in self.all_nodes())

    def leaves(self) -> list[HierarchyNode]:
        return [node for node in self.all_nodes() if node.is_leaf]

    def best_vertices(self) -> list:
        """``Vbest`` of the whole decomposition, sorted by ID."""
        return self.root.best_vertices()

    def rho_best(self) -> float:
        """``rho_best = max_X |X| / |Xbest|`` (Definition 3.7)."""
        return max(node.best_ratio() for node in self.all_nodes())

    def node_of_vertex(self, vertex: Hashable, level: int) -> Optional[HierarchyNode]:
        """The good node at ``level`` whose vertex set contains ``vertex`` (if any)."""
        for node in self.all_nodes():
            if node.level == level and vertex in node.vertices:
                return node
        return None
