"""Construction of the hierarchical decomposition (Theorem 3.2, Appendix A).

The CS20 construction partitions the current (virtual) graph into ``k``
ID-contiguous blocks, embeds a virtual expander into (most of) each block with
a vertex-level cut-matching game, matches the leftover vertices into the
embedded expanders, and recurses on each embedded expander.  The recursion
depth is ``O(1/epsilon)`` because the block size shrinks by a factor of
``k = n^epsilon`` per level.

This module follows that construction:

* :func:`embed_virtual_expander` is the per-block KKOV-style cut-matching
  game: it repeatedly bisects the current virtual graph (Fiedler/ID order),
  asks the matching embedder (Lemma 2.3) for a saturating matching across the
  bisection inside the *parent* virtual graph, and adds the matched edges to
  the virtual graph until the virtual graph is a certified expander.  The
  virtual graph's maximum degree is the number of iterations, i.e. ``O(log n)``
  as in Property 3.1(2).
* :func:`build_hierarchy` drives the recursion, creates the
  :class:`~repro.hierarchy.node.Part` structure with the bad-vertex matchings
  of Property 3.1(3), and records the round cost of the whole construction.

Differences from the paper are purely parametric and documented in DESIGN.md:
leaf components are declared at a configurable size threshold (the paper trims
at ``k^4 = n^{4 epsilon}``, which at experiment scale would collapse the tree
to a single leaf), and the expander certificate is the spectral gap rather
than a recursive Det-Sparse-Cut call (the same object CS20's certificate
ultimately certifies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import networkx as nx
import numpy as np

from repro.embedding.embedding import Embedding
from repro.embedding.matching_embed import embed_matching
from repro.graphs.conductance import spectral_gap
from repro.hierarchy.node import HierarchicalDecomposition, HierarchyNode, Part

__all__ = [
    "HierarchyParameters",
    "VirtualExpanderResult",
    "embed_virtual_expander",
    "build_hierarchy",
]


@dataclass(frozen=True)
class HierarchyParameters:
    """Tunable parameters of the decomposition construction.

    Attributes:
        epsilon: the tradeoff parameter; ``k = n^epsilon`` parts per node.
        psi: sparsity parameter handed to the matching embedder.
        leaf_size: nodes of at most this many vertices become leaves.
        min_part_size: never create parts smaller than this.
        gap_target: normalized-Laplacian gap at which a virtual graph is
            accepted as an expander.
        max_levels: hard cap on the recursion depth (paper: O(1/epsilon)).
    """

    epsilon: float = 0.5
    psi: float = 0.1
    leaf_size: int = 12
    min_part_size: int = 4
    gap_target: float = 0.20
    max_levels: int = 8

    def parts_for(self, total_vertices: int, node_size: int) -> int:
        """Number of parts ``t`` for a node of ``node_size`` vertices.

        ``k = n^epsilon`` computed from the *original* graph size, clamped so
        every part has at least ``min_part_size`` vertices and there are at
        least 2 parts (otherwise the node becomes a leaf).
        """
        k = max(2, int(round(total_vertices ** self.epsilon)))
        t = min(k, node_size // self.min_part_size)
        return max(t, 0)


@dataclass
class VirtualExpanderResult:
    """Outcome of embedding a virtual expander into one block.

    Attributes:
        covered: vertices on which the virtual expander was embedded (``U_i``).
        dropped: vertices excluded during construction (become bad vertices).
        virtual_graph: the embedded expander ``H_i`` on ``covered``.
        embedding: path embedding of ``H_i``'s edges into the parent virtual graph.
        iterations: number of cut-matching iterations used.
        rounds: CONGEST rounds charged.
    """

    covered: frozenset
    dropped: frozenset
    virtual_graph: nx.Graph
    embedding: Embedding
    iterations: int
    rounds: int


def _bisect_block(virtual_graph: nx.Graph, members: Sequence[Hashable]) -> tuple[list, list]:
    """Deterministic bisection of the block used by the per-block cut player.

    If the current virtual graph is connected we split along the Fiedler
    vector of its normalized Laplacian (the sparsest direction found so far,
    i.e. the direction in which the virtual graph is *least* expanding, which
    is exactly where the next matching should add edges).  Otherwise — in the
    first iterations the virtual graph has no edges — we split by ID order.
    """
    members = sorted(members)
    half = len(members) // 2
    subgraph = virtual_graph.subgraph(members)
    if subgraph.number_of_edges() == 0:
        return members[:half], members[half:]
    if not nx.is_connected(subgraph):
        # Group whole components together so the next matching is forced to
        # connect different components (otherwise repeated ID-order splits
        # would keep reinforcing the same bipartition and never connect H).
        components = sorted(nx.connected_components(subgraph), key=lambda c: min(c))
        ordered: list = []
        for component in components:
            ordered.extend(sorted(component))
        return ordered[:half], ordered[half:]
    nodes = sorted(subgraph.nodes())
    lap = np.asarray(nx.normalized_laplacian_matrix(subgraph, nodelist=nodes).todense())
    _, eigenvectors = np.linalg.eigh(lap)
    fiedler = eigenvectors[:, 1]
    order = sorted(range(len(nodes)), key=lambda i: (fiedler[i], nodes[i]))
    left = [nodes[i] for i in order[:half]]
    right = [nodes[i] for i in order[half:]]
    return left, right


def embed_virtual_expander(
    base_graph: nx.Graph,
    block: Iterable[Hashable],
    params: HierarchyParameters,
    max_iterations: int | None = None,
) -> VirtualExpanderResult:
    """Embed a virtual expander onto (most of) ``block`` inside ``base_graph``.

    The returned virtual graph has maximum degree equal to the number of
    iterations (``O(log n)``), and every virtual edge carries a low-congestion
    path of ``base_graph``.
    """
    members = sorted(set(block))
    rounds = 0
    if len(members) <= 1:
        graph = nx.Graph()
        graph.add_nodes_from(members)
        return VirtualExpanderResult(
            covered=frozenset(members),
            dropped=frozenset(),
            virtual_graph=graph,
            embedding=Embedding(name="H-trivial"),
            iterations=0,
            rounds=0,
        )

    if max_iterations is None:
        max_iterations = max(4, int(math.ceil(3 * math.log2(len(members)))) + 2)

    virtual_graph = nx.Graph()
    virtual_graph.add_nodes_from(members)
    embedding = Embedding(name="H-block")
    active = list(members)
    dropped: set = set()
    iterations = 0

    for _ in range(max_iterations):
        if len(active) <= 1:
            break
        subgraph = virtual_graph.subgraph(active)
        if (
            subgraph.number_of_edges() > 0
            and nx.is_connected(subgraph)
            and spectral_gap(subgraph) >= params.gap_target
        ):
            break
        iterations += 1
        left, right = _bisect_block(virtual_graph, active)
        if not left or not right:
            break
        sources, sinks = (left, right) if len(left) <= len(right) else (right, left)
        result = embed_matching(base_graph, sources, sinks, psi=params.psi)
        rounds += max(1, result.quality) ** 2 + len(active)
        for a, b in result.matching.items():
            virtual_graph.add_edge(a, b)
            embedding.add_edge(a, b, result.embedding.path_for(a, b))
        if not result.saturated:
            unmatched = [v for v in sources if v not in result.matching]
            # Vertices the matching player cannot connect are excluded from the
            # embedded expander; they become bad vertices of the part.
            for vertex in unmatched:
                dropped.add(vertex)
            active = [v for v in active if v not in dropped]

    # Connectivity repair: if the embedded virtual graph is still disconnected
    # (possible when the gap target was not reached before the iteration cap),
    # stitch the components together with extra embedded matchings.  The
    # resulting degree increase is at most the number of components, which is
    # O(log n) in the worst case and usually 1-2.
    for _ in range(len(active)):
        subgraph = virtual_graph.subgraph(active)
        if len(active) <= 1 or subgraph.number_of_edges() == 0:
            break
        if nx.is_connected(subgraph):
            break
        components = sorted(nx.connected_components(subgraph), key=lambda c: (len(c), min(c)))
        smallest = sorted(components[0])
        rest = sorted(set(active) - set(smallest))
        sources, sinks = (smallest, rest) if len(smallest) <= len(rest) else (rest, smallest)
        repair = embed_matching(base_graph, sources, sinks, psi=params.psi)
        rounds += max(1, repair.quality) ** 2
        if not repair.matching:
            break
        for a, b in repair.matching.items():
            virtual_graph.add_edge(a, b)
            embedding.add_edge(a, b, repair.embedding.path_for(a, b))
        iterations += 1

    covered = frozenset(active)
    final_graph = nx.Graph()
    final_graph.add_nodes_from(sorted(covered))
    for u, v in virtual_graph.edges():
        if u in covered and v in covered:
            final_graph.add_edge(u, v)
    final_embedding = Embedding(name="H-block")
    for (u, v), path in embedding.mapping.items():
        if u in covered and v in covered:
            final_embedding.mapping[(u, v)] = path
    return VirtualExpanderResult(
        covered=covered,
        dropped=frozenset(dropped),
        virtual_graph=final_graph,
        embedding=final_embedding,
        iterations=iterations,
        rounds=rounds,
    )


def _single_edge_path(u: Hashable, v: Hashable):
    """A length-1 path realising a virtual edge that is also a base edge."""
    from repro.embedding.paths import Path

    return Path((u, v))


def _partition_by_id(vertices: Iterable[Hashable], parts: int) -> list[list]:
    """Split ``vertices`` into ``parts`` contiguous blocks of the sorted ID order.

    This is Property 3.1(1)'s requirement that the children can be ordered so
    their ID ranges do not interleave — it is what lets destination markers be
    rewritten locally at query time.
    """
    ordered = sorted(vertices)
    if parts <= 1:
        return [ordered]
    base = len(ordered) // parts
    extra = len(ordered) % parts
    blocks: list[list] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        blocks.append(ordered[start: start + size])
        start += size
    return [block for block in blocks if block]


class _HierarchyBuilder:
    """Recursive construction driver holding the shared parameters and cost."""

    def __init__(self, graph: nx.Graph, params: HierarchyParameters) -> None:
        self.graph = graph
        self.params = params
        self.total_vertices = graph.number_of_nodes()
        self.rounds = 0

    def build_root(self) -> HierarchyNode:
        root = HierarchyNode(
            vertices=frozenset(self.graph.nodes()),
            level=0,
            virtual_graph=self.graph.copy(),
            embedding_to_parent=Embedding(name="root"),
            parent=None,
        )
        self._expand(root)
        return root

    def _expand(self, node: HierarchyNode) -> None:
        params = self.params
        t = params.parts_for(self.total_vertices, node.size)
        if (
            node.size <= params.leaf_size
            or t < 2
            or node.level >= params.max_levels
        ):
            node.is_leaf = True
            return

        blocks = _partition_by_id(node.vertices, t)
        part_matching = Embedding(name=f"fM-level{node.level}")
        for index, block in enumerate(blocks):
            result = embed_virtual_expander(node.virtual_graph, block, params)
            self.rounds += result.rounds
            good = result.covered
            bad = frozenset(result.dropped)
            if len(bad) > len(good):
                # The per-block game failed to cover a majority (Property 3.1(3)
                # needs |X'_i| <= |X_i|).  Fall back to using the induced
                # subgraph of the parent virtual graph as the child's virtual
                # graph — a quality-1 embedding — and no bad vertices.
                induced = node.virtual_graph.subgraph(block).copy()
                fallback_embedding = Embedding(name="H-induced")
                for u, v in induced.edges():
                    fallback_embedding.add_edge(u, v, _single_edge_path(u, v))
                result = VirtualExpanderResult(
                    covered=frozenset(block),
                    dropped=frozenset(),
                    virtual_graph=induced,
                    embedding=fallback_embedding,
                    iterations=result.iterations,
                    rounds=result.rounds,
                )
                good = result.covered
                bad = frozenset()
            matching: dict[Hashable, Hashable] = {}
            if bad:
                matched = embed_matching(
                    node.virtual_graph, sorted(bad), sorted(good), psi=params.psi
                )
                self.rounds += max(1, matched.quality) ** 2
                matching = dict(matched.matching)
                for (u, v), path in matched.embedding.mapping.items():
                    part_matching.mapping[(u, v)] = path
                leftovers = [v for v in bad if v not in matching]
                if leftovers:
                    # As a last resort attach stragglers to their lowest-ID good
                    # neighbour in the virtual graph (keeps the partition total).
                    for vertex in leftovers:
                        anchor = min(good)
                        matching[vertex] = anchor
            child = HierarchyNode(
                vertices=good,
                level=node.level + 1,
                virtual_graph=result.virtual_graph,
                embedding_to_parent=result.embedding,
                parent=node,
            )
            part = Part(
                index=index,
                good_vertices=good,
                bad_vertices=bad,
                matching=matching,
                child=child,
            )
            node.parts.append(part)
        node.part_matching_embedding = part_matching
        for part in node.parts:
            assert part.child is not None
            self._expand(part.child)


def build_hierarchy(
    graph: nx.Graph,
    params: HierarchyParameters | None = None,
    epsilon: float | None = None,
) -> HierarchicalDecomposition:
    """Build the hierarchical decomposition of an expander graph (Theorem 3.2).

    Args:
        graph: a connected (preferably constant-degree) expander.
        params: full parameter object; built from defaults when omitted.
        epsilon: shortcut to override just the tradeoff parameter.
    """
    if params is None:
        params = HierarchyParameters()
    if epsilon is not None:
        params = HierarchyParameters(
            epsilon=epsilon,
            psi=params.psi,
            leaf_size=params.leaf_size,
            min_part_size=params.min_part_size,
            gap_target=params.gap_target,
            max_levels=params.max_levels,
        )
    if graph.number_of_nodes() == 0:
        raise ValueError("cannot decompose an empty graph")
    if not nx.is_connected(graph):
        raise ValueError("the hierarchical decomposition requires a connected graph")

    builder = _HierarchyBuilder(graph, params)
    root = builder.build_root()
    return HierarchicalDecomposition(
        root=root,
        graph=graph,
        uncovered=frozenset(),
        epsilon=params.epsilon,
        build_rounds=builder.rounds,
    )
