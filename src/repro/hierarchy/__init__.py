"""Hierarchical decomposition of expanders (Section 3, Appendix A)."""

from repro.hierarchy.best import (
    BestVertexIndex,
    best_counts_per_part,
    build_best_index,
    locate_best_rank,
)
from repro.hierarchy.builder import (
    HierarchyParameters,
    VirtualExpanderResult,
    build_hierarchy,
    embed_virtual_expander,
)
from repro.hierarchy.node import HierarchicalDecomposition, HierarchyNode, Part

__all__ = [
    "BestVertexIndex",
    "best_counts_per_part",
    "build_best_index",
    "locate_best_rank",
    "HierarchyParameters",
    "VirtualExpanderResult",
    "build_hierarchy",
    "embed_virtual_expander",
    "HierarchicalDecomposition",
    "HierarchyNode",
    "Part",
]
