"""repro: a reproduction of "Deterministic Expander Routing: Faster and More Versatile".

Chang, Huang, Su (PODC 2024).  The package implements the CONGEST-model
substrates the paper relies on (synchronous simulator, expanders, embeddings,
cut-matching shufflers, hierarchical decomposition, expander sorting), the
paper's main contribution (deterministic expander routing with
preprocessing/query tradeoffs), the baselines it compares against, and the
applications it derives (MST on expanders, k-clique enumeration via expander
decomposition, routing/sorting equivalence).

Quickstart::

    import networkx as nx
    from repro import ExpanderRouter, RoutingRequest
    from repro.graphs import random_regular_expander

    graph = random_regular_expander(256, degree=8, seed=1)
    router = ExpanderRouter(graph, epsilon=0.5)
    router.preprocess()
    requests = [RoutingRequest(source=v, destination=(v * 7) % 256) for v in graph.nodes()]
    outcome = router.route(requests)
    assert outcome.all_delivered
    print(outcome.query_rounds)
"""

from repro.backends import (
    RouteResult,
    RoutingBackend,
    available_backends,
    get_backend,
)
from repro.core.router import ExpanderRouter, PreprocessArtifact, RoutingOutcome
from repro.core.tokens import RoutingRequest, Token
from repro.planner import CostModel, ExecutionPlan, QueryPlanner
from repro.service import ArtifactCache, BatchReport, ComparisonReport, RoutingService
from repro.workloads import Workload, available_workloads, make_workload

__version__ = "1.6.0"

__all__ = [
    "ExpanderRouter",
    "PreprocessArtifact",
    "RoutingOutcome",
    "RoutingRequest",
    "Token",
    "ArtifactCache",
    "BatchReport",
    "ComparisonReport",
    "RoutingService",
    "RouteResult",
    "RoutingBackend",
    "CostModel",
    "ExecutionPlan",
    "QueryPlanner",
    "available_backends",
    "get_backend",
    "Workload",
    "available_workloads",
    "make_workload",
    "__version__",
]
