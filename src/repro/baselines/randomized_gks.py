"""Randomized routing baseline in the spirit of Ghaffari-Kuhn-Su (GKS17).

GKS17 route by first *redistributing* tokens with lazy random walks (so the
token placement becomes oblivious to the adversarial input pattern) and then
delivering them along the randomly established low-congestion structure.  The
classical two-phase Valiant/GKS-style strategy we implement as the measured
randomized comparator is:

1. each token walks to an independently chosen random intermediate vertex
   (random-walk redistribution; we use the walk's endpoint after ``Theta(log n
   / phi^2)`` lazy steps, which is where the real algorithm's mixing argument
   lands), and
2. each token then follows a shortest path from its intermediate vertex to its
   destination.

Both phases are scheduled with the same deterministic scheduler as the other
baselines, so the reported rounds are comparable.  The point of the comparison
(experiment E2) is that the randomized strategy's congestion is
``O(log n)``-ish with high probability — the bound our deterministic machinery
matches without randomness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from repro.congest.scheduler import ScheduledToken, schedule_tokens_along_paths
from repro.core.tokens import RoutingRequest
from repro.graphs.conductance import estimate_conductance

__all__ = ["RandomizedRoutingOutcome", "route_randomized"]


@dataclass
class RandomizedRoutingOutcome:
    """Result of the randomized two-phase baseline.

    Attributes:
        rounds: total rounds over both scheduled phases plus the walk phase.
        walk_steps: number of lazy random-walk steps charged for redistribution.
        congestion: worst per-edge congestion over both delivery phases.
        dilation: longest path over both delivery phases.
        delivered: number of delivered tokens (always all).
        seed: the seed used (the baseline is randomized; ours is not).
    """

    rounds: int
    walk_steps: int
    congestion: int
    dilation: int
    delivered: int
    seed: int
    final_positions: dict[int, Hashable] = field(default_factory=dict)


def _lazy_walk_endpoint(
    graph: nx.Graph, start: Hashable, steps: int, rng: random.Random
) -> Hashable:
    current = start
    for _ in range(steps):
        if rng.random() < 0.5:
            continue
        neighbours = sorted(graph.neighbors(current))
        if neighbours:
            current = rng.choice(neighbours)
    return current


def route_randomized(
    graph: nx.Graph,
    requests: Sequence[RoutingRequest],
    seed: int = 0,
    phi: float | None = None,
) -> RandomizedRoutingOutcome:
    """Two-phase randomized routing: random-walk redistribution, then delivery."""
    rng = random.Random(seed)
    if phi is None:
        phi = max(estimate_conductance(graph, exact_threshold=10), 0.05)
    n = graph.number_of_nodes()
    walk_steps = max(1, int(math.ceil(2.0 * math.log(max(n, 2)) / (phi * phi))))

    ordered = sorted(
        requests, key=lambda request: (repr(request.source), repr(request.destination))
    )
    paths_from_cache: dict[Hashable, dict[Hashable, list]] = {}

    def shortest_path(source: Hashable, target: Hashable) -> list:
        if source not in paths_from_cache:
            paths_from_cache[source] = nx.single_source_shortest_path(graph, source)
        return paths_from_cache[source][target]

    phase1: list[ScheduledToken] = []
    phase2: list[ScheduledToken] = []
    final_positions: dict[int, Hashable] = {}
    for index, request in enumerate(ordered):
        intermediate = _lazy_walk_endpoint(graph, request.source, walk_steps, rng)
        phase1.append(
            ScheduledToken(token_id=index, path=tuple(shortest_path(request.source, intermediate)))
        )
        phase2.append(
            ScheduledToken(
                token_id=index, path=tuple(shortest_path(intermediate, request.destination))
            )
        )
        final_positions[index] = request.destination

    schedule1 = schedule_tokens_along_paths(phase1)
    schedule2 = schedule_tokens_along_paths(phase2)
    return RandomizedRoutingOutcome(
        rounds=walk_steps + schedule1.rounds + schedule2.rounds,
        walk_steps=walk_steps,
        congestion=max(schedule1.congestion, schedule2.congestion),
        dilation=max(schedule1.dilation, schedule2.dilation),
        delivered=len(ordered),
        seed=seed,
        final_positions=final_positions,
    )
