"""Naive direct routing baseline: store-and-forward along shortest paths.

The simplest correct routing strategy, used as the "no machinery" comparator
in experiment E2: every token follows a BFS shortest path from its source to
its destination, and all tokens are scheduled simultaneously with the
deterministic one-token-per-edge-per-round scheduler (Fact 2.2's naive
strategy).  On an expander the dilation is ``O(log n)`` but the congestion of
a heavy permutation can be ``Theta(n / log n)`` in the worst case, which is
exactly the gap the paper's machinery removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from repro.congest.scheduler import (
    ScheduledToken,
    schedule_token_batches,
    schedule_tokens_along_paths,
)
from repro.core.tokens import RoutingRequest

__all__ = ["DirectRoutingOutcome", "route_directly", "route_directly_many"]


@dataclass
class DirectRoutingOutcome:
    """Result of the naive baseline.

    Attributes:
        rounds: rounds used by the deterministic schedule.
        congestion: maximum number of token paths sharing an edge.
        dilation: longest token path.
        delivered: number of tokens that reached their destination (always all).
        final_positions: token index -> final vertex.
    """

    rounds: int
    congestion: int
    dilation: int
    delivered: int
    final_positions: dict[int, Hashable] = field(default_factory=dict)

    @property
    def quality(self) -> int:
        return self.congestion + self.dilation


def route_directly(graph: nx.Graph, requests: Sequence[RoutingRequest]) -> DirectRoutingOutcome:
    """Route every request along a BFS shortest path and schedule them together."""
    ordered = sorted(
        requests, key=lambda request: (repr(request.source), repr(request.destination))
    )
    # One BFS tree per distinct source is enough to extract all its paths.
    paths_from: dict[Hashable, dict[Hashable, list]] = {}
    tokens: list[ScheduledToken] = []
    for index, request in enumerate(ordered):
        if request.source not in paths_from:
            paths_from[request.source] = nx.single_source_shortest_path(graph, request.source)
        path = paths_from[request.source][request.destination]
        tokens.append(ScheduledToken(token_id=index, path=tuple(path)))
    schedule = schedule_tokens_along_paths(tokens)
    final_positions = {token.token_id: token.path[-1] for token in tokens}
    return DirectRoutingOutcome(
        rounds=schedule.rounds,
        congestion=schedule.congestion,
        dilation=schedule.dilation,
        delivered=len(tokens),
        final_positions=final_positions,
    )


def _scheduled_tokens(
    graph: nx.Graph,
    requests: Sequence[RoutingRequest],
    paths_from: dict[Hashable, dict[Hashable, list]],
) -> list[ScheduledToken]:
    """The request group's scheduler tokens, sharing one BFS-tree memo."""
    ordered = sorted(
        requests, key=lambda request: (repr(request.source), repr(request.destination))
    )
    tokens: list[ScheduledToken] = []
    for index, request in enumerate(ordered):
        if request.source not in paths_from:
            paths_from[request.source] = nx.single_source_shortest_path(graph, request.source)
        path = paths_from[request.source][request.destination]
        tokens.append(ScheduledToken(token_id=index, path=tuple(path)))
    return tokens


def route_directly_many(
    graph: nx.Graph, request_groups: Sequence[Sequence[RoutingRequest]]
) -> list[DirectRoutingOutcome]:
    """Route several same-graph request groups through one fused schedule.

    The fused twin of calling :func:`route_directly` per group: BFS trees are
    shared across groups, and every group's edge conflicts are resolved in a
    single stacked scheduler pass
    (:func:`~repro.congest.scheduler.schedule_token_batches`).  Outcomes per
    group are identical to the solo calls.
    """
    paths_from: dict[Hashable, dict[Hashable, list]] = {}
    token_batches = [
        _scheduled_tokens(graph, requests, paths_from) for requests in request_groups
    ]
    schedules = schedule_token_batches(token_batches)
    outcomes: list[DirectRoutingOutcome] = []
    for tokens, schedule in zip(token_batches, schedules):
        outcomes.append(
            DirectRoutingOutcome(
                rounds=schedule.rounds,
                congestion=schedule.congestion,
                dilation=schedule.dilation,
                delivered=len(tokens),
                final_positions={token.token_id: token.path[-1] for token in tokens},
            )
        )
    return outcomes
