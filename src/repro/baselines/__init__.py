"""Baselines the paper compares against: naive, randomized (GKS-style), CS20-style."""

from repro.baselines.cs20_model import (
    RebuildPerQueryRouter,
    cs20_predicted_rounds,
    gks_predicted_rounds,
)
from repro.baselines.direct_routing import DirectRoutingOutcome, route_directly
from repro.baselines.randomized_gks import RandomizedRoutingOutcome, route_randomized

__all__ = [
    "RebuildPerQueryRouter",
    "cs20_predicted_rounds",
    "gks_predicted_rounds",
    "DirectRoutingOutcome",
    "route_directly",
    "RandomizedRoutingOutcome",
    "route_randomized",
]
