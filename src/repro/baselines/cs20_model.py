"""CS20-style deterministic routing comparator (no preprocessing/query tradeoff).

The prior state of the art — Chang-Saranurak (FOCS 2020) — is deterministic
but (a) rebuilds its routing structures from scratch for every query and
(b) pays a ``poly(k) = n^{O(eps)}`` factor per query because it iterates over
all ``O(k^2)`` part pairs sequentially, giving
``poly(phi^-1) * 2^{O(log^{2/3} n log^{1/3} log n)}`` per routing instance.

No open-source implementation of CS20 exists; for the comparisons in
experiments E1/E2 we provide two comparators (DESIGN.md, substitution 4):

* :func:`cs20_predicted_rounds` — the analytic round bound with explicit,
  documented constants, used to draw the asymptotic comparison curve;
* :class:`RebuildPerQueryRouter` — a *measured* comparator that runs our own
  machinery but, like CS20, rebuilds all preprocessing state for every query
  and adds the sequential ``k^2`` pair-iteration factor to the query cost.
  This isolates exactly the two features the paper contributes (state reuse
  and no ``poly(k)`` query dependency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.core.router import ExpanderRouter, RoutingOutcome
from repro.core.tokens import RoutingRequest

__all__ = ["cs20_predicted_rounds", "gks_predicted_rounds", "RebuildPerQueryRouter"]


def cs20_predicted_rounds(n: int, phi: float = 0.25, constant: float = 1.0) -> float:
    """CS20's single-instance bound ``poly(phi^-1) * 2^{O(log^{2/3} n log^{1/3} log n)}``.

    The ``O(.)`` constant is taken to be 1 and the ``poly(phi^-1)`` to be
    ``phi^-2``; the function is only used to compare growth *shapes*, never
    absolute values.
    """
    n = max(n, 4)
    log_n = math.log2(n)
    loglog_n = math.log2(max(log_n, 2))
    exponent = constant * (log_n ** (2.0 / 3.0)) * (loglog_n ** (1.0 / 3.0))
    return (1.0 / (phi * phi)) * (2.0 ** exponent)


def gks_predicted_rounds(n: int, phi: float = 0.25, constant: float = 1.0) -> float:
    """GKS17's randomized bound ``poly(phi^-1) * 2^{O(sqrt(log n log log n))}`` (same conventions)."""
    n = max(n, 4)
    log_n = math.log2(n)
    loglog_n = math.log2(max(log_n, 2))
    exponent = constant * math.sqrt(log_n * loglog_n)
    return (1.0 / (phi * phi)) * (2.0 ** exponent)


@dataclass
class RebuildPerQueryOutcome:
    """Measured outcome of the rebuild-per-query comparator."""

    query_rounds: int
    delivered: int
    total_tokens: int

    @property
    def all_delivered(self) -> bool:
        return self.delivered == self.total_tokens


class RebuildPerQueryRouter:
    """A CS20-style comparator: correct, deterministic, but no state reuse.

    Every call to :meth:`route` builds the hierarchy and the shufflers from
    scratch and additionally charges the sequential pair-iteration factor
    ``t^2 / t = t`` on the root's part count (the CS20 algorithm handles the
    ``O(k^2)`` ``X_i``-``X_j`` pairs one after another instead of in parallel).
    """

    def __init__(self, graph: nx.Graph, epsilon: float = 0.5) -> None:
        self.graph = graph
        self.epsilon = epsilon

    def route(self, requests: Sequence[RoutingRequest], load: int | None = None) -> RebuildPerQueryOutcome:
        router = ExpanderRouter(self.graph, epsilon=self.epsilon)
        summary = router.preprocess()
        outcome: RoutingOutcome = router.route(requests, load=load)
        root_parts = max(1, len(router.decomposition.root.parts)) if router.decomposition else 1
        sequential_factor_rounds = root_parts * outcome.query_rounds
        return RebuildPerQueryOutcome(
            query_rounds=summary.rounds + sequential_factor_rounds,
            delivered=outcome.delivered,
            total_tokens=outcome.total_tokens,
        )
