"""Versioned, transport-neutral message dataclasses for the cluster tier.

Before this module the coordinator, the shard workers, and every report
consumer exchanged *live Python objects* (``ShardQuery`` carrying an
``nx.Graph``, ``BatchReport`` carrying backend-native result objects) — fine
inside one interpreter, impossible across a socket.  The wire layer redraws
that API: every message that crosses a layer boundary has a transport-neutral
dataclass here with

* an explicit ``schema_version`` field (payloads carry it as ``"v"``; a
  mismatched version is rejected at decode time with
  :class:`~repro.wire.codec.SchemaVersionError`);
* ``to_wire()`` / ``from_wire()`` — bytes via the msgpack-or-JSON codecs of
  :mod:`repro.wire.codec` (one codec id byte + body; framing lives in
  :mod:`repro.net.frames`);
* **unknown-field tolerance** — ``from_payload`` reads only the fields it
  knows, so a same-version peer that has grown extra fields (a rolling
  upgrade) still interoperates.

Two groups of messages are defined:

1. **Schema mirrors** of the in-process serving types —
   :class:`WireGraph`, :class:`WireRequest`, :class:`WirePlan`,
   :class:`WireShardQuery`, :class:`WireRouteResult`,
   :class:`WireQueryResult`, :class:`WireBatchReport`,
   :class:`WireAdmissionStats`, :class:`WireClusterReport` — each with
   ``from_*``/``to_*`` converters.  The mirrors preserve every field that
   :meth:`~repro.service.BatchReport.signature` and
   :meth:`~repro.cluster.ClusterReport.signature` cover, which is what makes
   signatures byte-identical across ``transport="local"`` and
   ``transport="tcp"`` (``raw`` backend objects and non-scalar ``extra``
   diagnostics are deliberately dropped — they are process-local).
2. **Protocol messages** for the transports in :mod:`repro.net` — shard RPC
   (:class:`ShardProcessRequest` / :class:`ShardProcessReply`), the gateway's
   client API (:class:`SubmitRequest` .. :class:`DispatchDoneReply`), and the
   control plane (:class:`Ping`, :class:`Shutdown`, :class:`ErrorReply`).

Wire values are restricted to JSON-safe trees (str keys; str / int / float /
bool / None leaves; nested lists and dicts).  Graph vertices and edge data
must be JSON-safe scalars — every graph the generators produce qualifies, and
the restriction is what guarantees the *reconstructed* graph has the same
canonical fingerprint as the original (the parity the placement layer needs).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Mapping, Sequence, TypeVar

import networkx as nx

from repro.cluster.admission import AdmissionStats
from repro.cluster.worker import ShardQuery
from repro.core.tokens import RoutingRequest
from repro.planner import ExecutionPlan
from repro.service.service import BatchReport, QueryResult
from repro.wire.codec import (
    WIRE_VERSION,
    SchemaVersionError,
    WireDecodeError,
    WireEncodeError,
    decode_payload,
    encode_payload,
)

__all__ = [
    "WireMessage",
    "decode_message",
    "message_from_wire",
    "WireGraph",
    "WireRequest",
    "WirePlan",
    "WireShardQuery",
    "WireRouteResult",
    "WireQueryResult",
    "WireBatchReport",
    "WireAdmissionStats",
    "WireClusterReport",
    "Ping",
    "Pong",
    "Shutdown",
    "ShutdownAck",
    "Hello",
    "HelloReply",
    "NeedGraphReply",
    "ErrorReply",
    "ShardProcessRequest",
    "ShardProcessReply",
    "ShardStatsRequest",
    "ShardStatsReply",
    "SubmitRequest",
    "SubmitReply",
    "DispatchRequest",
    "DispatchShardReply",
    "DispatchDoneReply",
    "StatsRequest",
    "StatsReply",
    "JournalAdmit",
    "JournalComplete",
    "JournalCheckpoint",
]

_SCALARS = (str, int, float, bool)


def _scalar(value: Any, what: str) -> Any:
    """``value`` as a JSON-safe scalar (unwraps numpy scalars), or raise."""
    if value is None or isinstance(value, _SCALARS):
        return value
    item = getattr(value, "item", None)  # numpy scalar -> python scalar
    if callable(item):
        unwrapped = item()
        if unwrapped is None or isinstance(unwrapped, _SCALARS):
            return unwrapped
    raise WireEncodeError(f"{what} {value!r} ({type(value).__name__}) is not wire-safe")


def _tree(value: Any, what: str) -> Any:
    """``value`` as a JSON-safe tree (scalars, lists, str-keyed dicts)."""
    if isinstance(value, (list, tuple)):
        return [_tree(entry, what) for entry in value]
    if isinstance(value, Mapping):
        out = {}
        for key, entry in value.items():
            if not isinstance(key, str):
                raise WireEncodeError(f"{what} key {key!r} is not a string")
            out[key] = _tree(entry, what)
        return out
    return _scalar(value, what)


def _safe_tree(value: Any) -> tuple[bool, Any]:
    """Best-effort :func:`_tree`; ``(ok, encoded)`` instead of raising."""
    try:
        return True, _tree(value, "value")
    except WireEncodeError:
        return False, None


_M = TypeVar("_M", bound="WireMessage")


@dataclass(frozen=True)
class WireMessage:
    """Base class: version checking, the type registry, and the byte codecs.

    Subclasses declare a unique ``type`` tag, implement ``to_payload`` /
    ``_fields_from_payload``, and are registered via :func:`_register` so
    :func:`decode_message` can dispatch on the tag.
    """

    type: ClassVar[str] = ""

    def _envelope(self) -> dict[str, Any]:
        return {"type": self.type, "v": self.schema_version}

    def to_payload(self) -> dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        """The constructor kwargs encoded in ``payload`` (known fields only)."""
        raise NotImplementedError  # pragma: no cover - abstract

    @classmethod
    def from_payload(cls: type[_M], payload: Mapping[str, Any]) -> _M:
        """Decode one payload dict (version-checked, unknown fields ignored)."""
        version = payload.get("v")
        if version != WIRE_VERSION:
            raise SchemaVersionError(
                f"{cls.type or cls.__name__}: wire schema v{version!r} is not "
                f"supported (this peer speaks v{WIRE_VERSION})"
            )
        declared = payload.get("type")
        if declared is not None and cls.type and declared != cls.type:
            raise WireDecodeError(f"expected message type {cls.type!r}, got {declared!r}")
        try:
            return cls(schema_version=version, **cls._fields_from_payload(payload))
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise WireDecodeError(f"malformed {cls.type!r} payload: {error}") from error

    def to_wire(self, codec: int | None = None) -> bytes:
        """This message as bytes: one codec id byte followed by the body."""
        codec_id, body = encode_payload(self.to_payload(), codec)
        return bytes((codec_id,)) + body

    @classmethod
    def from_wire(cls: type[_M], data: bytes) -> _M:
        """Decode :meth:`to_wire` bytes; subclasses additionally check the type."""
        if not data:
            raise WireDecodeError("empty wire message")
        message = decode_message(decode_payload(data[0], data[1:]))
        if cls is not WireMessage and not isinstance(message, cls):
            raise WireDecodeError(
                f"expected a {cls.type!r} message, got {message.type!r}"
            )
        return message


_MESSAGE_TYPES: dict[str, type[WireMessage]] = {}


def _register(cls: type[_M]) -> type[_M]:
    if not cls.type or cls.type in _MESSAGE_TYPES:
        raise ValueError(f"wire message type {cls.type!r} is missing or duplicated")
    _MESSAGE_TYPES[cls.type] = cls
    return cls


def decode_message(payload: Mapping[str, Any]) -> WireMessage:
    """Dispatch one decoded payload dict to its registered message class."""
    tag = payload.get("type")
    cls = _MESSAGE_TYPES.get(tag)
    if cls is None:
        raise WireDecodeError(f"unknown wire message type {tag!r}")
    return cls.from_payload(payload)


def message_from_wire(data: bytes) -> WireMessage:
    """Decode any registered message from :meth:`WireMessage.to_wire` bytes."""
    return WireMessage.from_wire(data)


# -- schema mirrors ----------------------------------------------------------------


@_register
@dataclass(frozen=True)
class WireGraph(WireMessage):
    """A graph as plain data: vertex list plus ``(u, v, data)`` edge rows.

    Vertices and edge-data values must be JSON-safe scalars; the reconstructed
    graph then produces the *same canonical fingerprint payload* as the
    original, so placement keys and cache keys agree across the wire.
    """

    type: ClassVar[str] = "graph"

    nodes: tuple = ()
    edges: tuple = ()
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "WireGraph":
        nodes = tuple(_scalar(node, "graph vertex") for node in graph.nodes())
        edges = tuple(
            (
                _scalar(u, "graph vertex"),
                _scalar(v, "graph vertex"),
                {str(key): _scalar(value, "edge data") for key, value in data.items()},
            )
            for u, v, data in graph.edges(data=True)
        )
        return cls(nodes=nodes, edges=edges)

    def to_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        for u, v, data in self.edges:
            graph.add_edge(u, v, **data)
        return graph

    def fingerprint(self) -> str:
        """Content hash of the canonical payload (stable across peers).

        Both ends of a connection compute this over the *encoded* graph, so a
        client's fingerprint-only submit and the server's negotiation-cache
        key agree byte for byte.  Memoized per instance — graphs are replayed
        query after query and hashing a payload is not free.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = self.to_payload()
            payload.pop("v", None)
            cached = hashlib.sha256(
                json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["nodes"] = list(self.nodes)
        payload["edges"] = [[u, v, dict(data)] for u, v, data in self.edges]
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "nodes": tuple(payload["nodes"]),
            "edges": tuple((u, v, dict(data)) for u, v, data in payload["edges"]),
        }


@_register
@dataclass(frozen=True)
class WireRequest(WireMessage):
    """One routing request (source, destination, optional scalar payload)."""

    type: ClassVar[str] = "request"

    source: Any = None
    destination: Any = None
    payload: Any = None
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_request(cls, request: RoutingRequest) -> "WireRequest":
        return cls(
            source=_scalar(request.source, "request source"),
            destination=_scalar(request.destination, "request destination"),
            payload=_tree(request.payload, "request payload"),
        )

    def to_request(self) -> RoutingRequest:
        return RoutingRequest(
            source=self.source, destination=self.destination, payload=self.payload
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["source"] = self.source
        payload["destination"] = self.destination
        payload["payload"] = self.payload
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "source": payload["source"],
            "destination": payload["destination"],
            "payload": payload.get("payload"),
        }


@_register
@dataclass(frozen=True)
class WirePlan(WireMessage):
    """An :class:`~repro.planner.ExecutionPlan` as plain data.

    Every field of the plan is carried — including placement and provenance —
    so the reconstructed plan is ``==`` to the original and its
    ``semantic_id`` / ``plan_id`` hashes are byte-identical (backend
    parameters are JSON-safe scalars, whose ``repr`` survives the round
    trip).
    """

    type: ClassVar[str] = "plan"

    backend: str = ""
    backend_params: dict = field(default_factory=dict)
    kernel: str = "numpy"
    parallelism: str = "threads"
    max_workers: int | None = None
    chunk_size: int | None = None
    fused: bool = False
    artifact_transport: str = "pickle"
    shard_hint: str | None = None
    policy: str = "fixed"
    reason: str = ""
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_plan(cls, plan: ExecutionPlan) -> "WirePlan":
        return cls(
            backend=plan.backend,
            backend_params=_tree(dict(plan.backend_params), "backend params"),
            kernel=plan.kernel,
            parallelism=plan.parallelism,
            max_workers=plan.max_workers,
            chunk_size=plan.chunk_size,
            fused=plan.fused,
            artifact_transport=plan.artifact_transport,
            shard_hint=plan.shard_hint,
            policy=plan.policy,
            reason=plan.reason,
        )

    def to_plan(self) -> ExecutionPlan:
        return ExecutionPlan(
            backend=self.backend,
            backend_params=dict(self.backend_params),
            kernel=self.kernel,
            parallelism=self.parallelism,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            fused=self.fused,
            artifact_transport=self.artifact_transport,
            shard_hint=self.shard_hint,
            policy=self.policy,
            reason=self.reason,
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["backend"] = self.backend
        payload["backend_params"] = dict(self.backend_params)
        payload["kernel"] = self.kernel
        payload["parallelism"] = self.parallelism
        payload["max_workers"] = self.max_workers
        payload["chunk_size"] = self.chunk_size
        payload["fused"] = self.fused
        payload["artifact_transport"] = self.artifact_transport
        payload["shard_hint"] = self.shard_hint
        payload["policy"] = self.policy
        payload["reason"] = self.reason
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "backend": payload["backend"],
            "backend_params": dict(payload.get("backend_params") or {}),
            "kernel": payload.get("kernel", "numpy"),
            "parallelism": payload.get("parallelism", "threads"),
            "max_workers": payload.get("max_workers"),
            "chunk_size": payload.get("chunk_size"),
            # Peers one schema behind omit the fused/transport knobs; their
            # plans execute un-fused over the spill path, which is always
            # result-identical.
            "fused": bool(payload.get("fused", False)),
            "artifact_transport": payload.get("artifact_transport", "pickle"),
            "shard_hint": payload.get("shard_hint"),
            "policy": payload.get("policy", "fixed"),
            "reason": payload.get("reason", ""),
        }


@_register
@dataclass(frozen=True)
class WireShardQuery(WireMessage):
    """The coordinator→shard hand-off (:class:`~repro.cluster.ShardQuery`) on the wire.

    ``graph`` may be ``None`` when the peer is expected to resolve the graph
    from ``graph_ref`` (the :meth:`WireGraph.fingerprint` content hash) —
    either a per-request graph table (:attr:`ShardProcessRequest.graphs`) or
    the server's negotiation cache.  Journal records always carry the full
    graph: replay must never depend on a peer's cache.
    """

    type: ClassVar[str] = "shard-query"

    fingerprint: str = ""
    graph: WireGraph | None = field(default_factory=WireGraph)
    graph_ref: str = ""
    requests: tuple = ()
    load: int | None = None
    backend: str = ""
    backend_params: dict = field(default_factory=dict)
    workload: str = ""
    plan: WirePlan | None = None
    idempotency_key: str = ""
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_shard_query(
        cls,
        query: ShardQuery,
        wire_graph: WireGraph | None = None,
        omit_graph: bool = False,
    ) -> "WireShardQuery":
        """Encode one hand-off; ``wire_graph`` reuses a pre-encoded graph.

        With ``omit_graph`` the query ships only ``graph_ref`` — the sender
        must guarantee the receiver can resolve it (graph table or a
        previously acknowledged upload).
        """
        graph = wire_graph if wire_graph is not None else WireGraph.from_graph(query.graph)
        return cls(
            fingerprint=query.fingerprint,
            graph=None if omit_graph else graph,
            graph_ref=graph.fingerprint() if (omit_graph or wire_graph is not None) else "",
            requests=tuple(WireRequest.from_request(request) for request in query.requests),
            load=query.load,
            backend=query.backend,
            backend_params=_tree(dict(query.backend_params), "backend params"),
            workload=query.workload,
            plan=WirePlan.from_plan(query.plan) if query.plan is not None else None,
            idempotency_key=query.idempotency_key,
        )

    def to_shard_query(self, graph: nx.Graph | None = None) -> ShardQuery:
        """Decode back to a live query; ``graph`` supplies a resolved graph
        when the wire form shipped only ``graph_ref``."""
        if graph is None:
            if self.graph is None:
                raise WireDecodeError(
                    f"shard query {self.fingerprint!r} shipped no graph and no "
                    f"resolved graph was supplied for ref {self.graph_ref!r}"
                )
            graph = self.graph.to_graph()
        return ShardQuery(
            fingerprint=self.fingerprint,
            graph=graph,
            requests=tuple(request.to_request() for request in self.requests),
            load=self.load,
            backend=self.backend,
            backend_params=dict(self.backend_params),
            workload=self.workload,
            plan=self.plan.to_plan() if self.plan is not None else None,
            idempotency_key=self.idempotency_key,
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["fingerprint"] = self.fingerprint
        payload["graph"] = self.graph.to_payload() if self.graph is not None else None
        payload["graph_ref"] = self.graph_ref
        payload["requests"] = [request.to_payload() for request in self.requests]
        payload["load"] = self.load
        payload["backend"] = self.backend
        payload["backend_params"] = dict(self.backend_params)
        payload["workload"] = self.workload
        payload["plan"] = self.plan.to_payload() if self.plan is not None else None
        payload["idempotency_key"] = self.idempotency_key
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        plan = payload.get("plan")
        graph = payload.get("graph")
        return {
            "fingerprint": payload["fingerprint"],
            "graph": WireGraph.from_payload(graph) if graph is not None else None,
            "graph_ref": payload.get("graph_ref", ""),
            "requests": tuple(
                WireRequest.from_payload(entry) for entry in payload.get("requests", [])
            ),
            "load": payload.get("load"),
            "backend": payload["backend"],
            "backend_params": dict(payload.get("backend_params") or {}),
            "workload": payload.get("workload", ""),
            "plan": WirePlan.from_payload(plan) if plan is not None else None,
            "idempotency_key": payload.get("idempotency_key", ""),
        }


@_register
@dataclass(frozen=True)
class WireRouteResult(WireMessage):
    """The shared :class:`~repro.backends.RouteResult` schema on the wire.

    ``raw`` (the backend-native outcome object) never crosses the wire, and
    ``extra`` keeps only its JSON-safe entries — both are diagnostics; every
    field the batch signature covers is preserved exactly.
    """

    type: ClassVar[str] = "route-result"

    backend: str = ""
    delivered: int = 0
    total_tokens: int = 0
    query_rounds: int = 0
    preprocess_rounds: int = 0
    load: int = 1
    extra: dict = field(default_factory=dict)
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_result(cls, result) -> "WireRouteResult":
        extra = {}
        for key, value in getattr(result, "extra", {}).items():
            ok, encoded = _safe_tree(value)
            if ok:
                extra[str(key)] = encoded
        return cls(
            backend=result.backend,
            delivered=int(result.delivered),
            total_tokens=int(result.total_tokens),
            query_rounds=int(result.query_rounds),
            preprocess_rounds=int(result.preprocess_rounds),
            load=int(result.load),
            extra=extra,
        )

    def to_result(self):
        from repro.backends.base import RouteResult

        return RouteResult(
            backend=self.backend,
            delivered=self.delivered,
            total_tokens=self.total_tokens,
            query_rounds=self.query_rounds,
            preprocess_rounds=self.preprocess_rounds,
            load=self.load,
            extra=dict(self.extra),
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["backend"] = self.backend
        payload["delivered"] = self.delivered
        payload["total_tokens"] = self.total_tokens
        payload["query_rounds"] = self.query_rounds
        payload["preprocess_rounds"] = self.preprocess_rounds
        payload["load"] = self.load
        payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "backend": payload["backend"],
            "delivered": int(payload["delivered"]),
            "total_tokens": int(payload["total_tokens"]),
            "query_rounds": int(payload["query_rounds"]),
            "preprocess_rounds": int(payload["preprocess_rounds"]),
            "load": int(payload.get("load", 1)),
            "extra": dict(payload.get("extra") or {}),
        }


@_register
@dataclass(frozen=True)
class WireQueryResult(WireMessage):
    """One :class:`~repro.service.QueryResult` on the wire."""

    type: ClassVar[str] = "query-result"

    query_id: int = 0
    fingerprint: str = ""
    backend: str = ""
    outcome: WireRouteResult = field(default_factory=WireRouteResult)
    cache_hit: bool = False
    seconds: float = 0.0
    workload: str = ""
    plan: WirePlan | None = None
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_result(cls, result: QueryResult) -> "WireQueryResult":
        return cls(
            query_id=int(result.query_id),
            fingerprint=result.fingerprint,
            backend=result.backend,
            outcome=WireRouteResult.from_result(result.outcome),
            cache_hit=bool(result.cache_hit),
            seconds=float(result.seconds),
            workload=result.workload,
            plan=WirePlan.from_plan(result.plan) if result.plan is not None else None,
        )

    def to_result(self) -> QueryResult:
        return QueryResult(
            query_id=self.query_id,
            fingerprint=self.fingerprint,
            backend=self.backend,
            outcome=self.outcome.to_result(),
            cache_hit=self.cache_hit,
            seconds=self.seconds,
            workload=self.workload,
            plan=self.plan.to_plan() if self.plan is not None else None,
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["query_id"] = self.query_id
        payload["fingerprint"] = self.fingerprint
        payload["backend"] = self.backend
        payload["outcome"] = self.outcome.to_payload()
        payload["cache_hit"] = self.cache_hit
        payload["seconds"] = self.seconds
        payload["workload"] = self.workload
        payload["plan"] = self.plan.to_payload() if self.plan is not None else None
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        plan = payload.get("plan")
        return {
            "query_id": int(payload["query_id"]),
            "fingerprint": payload["fingerprint"],
            "backend": payload["backend"],
            "outcome": WireRouteResult.from_payload(payload["outcome"]),
            "cache_hit": bool(payload["cache_hit"]),
            "seconds": float(payload.get("seconds", 0.0)),
            "workload": payload.get("workload", ""),
            "plan": WirePlan.from_payload(plan) if plan is not None else None,
        }


@_register
@dataclass(frozen=True)
class WireBatchReport(WireMessage):
    """A shard's reply — :class:`~repro.service.BatchReport` — on the wire.

    ``from_report(report).to_report().signature() == report.signature()``
    byte for byte: every count, round total, and per-result field the
    signature covers is carried exactly.
    """

    type: ClassVar[str] = "batch-report"

    results: tuple = ()
    distinct_graphs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    preprocess_rounds_incurred: int = 0
    preprocess_rounds_reused: int = 0
    preprocess_seconds: float = 0.0
    route_seconds: float = 0.0
    wall_seconds: float = 0.0
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_report(cls, report: BatchReport) -> "WireBatchReport":
        return cls(
            results=tuple(WireQueryResult.from_result(result) for result in report.results),
            distinct_graphs=int(report.distinct_graphs),
            cache_hits=int(report.cache_hits),
            cache_misses=int(report.cache_misses),
            preprocess_rounds_incurred=int(report.preprocess_rounds_incurred),
            preprocess_rounds_reused=int(report.preprocess_rounds_reused),
            preprocess_seconds=float(report.preprocess_seconds),
            route_seconds=float(report.route_seconds),
            wall_seconds=float(report.wall_seconds),
        )

    def to_report(self) -> BatchReport:
        return BatchReport(
            results=[result.to_result() for result in self.results],
            distinct_graphs=self.distinct_graphs,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            preprocess_rounds_incurred=self.preprocess_rounds_incurred,
            preprocess_rounds_reused=self.preprocess_rounds_reused,
            preprocess_seconds=self.preprocess_seconds,
            route_seconds=self.route_seconds,
            wall_seconds=self.wall_seconds,
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["results"] = [result.to_payload() for result in self.results]
        payload["distinct_graphs"] = self.distinct_graphs
        payload["cache_hits"] = self.cache_hits
        payload["cache_misses"] = self.cache_misses
        payload["preprocess_rounds_incurred"] = self.preprocess_rounds_incurred
        payload["preprocess_rounds_reused"] = self.preprocess_rounds_reused
        payload["preprocess_seconds"] = self.preprocess_seconds
        payload["route_seconds"] = self.route_seconds
        payload["wall_seconds"] = self.wall_seconds
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "results": tuple(
                WireQueryResult.from_payload(entry) for entry in payload.get("results", [])
            ),
            "distinct_graphs": int(payload.get("distinct_graphs", 0)),
            "cache_hits": int(payload.get("cache_hits", 0)),
            "cache_misses": int(payload.get("cache_misses", 0)),
            "preprocess_rounds_incurred": int(payload.get("preprocess_rounds_incurred", 0)),
            "preprocess_rounds_reused": int(payload.get("preprocess_rounds_reused", 0)),
            "preprocess_seconds": float(payload.get("preprocess_seconds", 0.0)),
            "route_seconds": float(payload.get("route_seconds", 0.0)),
            "wall_seconds": float(payload.get("wall_seconds", 0.0)),
        }


@_register
@dataclass(frozen=True)
class WireAdmissionStats(WireMessage):
    """The admission ledger (:class:`~repro.cluster.AdmissionStats`) on the wire."""

    type: ClassVar[str] = "admission-stats"

    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_stats(cls, stats: AdmissionStats) -> "WireAdmissionStats":
        return cls(
            offered=int(stats.offered),
            accepted=int(stats.accepted),
            rejected=int(stats.rejected),
            shed=int(stats.shed),
        )

    def to_stats(self) -> AdmissionStats:
        return AdmissionStats(
            offered=self.offered,
            accepted=self.accepted,
            rejected=self.rejected,
            shed=self.shed,
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["offered"] = self.offered
        payload["accepted"] = self.accepted
        payload["rejected"] = self.rejected
        payload["shed"] = self.shed
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "offered": int(payload.get("offered", 0)),
            "accepted": int(payload.get("accepted", 0)),
            "rejected": int(payload.get("rejected", 0)),
            "shed": int(payload.get("shed", 0)),
        }


@_register
@dataclass(frozen=True)
class WireClusterReport(WireMessage):
    """A merged dispatch cycle (:class:`~repro.cluster.ClusterReport`) on the wire."""

    type: ClassVar[str] = "cluster-report"

    shard_reports: dict = field(default_factory=dict)
    dispatch_seconds: float = 0.0
    admission: WireAdmissionStats = field(default_factory=WireAdmissionStats)
    lost_batches: int = 0
    requeued_batches: int = 0
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_report(cls, report) -> "WireClusterReport":
        return cls(
            shard_reports={
                shard_id: WireBatchReport.from_report(shard_report)
                for shard_id, shard_report in report.shard_reports.items()
            },
            dispatch_seconds=float(report.dispatch_seconds),
            admission=WireAdmissionStats.from_stats(report.admission),
            lost_batches=int(report.lost_batches),
            requeued_batches=int(report.requeued_batches),
        )

    def to_report(self):
        from repro.cluster.coordinator import ClusterReport

        return ClusterReport(
            shard_reports={
                shard_id: wire_report.to_report()
                for shard_id, wire_report in self.shard_reports.items()
            },
            dispatch_seconds=self.dispatch_seconds,
            admission=self.admission.to_stats(),
            lost_batches=self.lost_batches,
            requeued_batches=self.requeued_batches,
        )

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["shard_reports"] = {
            shard_id: report.to_payload() for shard_id, report in self.shard_reports.items()
        }
        payload["dispatch_seconds"] = self.dispatch_seconds
        payload["admission"] = self.admission.to_payload()
        payload["lost_batches"] = self.lost_batches
        payload["requeued_batches"] = self.requeued_batches
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "shard_reports": {
                shard_id: WireBatchReport.from_payload(entry)
                for shard_id, entry in (payload.get("shard_reports") or {}).items()
            },
            "dispatch_seconds": float(payload.get("dispatch_seconds", 0.0)),
            "admission": WireAdmissionStats.from_payload(
                payload.get("admission") or WireAdmissionStats().to_payload()
            ),
            "lost_batches": int(payload.get("lost_batches", 0)),
            "requeued_batches": int(payload.get("requeued_batches", 0)),
        }


# -- protocol messages -------------------------------------------------------------


def _simple(type_tag: str, doc: str) -> Callable[[type], type]:
    """Decorator factory for field-less control messages."""

    def wrap(cls: type) -> type:
        cls.type = type_tag
        cls.__doc__ = doc
        cls.to_payload = WireMessage._envelope
        cls._fields_from_payload = classmethod(lambda _cls, _payload: {})
        return _register(dataclass(frozen=True)(cls))

    return wrap


@_simple("ping", "Liveness probe.")
class Ping(WireMessage):
    schema_version: int = WIRE_VERSION


@_simple("pong", "Liveness reply.")
class Pong(WireMessage):
    schema_version: int = WIRE_VERSION


@_simple("shutdown", "Orderly server shutdown request.")
class Shutdown(WireMessage):
    schema_version: int = WIRE_VERSION


@_simple("shutdown-ack", "The server acknowledges shutdown and will stop.")
class ShutdownAck(WireMessage):
    schema_version: int = WIRE_VERSION


@_simple("shard-stats-request", "Ask a shard server for its lifetime stats row.")
class ShardStatsRequest(WireMessage):
    schema_version: int = WIRE_VERSION


@_simple("stats-request", "Ask the gateway for cluster-level admission/queue stats.")
class StatsRequest(WireMessage):
    schema_version: int = WIRE_VERSION


@_register
@dataclass(frozen=True)
class ErrorReply(WireMessage):
    """A request-level failure (``code`` is machine-readable, e.g. ``deadline``)."""

    type: ClassVar[str] = "error"

    code: str = "error"
    message: str = ""
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["code"] = self.code
        payload["message"] = self.message
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"code": payload.get("code", "error"), "message": payload.get("message", "")}


@_register
@dataclass(frozen=True)
class Hello(WireMessage):
    """Peer → server, first frame on a connection: negotiate the wire codec.

    ``codecs`` is the peer's supported codec names, best first; ``features``
    advertises optional protocol extensions (e.g. ``"need-graph"`` for
    fingerprint-negotiated payloads).  Rolling-upgrade tolerant both ways: a
    server that predates the handshake answers ``ErrorReply(code="unsupported")``
    and the peer falls back to per-message defaults; a peer that never says
    hello is served with the defaults too.
    """

    type: ClassVar[str] = "hello"

    codecs: tuple = ("json",)
    features: tuple = ()
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["codecs"] = list(self.codecs)
        payload["features"] = list(self.features)
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "codecs": tuple(payload.get("codecs") or ("json",)),
            "features": tuple(payload.get("features") or ()),
        }


@_register
@dataclass(frozen=True)
class HelloReply(WireMessage):
    """Server → peer: the codec chosen for this connection plus server features."""

    type: ClassVar[str] = "hello-reply"

    codec: str = "json"
    features: tuple = ()
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["codec"] = self.codec
        payload["features"] = list(self.features)
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "codec": payload.get("codec", "json"),
            "features": tuple(payload.get("features") or ()),
        }


@_register
@dataclass(frozen=True)
class NeedGraphReply(WireMessage):
    """Server → peer: the named graph fingerprints are not cached here.

    Answers a fingerprint-only submit (or a deduped shard slice) whose graph
    the server cannot resolve — the peer re-sends with the full graph payload
    attached.  Not an error: it is the one-time-upload half of the
    fingerprint negotiation.
    """

    type: ClassVar[str] = "need-graph"

    fingerprints: tuple = ()
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["fingerprints"] = list(self.fingerprints)
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"fingerprints": tuple(payload.get("fingerprints") or ())}


@_register
@dataclass(frozen=True)
class ShardProcessRequest(WireMessage):
    """Coordinator → shard server: serve one scatter slice as a batch.

    ``graphs`` maps a :meth:`WireGraph.fingerprint` content hash to its graph,
    shipped **once per distinct graph** for the queries that omit theirs.  A
    query whose ``graph_ref`` is in neither the table nor the server's cache
    makes the server answer :class:`NeedGraphReply` instead of a report.
    """

    type: ClassVar[str] = "shard-process"

    queries: tuple = ()
    graphs: dict = field(default_factory=dict)
    schema_version: int = WIRE_VERSION

    @classmethod
    def from_queries(cls, queries: Sequence[ShardQuery]) -> "ShardProcessRequest":
        return cls(queries=tuple(WireShardQuery.from_shard_query(query) for query in queries))

    def to_queries(self) -> list[ShardQuery]:
        return [query.to_shard_query() for query in self.queries]

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["queries"] = [query.to_payload() for query in self.queries]
        payload["graphs"] = {ref: graph.to_payload() for ref, graph in self.graphs.items()}
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "queries": tuple(
                WireShardQuery.from_payload(entry) for entry in payload.get("queries", [])
            ),
            "graphs": {
                ref: WireGraph.from_payload(entry)
                for ref, entry in (payload.get("graphs") or {}).items()
            },
        }


@_register
@dataclass(frozen=True)
class ShardProcessReply(WireMessage):
    """Shard server → coordinator: the slice's :class:`WireBatchReport`."""

    type: ClassVar[str] = "shard-report"

    report: WireBatchReport = field(default_factory=WireBatchReport)
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["report"] = self.report.to_payload()
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"report": WireBatchReport.from_payload(payload["report"])}


@_register
@dataclass(frozen=True)
class ShardStatsReply(WireMessage):
    """Shard server → coordinator: the shard's lifetime serving row."""

    type: ClassVar[str] = "shard-stats"

    row: dict = field(default_factory=dict)
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["row"] = dict(self.row)
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"row": dict(payload.get("row") or {})}


@_register
@dataclass(frozen=True)
class SubmitRequest(WireMessage):
    """Client → gateway: plan, place, and enqueue one routing query.

    ``deadline`` is a *relative* budget in seconds (client and server clocks
    never compare absolute times); the gateway stamps arrival and refuses the
    submit once the budget has lapsed.

    ``graph`` may be ``None`` when ``graph_fingerprint`` names a graph the
    gateway's negotiation cache has seen (the steady-state fast path: request
    bytes are metadata only).  A fingerprint the gateway does not know is
    answered with :class:`NeedGraphReply`, and the client re-sends with the
    full graph attached — a one-time upload per graph per gateway.
    """

    type: ClassVar[str] = "submit"

    graph: WireGraph | None = None
    graph_fingerprint: str = ""
    requests: tuple = ()
    load: int | None = None
    backend: str | None = None
    backend_params: dict | None = None
    workload: str = ""
    deadline: float | None = None
    idempotency_key: str | None = None
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["graph"] = self.graph.to_payload() if self.graph is not None else None
        payload["graph_fingerprint"] = self.graph_fingerprint
        payload["requests"] = [request.to_payload() for request in self.requests]
        payload["load"] = self.load
        payload["backend"] = self.backend
        payload["backend_params"] = (
            dict(self.backend_params) if self.backend_params is not None else None
        )
        payload["workload"] = self.workload
        payload["deadline"] = self.deadline
        payload["idempotency_key"] = self.idempotency_key
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        params = payload.get("backend_params")
        graph = payload.get("graph")
        return {
            "graph": WireGraph.from_payload(graph) if graph is not None else None,
            "graph_fingerprint": payload.get("graph_fingerprint", ""),
            "requests": tuple(
                WireRequest.from_payload(entry) for entry in payload.get("requests", [])
            ),
            "load": payload.get("load"),
            "backend": payload.get("backend"),
            "backend_params": dict(params) if params is not None else None,
            "workload": payload.get("workload", ""),
            "deadline": payload.get("deadline"),
            "idempotency_key": payload.get("idempotency_key"),
        }


@_register
@dataclass(frozen=True)
class SubmitReply(WireMessage):
    """Gateway → client: the admission outcome of one submit."""

    type: ClassVar[str] = "submit-reply"

    shard_id: str = ""
    accepted: bool = False
    shed: int = 0
    duplicate: bool = False
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["shard_id"] = self.shard_id
        payload["accepted"] = self.accepted
        payload["shed"] = self.shed
        payload["duplicate"] = self.duplicate
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "shard_id": payload.get("shard_id", ""),
            "accepted": bool(payload.get("accepted", False)),
            "shed": int(payload.get("shed", 0)),
            "duplicate": bool(payload.get("duplicate", False)),
        }


@_register
@dataclass(frozen=True)
class DispatchRequest(WireMessage):
    """Client → gateway: drain the queues and scatter/gather once.

    The gateway *streams* one :class:`DispatchShardReply` per busy shard as
    each completes, then a :class:`DispatchDoneReply`.  ``deadline`` is a
    relative budget; shards not started by the deadline have their admitted
    work requeued (never lost) and are listed in the done frame.
    """

    type: ClassVar[str] = "dispatch"

    deadline: float | None = None
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["deadline"] = self.deadline
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"deadline": payload.get("deadline")}


@_register
@dataclass(frozen=True)
class DispatchShardReply(WireMessage):
    """Gateway → client: one shard's batch report, streamed on completion."""

    type: ClassVar[str] = "dispatch-shard"

    shard_id: str = ""
    report: WireBatchReport = field(default_factory=WireBatchReport)
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["shard_id"] = self.shard_id
        payload["report"] = self.report.to_payload()
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "shard_id": payload.get("shard_id", ""),
            "report": WireBatchReport.from_payload(payload["report"]),
        }


@_register
@dataclass(frozen=True)
class DispatchDoneReply(WireMessage):
    """Gateway → client: the dispatch cycle is complete.

    ``expired`` lists shards whose slice hit the request deadline before it
    was started; their work was requeued, not lost.
    """

    type: ClassVar[str] = "dispatch-done"

    dispatch_seconds: float = 0.0
    admission: WireAdmissionStats = field(default_factory=WireAdmissionStats)
    expired: tuple = ()
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["dispatch_seconds"] = self.dispatch_seconds
        payload["admission"] = self.admission.to_payload()
        payload["expired"] = list(self.expired)
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "dispatch_seconds": float(payload.get("dispatch_seconds", 0.0)),
            "admission": WireAdmissionStats.from_payload(
                payload.get("admission") or WireAdmissionStats().to_payload()
            ),
            "expired": tuple(payload.get("expired", ())),
        }


@_register
@dataclass(frozen=True)
class StatsReply(WireMessage):
    """Gateway → client: cluster-level admission totals and queue depths."""

    type: ClassVar[str] = "stats-reply"

    admission: WireAdmissionStats = field(default_factory=WireAdmissionStats)
    queue_depths: dict = field(default_factory=dict)
    shard_count: int = 0
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["admission"] = self.admission.to_payload()
        payload["queue_depths"] = dict(self.queue_depths)
        payload["shard_count"] = self.shard_count
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "admission": WireAdmissionStats.from_payload(
                payload.get("admission") or WireAdmissionStats().to_payload()
            ),
            "queue_depths": {
                shard_id: int(depth)
                for shard_id, depth in (payload.get("queue_depths") or {}).items()
            },
            "shard_count": int(payload.get("shard_count", 0)),
        }


# -- elastic-tier messages: heartbeats, fault injection, artifact handoff ----------


@_simple("heartbeat", "Coordinator → shard: liveness probe expecting a heartbeat reply.")
class HeartbeatRequest(WireMessage):
    schema_version: int = WIRE_VERSION


@_register
@dataclass(frozen=True)
class HeartbeatReply(WireMessage):
    """Shard → coordinator: alive, plus the serving counters a health check reads."""

    type: ClassVar[str] = "heartbeat-reply"

    shard_id: str = ""
    healthy: bool = True
    batches_served: int = 0
    queries_served: int = 0
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["shard_id"] = self.shard_id
        payload["healthy"] = self.healthy
        payload["batches_served"] = self.batches_served
        payload["queries_served"] = self.queries_served
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "shard_id": payload.get("shard_id", ""),
            "healthy": bool(payload.get("healthy", True)),
            "batches_served": int(payload.get("batches_served", 0)),
            "queries_served": int(payload.get("queries_served", 0)),
        }


@_register
@dataclass(frozen=True)
class FaultInjectRequest(WireMessage):
    """Coordinator → shard: apply one chaos fault inside the server process.

    Only the faults the *server* can simulate travel over the wire (``slow``
    and ``heal``); a tcp ``crash`` kills the real process from the coordinator
    side, and a ``partition`` is enforced at the coordinator's connection.
    """

    type: ClassVar[str] = "fault-inject"

    kind: str = ""
    seconds: float = 0.0
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["kind"] = self.kind
        payload["seconds"] = self.seconds
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "kind": payload.get("kind", ""),
            "seconds": float(payload.get("seconds", 0.0)),
        }


@_register
@dataclass(frozen=True)
class FaultInjectReply(WireMessage):
    """Shard → coordinator: the fault was applied."""

    type: ClassVar[str] = "fault-inject-reply"

    applied: bool = True
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["applied"] = self.applied
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"applied": bool(payload.get("applied", True))}


@_register
@dataclass(frozen=True)
class ArtifactExportRequest(WireMessage):
    """Coordinator → shard: publish one warm artifact for cross-process adoption.

    The shard answers with the shared-memory segment name carrying the
    artifact; the bytes themselves never travel on this connection (that is
    the point — the shm plane is the data plane, the wire is control).
    """

    type: ClassVar[str] = "artifact-export"

    fingerprint: str = ""
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["fingerprint"] = self.fingerprint
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"fingerprint": payload.get("fingerprint", "")}


@_register
@dataclass(frozen=True)
class ArtifactExportReply(WireMessage):
    """Shard → coordinator: the published segment, or ``found=False``.

    ``found`` is false when the fingerprint is not warm on this shard or the
    shm plane is disabled — direct (in-object) handoff cannot cross a process
    boundary, so the adopter rebuilds instead.
    """

    type: ClassVar[str] = "artifact-export-reply"

    fingerprint: str = ""
    segment: str | None = None
    found: bool = False
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["fingerprint"] = self.fingerprint
        payload["segment"] = self.segment
        payload["found"] = self.found
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "fingerprint": payload.get("fingerprint", ""),
            "segment": payload.get("segment"),
            "found": bool(payload.get("found", False)),
        }


@_register
@dataclass(frozen=True)
class ArtifactAdoptRequest(WireMessage):
    """Coordinator → shard: attach a published segment and warm the cache with it."""

    type: ClassVar[str] = "artifact-adopt"

    fingerprint: str = ""
    segment: str = ""
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["fingerprint"] = self.fingerprint
        payload["segment"] = self.segment
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "fingerprint": payload.get("fingerprint", ""),
            "segment": payload.get("segment", ""),
        }


@_register
@dataclass(frozen=True)
class ArtifactAdoptReply(WireMessage):
    """Shard → coordinator: whether the segment was attached and adopted."""

    type: ClassVar[str] = "artifact-adopt-reply"

    adopted: bool = False
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["adopted"] = self.adopted
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {"adopted": bool(payload.get("adopted", False))}


# -- durability: write-ahead journal records ---------------------------------------


@_register
@dataclass(frozen=True)
class JournalAdmit(WireMessage):
    """Journal record: one submit's admission outcome, durable before dispatch.

    Accepted submissions carry the full wire-versioned :class:`WireShardQuery`
    (recovery re-admits it verbatim); rejected ones carry only the accounting.
    ``shed_keys`` lists idempotency keys dropped from the target queue under
    the ``shed-oldest`` policy — recovery must not resurrect them.
    """

    type: ClassVar[str] = "journal-admit"

    key: str = ""
    shard_id: str = ""
    accepted: bool = False
    shed_keys: tuple = ()
    query: WireShardQuery | None = None
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["key"] = self.key
        payload["shard_id"] = self.shard_id
        payload["accepted"] = self.accepted
        payload["shed_keys"] = list(self.shed_keys)
        payload["query"] = self.query.to_payload() if self.query is not None else None
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        query = payload.get("query")
        return {
            "key": payload.get("key", ""),
            "shard_id": payload.get("shard_id", ""),
            "accepted": bool(payload.get("accepted", False)),
            "shed_keys": tuple(payload.get("shed_keys") or ()),
            "query": WireShardQuery.from_payload(query) if query is not None else None,
        }


@_register
@dataclass(frozen=True)
class JournalComplete(WireMessage):
    """Journal record: one admitted batch served to completion on ``shard_id``.

    A key with a durable complete record is *done*: recovery dedups any later
    submit or replayed admit for it — exactly-once results, never
    re-execution.
    """

    type: ClassVar[str] = "journal-complete"

    key: str = ""
    fingerprint: str = ""
    shard_id: str = ""
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["key"] = self.key
        payload["fingerprint"] = self.fingerprint
        payload["shard_id"] = self.shard_id
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "key": payload.get("key", ""),
            "fingerprint": payload.get("fingerprint", ""),
            "shard_id": payload.get("shard_id", ""),
        }


@_register
@dataclass(frozen=True)
class JournalCheckpoint(WireMessage):
    """Journal record: the coordinator's full recoverable state at one instant.

    Written at journal-segment rotation, on membership changes, and every
    ``checkpoint_interval`` records; replay starts from the last checkpoint
    and folds the records after it.  Carries ring membership, the pending and
    completed idempotency-key state, warm-cache exemplars (in last-use order,
    so re-warmed LRU caches end up byte-identical), per-shard admission
    stats, the elastic lifetime counters, the hot-key/replica maps, and the
    planner's cost-model calibration.
    """

    type: ClassVar[str] = "journal-checkpoint"

    shard_ids: tuple = ()
    next_shard_index: int = 0
    seen_fingerprints: tuple = ()
    pending: tuple = ()  # WireShardQuery, admission order
    completed_keys: tuple = ()
    warm: tuple = ()  # WireShardQuery exemplars, last-use order
    auto_key_counter: int = 0
    admission: dict = field(default_factory=dict)  # shard -> stats dict
    lost_batches: int = 0
    requeued_batches: int = 0
    failovers: int = 0
    duplicate_results: int = 0
    hot_ewma: dict = field(default_factory=dict)
    replicas: dict = field(default_factory=dict)
    planner_state: dict | None = None
    planner_version: int = 0
    schema_version: int = WIRE_VERSION

    def to_payload(self) -> dict[str, Any]:
        payload = self._envelope()
        payload["shard_ids"] = list(self.shard_ids)
        payload["next_shard_index"] = self.next_shard_index
        payload["seen_fingerprints"] = list(self.seen_fingerprints)
        payload["pending"] = [query.to_payload() for query in self.pending]
        payload["completed_keys"] = list(self.completed_keys)
        payload["warm"] = [query.to_payload() for query in self.warm]
        payload["auto_key_counter"] = self.auto_key_counter
        payload["admission"] = {shard: dict(stats) for shard, stats in self.admission.items()}
        payload["lost_batches"] = self.lost_batches
        payload["requeued_batches"] = self.requeued_batches
        payload["failovers"] = self.failovers
        payload["duplicate_results"] = self.duplicate_results
        payload["hot_ewma"] = dict(self.hot_ewma)
        payload["replicas"] = {key: list(owners) for key, owners in self.replicas.items()}
        payload["planner_state"] = (
            {key: dict(entry) for key, entry in self.planner_state.items()}
            if self.planner_state is not None
            else None
        )
        payload["planner_version"] = self.planner_version
        return payload

    @classmethod
    def _fields_from_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        planner_state = payload.get("planner_state")
        return {
            "shard_ids": tuple(payload.get("shard_ids") or ()),
            "next_shard_index": int(payload.get("next_shard_index", 0)),
            "seen_fingerprints": tuple(payload.get("seen_fingerprints") or ()),
            "pending": tuple(
                WireShardQuery.from_payload(entry) for entry in payload.get("pending") or ()
            ),
            "completed_keys": tuple(payload.get("completed_keys") or ()),
            "warm": tuple(
                WireShardQuery.from_payload(entry) for entry in payload.get("warm") or ()
            ),
            "auto_key_counter": int(payload.get("auto_key_counter", 0)),
            "admission": {
                shard: dict(stats) for shard, stats in (payload.get("admission") or {}).items()
            },
            "lost_batches": int(payload.get("lost_batches", 0)),
            "requeued_batches": int(payload.get("requeued_batches", 0)),
            "failovers": int(payload.get("failovers", 0)),
            "duplicate_results": int(payload.get("duplicate_results", 0)),
            "hot_ewma": dict(payload.get("hot_ewma") or {}),
            "replicas": {
                key: tuple(owners) for key, owners in (payload.get("replicas") or {}).items()
            },
            "planner_state": (
                {key: dict(entry) for key, entry in planner_state.items()}
                if planner_state is not None
                else None
            ),
            "planner_version": int(payload.get("planner_version", 0)),
        }
