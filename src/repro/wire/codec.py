"""Payload codecs for the wire layer: msgpack when available, JSON otherwise.

A wire message body is one flat payload dict (plain strings, numbers, lists,
and dicts — see :mod:`repro.wire.messages`); this module turns that dict into
bytes and back.  Two codecs are defined:

* ``CODEC_JSON`` — always available (the stdlib), compact separators, UTF-8;
* ``CODEC_MSGPACK`` — used automatically when the optional ``msgpack``
  package is importable (the container this repo targets does not bake it
  in, so the import is gated rather than required).

Every encoded frame names its codec by id (one byte on the wire — see
:mod:`repro.net.frames`), so a JSON-only peer can always decode a JSON frame
and a msgpack-capable peer can answer in whichever codec the request used.
Encoding a value the codec cannot represent raises :class:`WireEncodeError`
rather than shipping a lossy approximation — the wire schema is restricted to
JSON-safe scalars by design (fingerprints must agree across the wire).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "WIRE_VERSION",
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "HAVE_MSGPACK",
    "DEFAULT_CODEC",
    "WireError",
    "WireEncodeError",
    "WireDecodeError",
    "SchemaVersionError",
    "codec_name",
    "codec_id",
    "supported_codec_names",
    "negotiate_codec",
    "encode_payload",
    "decode_payload",
]

#: The current wire schema version.  Every message payload carries it as
#: ``"v"``; decoding rejects any other value (rolling upgrades within one
#: version instead rely on unknown-field tolerance).
WIRE_VERSION = 1

CODEC_JSON = 0
CODEC_MSGPACK = 1

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack as _msgpack

    HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - the default in this container
    _msgpack = None
    HAVE_MSGPACK = False

#: The codec new frames are encoded with (decoding always accepts both).
DEFAULT_CODEC = CODEC_MSGPACK if HAVE_MSGPACK else CODEC_JSON

_CODEC_NAMES = {CODEC_JSON: "json", CODEC_MSGPACK: "msgpack"}


class WireError(Exception):
    """Base class for every wire-layer failure."""


class WireEncodeError(WireError):
    """A value cannot be represented in the wire schema (not JSON-safe)."""


class WireDecodeError(WireError):
    """Received bytes do not decode to a valid wire payload."""


class SchemaVersionError(WireDecodeError):
    """The peer speaks a different wire schema version."""


def codec_name(codec: int) -> str:
    """Human-readable name of a codec id (for errors and reports)."""
    return _CODEC_NAMES.get(codec, f"unknown({codec})")


def codec_id(name: str) -> int | None:
    """The codec id for a negotiated name, or ``None`` for an unknown name."""
    for known_id, known_name in _CODEC_NAMES.items():
        if known_name == name:
            return known_id
    return None


def supported_codec_names() -> tuple[str, ...]:
    """The codec names this process can *encode and decode*, best first.

    This is what a hello frame advertises: JSON is always supported, msgpack
    only when the optional package imported.
    """
    if HAVE_MSGPACK:  # pragma: no cover - optional dep
        return ("msgpack", "json")
    return ("json",)


def negotiate_codec(peer_names) -> int:
    """Pick the connection codec from a peer's advertised codec names.

    Chooses the best codec both sides support (msgpack when available on
    both, otherwise JSON).  Unknown names are ignored, so a peer from the
    future degrades to the common subset instead of failing the handshake.
    """
    ours = supported_codec_names()
    for name in ours:
        if name in tuple(peer_names):
            chosen = codec_id(name)
            if chosen is not None:
                return chosen
    return CODEC_JSON


def encode_payload(payload: dict[str, Any], codec: int | None = None) -> tuple[int, bytes]:
    """Encode one payload dict; returns ``(codec_id, body_bytes)``.

    ``codec=None`` picks :data:`DEFAULT_CODEC`.  Asking for msgpack without
    the package installed falls back to JSON (the frame records what was
    actually used, so the peer never guesses).
    """
    if codec is None:
        codec = DEFAULT_CODEC
    if codec == CODEC_MSGPACK and HAVE_MSGPACK:  # pragma: no cover - optional dep
        try:
            return CODEC_MSGPACK, _msgpack.packb(payload, use_bin_type=True)
        except (TypeError, ValueError) as error:
            raise WireEncodeError(f"payload is not msgpack-serializable: {error}") from error
    try:
        body = json.dumps(payload, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as error:
        raise WireEncodeError(f"payload is not JSON-serializable: {error}") from error
    return CODEC_JSON, body.encode("utf-8")


def decode_payload(codec: int, body: bytes) -> dict[str, Any]:
    """Decode one frame body back into its payload dict."""
    if codec == CODEC_MSGPACK:
        if not HAVE_MSGPACK:  # pragma: no cover - depends on the environment
            raise WireDecodeError("received a msgpack frame but msgpack is not installed")
        try:  # pragma: no cover - optional dep
            payload = _msgpack.unpackb(body, raw=False)
        except Exception as error:  # pragma: no cover - optional dep
            raise WireDecodeError(f"invalid msgpack body: {error}") from error
    elif codec == CODEC_JSON:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireDecodeError(f"invalid JSON body: {error}") from error
    else:
        raise WireDecodeError(f"unknown codec id {codec}")
    if not isinstance(payload, dict):
        raise WireDecodeError(f"wire payload must be a dict, got {type(payload).__name__}")
    return payload
