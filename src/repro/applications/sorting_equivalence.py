"""Equivalence of expander routing and expander sorting (Appendix F).

The paper's side result: the two problems are reducible to each other with
small overhead.

* **Lemma F.1** (sorting via a routing oracle): simulate a sorting network
  over the vertex ranks; each network layer is realised by one routing
  instance that unites the two compared token blocks on one vertex, sorts
  locally, and sends half back.  Cost: ``O(phi^-1 log n)`` for ranking plus
  ``O(log n)`` routing calls with the AKS network (``O(log^2 n)`` calls with
  our Batcher substitute — the per-call count is what the experiment reports).
* **Lemma F.2** (routing via a comparison-based sorting oracle): the
  meet-in-the-middle recipe — count incoming tokens per destination with a
  local aggregation, create that many dummy tokens per destination, interleave
  real (odd serials) and dummy (even serials) tokens by key, sort once with
  load ``2L``, and let each dummy carry its paired real token home.  Cost:
  ``O(1)`` sorting calls.

Both reductions are implemented against *oracle interfaces* so they can be run
either with the paper's own machinery (our router / expander sorter), with any
registered routing backend (:func:`routing_oracle_from_backend` turns a
:class:`~repro.backends.RoutingBackend` into a Lemma F.1 oracle), or with
idealised oracles in tests; both report how many oracle calls they made —
that count is the measured content of experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.backends.base import RoutingBackend
from repro.core.tokens import RoutingRequest
from repro.sorting.networks import SortingNetwork, batcher_odd_even_network

__all__ = [
    "SortRecord",
    "RouteRecord",
    "sorting_via_routing",
    "routing_via_sorting",
    "routing_oracle_from_backend",
]

#: A routing oracle: given {vertex: [(destination, item), ...]}, deliver every
#: item to its destination and return {vertex: [item, ...]}.
RoutingOracle = Callable[[dict[Hashable, list[tuple[Hashable, Any]]]], dict[Hashable, list[Any]]]

#: A sorting oracle: given {vertex: [(key, item), ...]} and the vertex order,
#: return {vertex: [(key, item), ...]} globally sorted along the vertex order.
SortingOracle = Callable[[dict[Hashable, list[tuple[Any, Any]]]], dict[Hashable, list[tuple[Any, Any]]]]


@dataclass
class SortRecord:
    """Result of sorting via a routing oracle (Lemma F.1)."""

    placement: dict[Hashable, list[tuple[Any, Any]]] = field(default_factory=dict)
    routing_calls: int = 0
    network_depth: int = 0


@dataclass
class RouteRecord:
    """Result of routing via a sorting oracle (Lemma F.2)."""

    delivered: dict[Hashable, list[Any]] = field(default_factory=dict)
    sorting_calls: int = 0


def routing_oracle_from_backend(backend: RoutingBackend) -> "RoutingOracle":
    """A Lemma F.1 routing oracle backed by any registered routing backend.

    Each oracle call turns the addressed demands into one Task 1 instance and
    routes it through ``backend``; the oracle raises if the backend fails to
    deliver (no current backend does).  ``oracle.query_rounds`` accumulates
    the measured CONGEST rounds across calls, so the F.1 reduction can report
    end-to-end cost per backend, not just call counts.
    """
    backend.preprocess()

    def oracle(
        demands: dict[Hashable, list[tuple[Hashable, Any]]],
    ) -> dict[Hashable, list[Any]]:
        delivered: dict[Hashable, list[Any]] = {vertex: [] for vertex in demands}
        requests = [
            RoutingRequest(source=vertex, destination=destination, payload=index)
            for vertex in sorted(demands, key=repr)
            for index, (destination, _item) in enumerate(demands[vertex])
        ]
        if not requests:
            return delivered
        result = backend.route(requests)
        oracle.query_rounds += result.query_rounds
        if not result.all_delivered:
            raise RuntimeError(
                f"backend {backend.name!r} delivered only "
                f"{result.delivered}/{result.total_tokens} oracle tokens"
            )
        for vertex in demands:
            for destination, item in demands[vertex]:
                delivered.setdefault(destination, []).append(item)
        return delivered

    oracle.query_rounds = 0
    return oracle


def sorting_via_routing(
    items_at: dict[Hashable, list[tuple[Any, Any]]],
    routing_oracle: RoutingOracle,
    load: int,
) -> SortRecord:
    """Lemma F.1: solve ExpanderSorting with one routing call per network layer.

    Args:
        items_at: per-vertex lists of ``(key, item)`` pairs (at most ``load`` each).
        routing_oracle: delivers addressed items (one call per network layer).
        load: the maximum load ``L``.
    """
    vertices = sorted(items_at.keys())
    if not vertices:
        return SortRecord()
    network: SortingNetwork = batcher_odd_even_network(len(vertices))
    record = SortRecord(network_depth=network.depth)

    # Pad every vertex to exactly `load` items with +infinity keys so the
    # merge-split argument applies (the paper adds dummy tokens the same way).
    padded: dict[Hashable, list[tuple[Any, Any]]] = {}
    for vertex in vertices:
        local = sorted(items_at[vertex], key=lambda pair: repr(pair[0]))
        local = sorted(items_at[vertex], key=_key_order)
        padding = [((1, None), "__pad__")] * (load - len(local))
        padded[vertex] = [(_wrap_key(key), item) for key, item in local] + padding

    for layer in network.layers:
        # One routing instance per layer: the higher-rank vertex of every
        # comparator sends its block to the lower-rank vertex ...
        demands: dict[Hashable, list[tuple[Hashable, Any]]] = {vertex: [] for vertex in vertices}
        for low_index, high_index in layer:
            low_vertex, high_vertex = vertices[low_index], vertices[high_index]
            for pair in padded[high_vertex]:
                demands[high_vertex].append((low_vertex, pair))
        routing_oracle(demands)
        record.routing_calls += 1
        # ... the union is sorted locally and the upper half is sent back
        # (the return trip reverses the same routes, charged to the same call).
        for low_index, high_index in layer:
            low_vertex, high_vertex = vertices[low_index], vertices[high_index]
            merged = sorted(padded[low_vertex] + padded[high_vertex], key=lambda pair: pair[0])
            padded[low_vertex] = merged[:load]
            padded[high_vertex] = merged[load:]

    record.placement = {
        vertex: [(key[1], item) for key, item in padded[vertex] if item != "__pad__"]
        for vertex in vertices
    }
    return record


def _wrap_key(key: Any) -> tuple:
    return (0, key)


def _key_order(pair: tuple[Any, Any]) -> tuple:
    return (0, pair[0])


def routing_via_sorting(
    tokens_at: dict[Hashable, list[tuple[Hashable, Any]]],
    sorting_oracle: SortingOracle,
    load: int,
) -> RouteRecord:
    """Lemma F.2: solve ExpanderRouting with O(1) calls to a sorting oracle.

    Args:
        tokens_at: per-vertex lists of ``(destination, item)`` pairs.
        sorting_oracle: sorts keyed items along the vertex-ID order.
        load: the maximum load ``L`` (per source and per destination).
    """
    vertices = sorted(tokens_at.keys())
    record = RouteRecord(delivered={vertex: [] for vertex in vertices})
    real = [
        (destination, item, vertex)
        for vertex in vertices
        for destination, item in tokens_at[vertex]
    ]
    if not real:
        return record

    # Call 1 (local aggregation via sorting): every destination learns how many
    # tokens are headed its way.  We charge one oracle call for it.
    counts: dict[Hashable, int] = {}
    for destination, _, _ in real:
        counts[destination] = counts.get(destination, 0) + 1
    record.sorting_calls += 1

    # Call 2 (local serialization via sorting): real tokens get odd serial
    # numbers, dummy tokens (N_v per destination v) get even serial numbers.
    record.sorting_calls += 1
    keyed: dict[Hashable, list[tuple[Any, Any]]] = {vertex: [] for vertex in vertices}
    serial_per_destination: dict[Hashable, int] = {}
    for destination, item, origin in sorted(real, key=lambda entry: (repr(entry[0]), repr(entry[2]))):
        serial = serial_per_destination.get(destination, 0)
        serial_per_destination[destination] = serial + 1
        keyed[origin].append(((repr(destination), 2 * serial + 1), ("real", destination, item)))
    for destination, count in counts.items():
        for serial in range(count):
            keyed[destination].append(
                ((repr(destination), 2 * serial + 2), ("dummy", destination, None))
            )

    # Call 3: the single sort with maximum load 2L interleaves each real token
    # with the dummy token generated at its destination.
    sorted_placement = sorting_oracle(keyed)
    record.sorting_calls += 1

    # Pair up: a real token and its following dummy token are now adjacent in
    # the global order; the dummy walks the real token back to the destination.
    flat: list[tuple[Any, Any]] = []
    for vertex in vertices:
        flat.extend(sorted_placement.get(vertex, []))
    flat.sort(key=lambda pair: pair[0])
    for (key, value), (_next_key, next_value) in zip(flat, flat[1:]):
        kind, destination, item = value
        next_kind, next_destination, _ = next_value
        if kind == "real" and next_kind == "dummy" and destination == next_destination:
            record.delivered[destination].append(item)
    return record
