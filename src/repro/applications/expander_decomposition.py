"""Deterministic (eps, phi) expander decomposition (substrate for Corollary 1.4).

An ``(eps, phi)`` expander decomposition of a graph removes at most an ``eps``
fraction of the edges so that every remaining connected component induces a
``phi``-expander.  The k-clique application (Corollary 1.4) runs the paper's
cheap routing queries *inside* the components of such a decomposition.

The decomposition algorithm here is the classic recursive sparse-cut scheme
(the same high-level scheme CS20 derandomize): test whether the current
component has a cut of conductance below ``phi`` (via the deterministic sweep
cut of the normalized Laplacian); if so, cut it and recurse on both sides,
otherwise certify the component.  The number of removed edges is bounded
because each removed edge can be charged to ``O(log n)`` levels of halving, as
in the standard analysis.

Round accounting follows the tradeoff discussed in the proof of Corollary 1.4:
the construction costs ``eps^{-O(1)} * n^{O(gamma)}`` rounds for conductance
parameter ``phi = 1/polylog(n)``; we charge a per-level cost proportional to
the component's size (the Det-Sparse-Cut work) summed over the recursion depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.graphs.conductance import sweep_cut

__all__ = ["ExpanderDecomposition", "decompose"]


@dataclass
class ExpanderDecomposition:
    """The result of an (eps, phi) expander decomposition.

    Attributes:
        components: vertex sets of the certified expander components.
        crossing_edges: edges removed by the decomposition (between components).
        phi: the conductance parameter each component was certified against.
        rounds: CONGEST rounds charged for the construction.
    """

    components: list[frozenset] = field(default_factory=list)
    crossing_edges: list[tuple] = field(default_factory=list)
    phi: float = 0.1
    rounds: int = 0

    def component_of(self) -> dict[Hashable, int]:
        """Vertex -> index of its component."""
        mapping: dict[Hashable, int] = {}
        for index, component in enumerate(self.components):
            for vertex in component:
                mapping[vertex] = index
        return mapping

    def removed_edge_fraction(self, graph: nx.Graph) -> float:
        """Fraction of the graph's edges removed by the decomposition."""
        m = graph.number_of_edges()
        if m == 0:
            return 0.0
        return len(self.crossing_edges) / m


def _decompose_component(
    graph: nx.Graph,
    vertices: frozenset,
    phi: float,
    min_component: int,
    depth: int,
    ledger: list[int],
) -> list[frozenset]:
    subgraph = graph.subgraph(vertices)
    ledger[0] += max(1, len(vertices))  # Det-Sparse-Cut work for this component.
    if len(vertices) <= min_component:
        return [vertices]
    if subgraph.number_of_edges() == 0:
        return [frozenset([v]) for v in vertices]
    if not nx.is_connected(subgraph):
        pieces: list[frozenset] = []
        for component in nx.connected_components(subgraph):
            pieces.extend(
                _decompose_component(
                    graph, frozenset(component), phi, min_component, depth + 1, ledger
                )
            )
        return pieces
    report = sweep_cut(subgraph)
    if report.conductance >= phi or depth > 2 * math.ceil(math.log2(max(len(vertices), 2))):
        return [vertices]
    side = frozenset(report.side)
    other = frozenset(vertices - side)
    if not side or not other:
        return [vertices]
    return _decompose_component(
        graph, side, phi, min_component, depth + 1, ledger
    ) + _decompose_component(graph, other, phi, min_component, depth + 1, ledger)


def decompose(
    graph: nx.Graph,
    phi: float = 0.1,
    min_component: int = 4,
) -> ExpanderDecomposition:
    """Compute an (eps, phi) expander decomposition of ``graph``.

    Every returned component of more than ``min_component`` vertices induces a
    subgraph with no sweep cut of conductance below ``phi``; components at or
    below ``min_component`` vertices are accepted as-is (they are handled by
    direct local computation in the applications).
    """
    if graph.number_of_nodes() == 0:
        return ExpanderDecomposition(phi=phi)
    ledger = [0]
    components: list[frozenset] = []
    for component in nx.connected_components(graph):
        components.extend(
            _decompose_component(graph, frozenset(component), phi, min_component, 0, ledger)
        )
    component_index: dict[Hashable, int] = {}
    for index, component in enumerate(components):
        for vertex in component:
            component_index[vertex] = index
    crossing = [
        (u, v)
        for u, v in graph.edges()
        if component_index[u] != component_index[v]
    ]
    return ExpanderDecomposition(
        components=components,
        crossing_edges=crossing,
        phi=phi,
        rounds=ledger[0],
    )
