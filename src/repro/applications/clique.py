"""Deterministic k-clique enumeration in general graphs (Corollary 1.4).

The paper's Corollary 1.4: all k-cliques can be listed deterministically in
``~O(n^{1-2/k})`` rounds, matching the lower bound up to polylog factors.  The
algorithm (following Censor-Hillel-Leitersdorf-Vulakh with the paper's cheap
routing queries) is:

1. compute an ``(eps, phi)`` expander decomposition with ``phi = 1/polylog n``;
2. inside every component, partition the listing work over the component's
   vertices and let each vertex learn the edges it needs through expander
   routing queries (each query is now ``polylog(n)`` rounds after the one-off
   preprocessing, which is what removes the ``n^{o(1)}`` overhead of CS20);
3. edges crossing between components are collected and handled in additional
   sweeps (every crossing edge is learned by the lower-ID endpoint's component).

Round accounting uses the bandwidth argument the lower bound is phrased in:
a vertex of degree ``d`` can receive ``d`` machine words per round, so a
listing step in which vertex ``v`` must learn ``W_v`` words costs
``max_v ceil(W_v / deg(v))`` rounds, plus one routing query per expander
component batch (polylog each, charged from the measured router).  The
enumeration itself is exhaustively verified against a brute-force listing.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.applications.expander_decomposition import ExpanderDecomposition, decompose
from repro.backends.base import RoutingBackend
from repro.core.tokens import RoutingRequest

__all__ = [
    "CliqueListingResult",
    "enumerate_cliques",
    "brute_force_cliques",
    "measured_query_round_cost",
]


@dataclass
class CliqueListingResult:
    """Outcome of the distributed k-clique enumeration.

    Attributes:
        cliques: all listed k-cliques (as sorted vertex tuples).
        k: the clique size searched for.
        rounds: CONGEST rounds charged.
        components: number of expander components of the decomposition.
        crossing_edges: number of removed (cross-component) edges.
        routing_queries: number of expander-routing query batches charged.
    """

    cliques: list[tuple] = field(default_factory=list)
    k: int = 3
    rounds: int = 0
    components: int = 0
    crossing_edges: int = 0
    routing_queries: int = 0


def brute_force_cliques(graph: nx.Graph, k: int) -> list[tuple]:
    """Reference listing of all k-cliques (exponential; for verification only)."""
    cliques: list[tuple] = []
    nodes = sorted(graph.nodes())
    adjacency = {v: set(graph.neighbors(v)) for v in nodes}
    for combo in itertools.combinations(nodes, k):
        if all(b in adjacency[a] for a, b in itertools.combinations(combo, 2)):
            cliques.append(tuple(combo))
    return cliques


def _list_cliques_with_edges(edges: set[tuple], candidate_vertices: Iterable, k: int) -> set[tuple]:
    """List k-cliques spanned by the given edge set, restricted to candidate vertices.

    Uses ordered extension (each clique is grown through its sorted vertex
    order), so the work is proportional to the number of smaller cliques
    examined rather than ``C(n, k)``.
    """
    candidates = set(candidate_vertices)
    adjacency: dict[Hashable, set] = {v: set() for v in candidates}
    for a, b in edges:
        if a in candidates and b in candidates:
            adjacency[a].add(b)
            adjacency[b].add(a)

    found: set[tuple] = set()

    def extend(clique: tuple, allowed: set) -> None:
        if len(clique) == k:
            found.add(clique)
            return
        last = clique[-1]
        for vertex in sorted(v for v in allowed if v > last):
            extend(clique + (vertex,), allowed & adjacency[vertex])

    for vertex in sorted(candidates):
        extend((vertex,), adjacency[vertex])
    return found


def measured_query_round_cost(backend: RoutingBackend) -> int:
    """Measure one permutation routing query on ``backend``'s own graph.

    The clique listing charges a fixed per-batch routing cost; instead of the
    polylog estimate, this measures what one load-1 permutation query actually
    costs through the given backend (preprocessing it first if needed), so
    the listing's round accounting is end to end for any registered backend.
    """
    vertices = sorted(backend.graph.nodes())
    n = len(vertices)
    if n < 2:
        return 1
    backend.preprocess()
    requests = [
        RoutingRequest(source=vertex, destination=vertices[(index + 1) % n])
        for index, vertex in enumerate(vertices)
    ]
    return max(1, backend.route(requests).query_rounds)


def enumerate_cliques(
    graph: nx.Graph,
    k: int = 3,
    phi: float | None = None,
    query_round_cost: int | None = None,
    backend: RoutingBackend | None = None,
) -> CliqueListingResult:
    """List every k-clique of ``graph`` deterministically (Corollary 1.4).

    Args:
        graph: a general graph (not necessarily an expander).
        k: clique size (k >= 3).
        phi: conductance parameter of the expander decomposition; defaults to
            ``1 / log2(n)`` (the ``1/polylog n`` choice of the corollary).
        query_round_cost: rounds charged per expander-routing query batch;
            defaults to a polylog estimate.
        backend: a :class:`~repro.backends.RoutingBackend` (built on a
            representative expander) whose measured per-query cost replaces
            the polylog estimate when ``query_round_cost`` is omitted — this
            is how the listing's accounting plugs into any routing strategy.
    """
    if k < 3:
        raise ValueError("k must be at least 3")
    n = graph.number_of_nodes()
    if n == 0:
        return CliqueListingResult(k=k)
    if phi is None:
        phi = 1.0 / max(math.log2(max(n, 4)), 2.0)
    if query_round_cost is None:
        if backend is not None:
            query_round_cost = measured_query_round_cost(backend)
        else:
            query_round_cost = int(math.log2(max(n, 4)) ** 3)

    decomposition: ExpanderDecomposition = decompose(graph, phi=phi)
    result = CliqueListingResult(
        k=k,
        components=len(decomposition.components),
        crossing_edges=len(decomposition.crossing_edges),
    )
    result.rounds += decomposition.rounds

    component_of = decomposition.component_of()
    found: set[tuple] = set()

    # Every vertex must learn the edges among the vertices it is responsible
    # for.  Following CHLV22, vertex v is responsible for the candidate sets
    # formed by its neighbourhood; the words it must receive are the edges
    # between its neighbours, delivered through routing inside its component
    # (crossing edges are broadcast to both endpoints' components first).
    crossing_by_component: dict[int, set[tuple]] = {}
    for u, v in decomposition.crossing_edges:
        for endpoint in (u, v):
            crossing_by_component.setdefault(component_of[endpoint], set()).add(
                (min(u, v), max(u, v))
            )

    adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes()}
    max_words_over_degree = 0
    for index, component in enumerate(decomposition.components):
        component_edges = {
            (min(u, v), max(u, v))
            for u in component
            for v in adjacency[u]
            if v in component and u < v
        }
        visible_edges = component_edges | crossing_by_component.get(index, set())
        # Words each vertex receives: the edges among its neighbours (its
        # candidate workload).  Bandwidth = its degree words per round.
        for v in component:
            neighbours = adjacency[v]
            words = sum(
                1
                for a, b in visible_edges
                if a in neighbours and b in neighbours
            )
            degree = max(1, graph.degree(v))
            max_words_over_degree = max(max_words_over_degree, math.ceil(words / degree))
        # One expander-routing query batch per component delivers the workload.
        result.routing_queries += 1
        # Cliques entirely visible to this component (its own vertices plus
        # crossing-edge endpoints it has learned about).
        candidate_vertices = set(component)
        for a, b in crossing_by_component.get(index, set()):
            candidate_vertices.update((a, b))
        found |= {
            clique
            for clique in _list_cliques_with_edges(visible_edges, candidate_vertices, k)
            if any(vertex in component for vertex in clique)
        }

    result.rounds += max_words_over_degree
    result.rounds += result.routing_queries * query_round_cost

    # Cliques using crossing edges only (no vertex inside any single component
    # sees all of them) are enumerated by a final sweep over the removed edges;
    # there are at most eps * m of them, gathered at the lowest-ID endpoint.
    if decomposition.crossing_edges:
        cross_edge_set = {
            (min(u, v), max(u, v)) for u, v in decomposition.crossing_edges
        }
        all_edges = {(min(u, v), max(u, v)) for u, v in graph.edges()}
        cross_vertices = {vertex for edge in cross_edge_set for vertex in edge}
        extra = _list_cliques_with_edges(all_edges, cross_vertices, k)
        extra = {
            clique
            for clique in extra
            if any((min(a, b), max(a, b)) in cross_edge_set
                   for a, b in itertools.combinations(clique, 2))
        }
        found |= extra
        result.rounds += math.ceil(len(cross_edge_set) / max(1, graph.number_of_nodes() ** 0.5))

    result.cliques = sorted(found)
    return result
