"""Deterministic MST on expanders via expander routing (Corollary 1.3).

The paper's Corollary 1.3: an MST of a phi-expander can be computed
deterministically in ``poly(phi^-1) * 2^{O(sqrt(log n log log n))}`` rounds,
because the Boruvka-style MST algorithm of GKS17/CS20 needs only
polylogarithmically many rounds of fragment bookkeeping plus polylogarithmically
many expander-routing invocations — and each invocation is now cheap thanks to
Theorem 1.1.

The implementation runs classic Boruvka: in each of the ``O(log n)`` phases,
every fragment selects its minimum-weight outgoing edge and fragments merge
along the selected edges.  Per phase the CONGEST costs charged are

* one broadcast/convergecast sweep inside every fragment (fragment diameters
  are bounded by the graph diameter ``O(phi^-1 log n)``), and
* one expander-routing query with constant load, through which fragment
  identifiers and selected edges are exchanged (this is the step whose cost
  the corollary improves).

Correctness is checked against Kruskal (``networkx.minimum_spanning_tree``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.backends.base import RoutingBackend, get_backend
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.graphs.conductance import estimate_conductance

__all__ = ["MSTResult", "boruvka_mst"]


@dataclass
class MSTResult:
    """Outcome of the distributed Boruvka MST computation.

    Attributes:
        edges: the MST edges (as sorted vertex pairs).
        total_weight: sum of the MST edge weights.
        phases: number of Boruvka phases executed.
        routing_queries: number of expander-routing invocations charged.
        rounds: total CONGEST rounds charged (fragment sweeps + routing queries).
        preprocessing_rounds: rounds of the router's preprocessing (reusable).
    """

    edges: list[tuple] = field(default_factory=list)
    total_weight: float = 0.0
    phases: int = 0
    routing_queries: int = 0
    rounds: int = 0
    preprocessing_rounds: int = 0


def _minimum_outgoing_edges(
    graph: nx.Graph, component_of: dict[Hashable, int]
) -> dict[int, tuple[float, Hashable, Hashable]]:
    """For every fragment, its minimum-weight outgoing edge (weight, u, v)."""
    best: dict[int, tuple[float, Hashable, Hashable]] = {}
    for u, v, data in graph.edges(data=True):
        cu, cv = component_of[u], component_of[v]
        if cu == cv:
            continue
        weight = data.get("weight", 1)
        key = (weight, min(u, v), max(u, v))
        candidate = (weight, min(u, v), max(u, v))
        for fragment in (cu, cv):
            if fragment not in best or candidate < best[fragment]:
                best[fragment] = candidate
    return best


def boruvka_mst(
    graph: nx.Graph,
    router: ExpanderRouter | None = None,
    epsilon: float = 0.5,
    backend: RoutingBackend | str | None = None,
) -> MSTResult:
    """Compute the MST of a weighted expander with Boruvka over expander routing.

    Args:
        graph: the weighted expander.
        router: an (optionally preprocessed) :class:`ExpanderRouter` to reuse;
            shorthand for passing a deterministic backend wrapping it.
        epsilon: tradeoff parameter when the deterministic backend is built
            here.
        backend: the routing backend the merge-proposal exchanges go through —
            a :class:`~repro.backends.RoutingBackend` instance, a registry
            name, or ``None`` for the paper's deterministic router.  Every
            backend yields the same MST; what changes is the round cost of the
            routing invocations (the comparison of Corollary 1.3).
    """
    if graph.number_of_nodes() == 0:
        return MSTResult()
    if backend is None:
        backend = "deterministic"
    if isinstance(backend, str):
        # Thread the explicit tradeoff arguments through to backends that take
        # them, so `boruvka_mst(graph, epsilon=..., backend="deterministic")`
        # and the router-reuse shorthand behave the same as the default path.
        params = {}
        if backend in ("deterministic", "rebuild-per-query"):
            params["epsilon"] = epsilon
        if backend == "deterministic" and router is not None:
            params["router"] = router
        backend = get_backend(backend, graph, **params)
    info = backend.preprocess()

    n = graph.number_of_nodes()
    phi = max(estimate_conductance(graph, exact_threshold=10), 0.05)
    fragment_diameter_bound = int(math.ceil(2.0 * math.log(max(n, 2)) / phi))

    component_of = {v: index for index, v in enumerate(sorted(graph.nodes()))}
    result = MSTResult(preprocessing_rounds=info.rounds)
    mst_edges: set[tuple] = set()

    while len(set(component_of.values())) > 1:
        result.phases += 1
        best = _minimum_outgoing_edges(graph, component_of)
        if not best:
            break
        # Every fragment announces its chosen edge to the fragment leader of
        # the other endpoint; this is one constant-load routing query: each
        # fragment leader sends one token to the leader of the neighbouring
        # fragment it wants to merge with.
        leaders = {}
        for fragment in set(component_of.values()):
            members = [v for v, c in component_of.items() if c == fragment]
            leaders[fragment] = min(members)
        requests = []
        for fragment, (weight, u, v) in sorted(best.items()):
            other = component_of[v] if component_of[u] == fragment else component_of[u]
            if other == fragment:
                continue
            requests.append(
                RoutingRequest(
                    source=leaders[fragment],
                    destination=leaders[other],
                    payload=("merge", weight, u, v),
                )
            )
        if requests:
            # Several fragments may target the same leader; the per-vertex load
            # is the number of incoming merge proposals, which Boruvka bounds
            # by the fragment's degree in the fragment graph.
            outcome = backend.route(requests)
            result.routing_queries += 1
            result.rounds += outcome.query_rounds
        # Fragment-internal sweep: broadcast the chosen edge + collect merges.
        result.rounds += 2 * fragment_diameter_bound

        # Merge fragments along the selected edges (computed consistently from
        # the same `best` map every leader now knows).
        union_parent = {fragment: fragment for fragment in set(component_of.values())}

        def find(fragment: int) -> int:
            while union_parent[fragment] != fragment:
                union_parent[fragment] = union_parent[union_parent[fragment]]
                fragment = union_parent[fragment]
            return fragment

        for fragment, (weight, u, v) in sorted(best.items()):
            ru, rv = find(component_of[u]), find(component_of[v])
            if ru != rv:
                union_parent[max(ru, rv)] = min(ru, rv)
                mst_edges.add((min(u, v), max(u, v)))
        component_of = {v: find(c) for v, c in component_of.items()}

        if result.phases > 2 * math.ceil(math.log2(max(n, 2))) + 4:
            raise RuntimeError("Boruvka did not converge within the expected phase bound")

    result.edges = sorted(mst_edges)
    result.total_weight = float(
        sum(graph[u][v].get("weight", 1) for u, v in result.edges)
    )
    return result
