"""Applications built on deterministic expander routing (Corollaries 1.3, 1.4, Appendix F)."""

from repro.applications.clique import CliqueListingResult, brute_force_cliques, enumerate_cliques
from repro.applications.expander_decomposition import ExpanderDecomposition, decompose
from repro.applications.mst import MSTResult, boruvka_mst
from repro.applications.sorting_equivalence import (
    RouteRecord,
    SortRecord,
    routing_via_sorting,
    sorting_via_routing,
)
from repro.applications.summarization import (
    AggregateResult,
    TopKResult,
    global_aggregate,
    top_k_frequent,
)

__all__ = [
    "CliqueListingResult",
    "brute_force_cliques",
    "enumerate_cliques",
    "ExpanderDecomposition",
    "decompose",
    "MSTResult",
    "boruvka_mst",
    "RouteRecord",
    "SortRecord",
    "routing_via_sorting",
    "sorting_via_routing",
    "AggregateResult",
    "TopKResult",
    "global_aggregate",
    "top_k_frequent",
]
