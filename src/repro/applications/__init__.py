"""Applications built on deterministic expander routing (Corollaries 1.3, 1.4, Appendix F)."""

from repro.applications.clique import (
    CliqueListingResult,
    brute_force_cliques,
    enumerate_cliques,
    measured_query_round_cost,
)
from repro.applications.expander_decomposition import ExpanderDecomposition, decompose
from repro.applications.mst import MSTResult, boruvka_mst
from repro.applications.sorting_equivalence import (
    RouteRecord,
    SortRecord,
    routing_oracle_from_backend,
    routing_via_sorting,
    sorting_via_routing,
)
from repro.applications.summarization import (
    AggregateResult,
    TopKResult,
    global_aggregate,
    top_k_frequent,
)

__all__ = [
    "CliqueListingResult",
    "brute_force_cliques",
    "enumerate_cliques",
    "measured_query_round_cost",
    "routing_oracle_from_backend",
    "ExpanderDecomposition",
    "decompose",
    "MSTResult",
    "boruvka_mst",
    "RouteRecord",
    "SortRecord",
    "routing_via_sorting",
    "sorting_via_routing",
    "AggregateResult",
    "TopKResult",
    "global_aggregate",
    "top_k_frequent",
]
