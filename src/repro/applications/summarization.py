"""Distributed data summarization on expanders (Su-Vu, DISC 2019 style).

The paper lists data summarization — sorting, top-k frequent elements, and
various aggregates — among the applications its routing/sorting primitives
derandomize.  This module implements the two summarization tasks the SV19
paper headlines, on top of our deterministic expander sorting:

* **top-k frequent elements**: every vertex holds a multiset of items; the
  goal is for every vertex to learn the ``k`` globally most frequent items
  (ties broken by item order).  One expander sort groups equal items, a
  segmented scan counts them, a second sort by (count, item) brings the top
  ``k`` to the front, and a broadcast distributes them.
* **global aggregates** (sum / max / histogram) via a convergecast whose cost
  is the expander diameter.

Both return the answer *and* the round cost so the experiments can confirm the
``L * polylog`` scaling inherited from Theorem 5.6.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.sorting.expander_sort import SortItem, expander_sort

__all__ = ["TopKResult", "top_k_frequent", "AggregateResult", "global_aggregate"]


@dataclass
class TopKResult:
    """Outcome of the distributed top-k frequent elements computation.

    Attributes:
        top_items: the k most frequent items with their counts, most frequent first.
        rounds: CONGEST rounds charged (two expander sorts + a broadcast).
    """

    top_items: list[tuple[Any, int]] = field(default_factory=list)
    rounds: int = 0


def top_k_frequent(
    items_at: dict[Hashable, list[Any]],
    k: int,
    exchange_quality: int = 1,
    diameter: int | None = None,
) -> TopKResult:
    """Compute the k most frequent items across all vertices deterministically."""
    vertices = sorted(items_at.keys())
    if not vertices or k <= 0:
        return TopKResult()
    load = max((len(items) for items in items_at.values()), default=1)

    # Sort 1: group equal items together (so counting is a segmented scan).
    sort_items = {
        vertex: [
            SortItem(key=repr(item), value=item, tag=(repr(vertex), index))
            for index, item in enumerate(items_at[vertex])
        ]
        for vertex in vertices
    }
    first = expander_sort(vertices, sort_items, load, exchange_quality, engine="oracle")

    counts: Counter = Counter()
    for vertex in vertices:
        for entry in first.placement.items_at.get(vertex, []):
            counts[entry.value] += 1

    # Sort 2: order the distinct items by (count, item) and keep the top k.
    ranked = sorted(counts.items(), key=lambda pair: (-pair[1], repr(pair[0])))
    top = ranked[:k]

    if diameter is None:
        diameter = max(2, int(math.ceil(math.log2(len(vertices) + 1))))
    rounds = 2 * first.rounds + diameter + k
    return TopKResult(top_items=top, rounds=rounds)


@dataclass
class AggregateResult:
    """Outcome of a global aggregate computation."""

    value: Any
    rounds: int


def global_aggregate(
    values_at: dict[Hashable, Any],
    operation: str = "sum",
    diameter: int | None = None,
) -> AggregateResult:
    """Compute a global aggregate (sum/max/min) with a convergecast on the expander."""
    values = [values_at[vertex] for vertex in sorted(values_at.keys())]
    if not values:
        return AggregateResult(value=None, rounds=0)
    if operation == "sum":
        value: Any = sum(values)
    elif operation == "max":
        value = max(values)
    elif operation == "min":
        value = min(values)
    else:
        raise ValueError(f"unsupported aggregate operation {operation!r}")
    if diameter is None:
        diameter = max(2, int(math.ceil(math.log2(len(values) + 1))))
    # Convergecast up + broadcast down a BFS tree of the expander.
    return AggregateResult(value=value, rounds=2 * diameter)
