"""Cut and expansion measures used throughout the paper.

The paper (Section 2) works with two expansion measures:

* **Conductance** ``Phi(S) = |delta(S)| / min(vol(S), vol(V \\ S))`` and
  ``Phi(G) = min_S Phi(S)``.
* **Sparsity** (edge expansion) ``Psi(S) = |delta(S)| / min(|S|, |V \\ S|)``
  and ``Psi(G) = min_S Psi(S)``.

Computing the exact conductance of a graph is NP-hard, so — exactly as the
experimental literature does — we expose three levels of estimators:

* exact brute force for tiny graphs (used in tests),
* a spectral (Cheeger) lower bound via the normalized Laplacian, and
* a sweep-cut upper bound from the Fiedler vector.

All functions accept :class:`networkx.Graph` objects and treat them as
unweighted multigraph-free simple graphs unless stated otherwise.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable

import networkx as nx
import numpy as np

from repro.kernels import use_numpy

__all__ = [
    "CutReport",
    "cut_edges",
    "volume",
    "cut_conductance",
    "cut_sparsity",
    "exact_conductance",
    "exact_sparsity",
    "spectral_gap",
    "cheeger_bounds",
    "sweep_cut",
    "estimate_conductance",
    "diameter_upper_bound",
    "is_expander",
]


@dataclass(frozen=True)
class CutReport:
    """A cut together with the measures the paper cares about.

    Attributes:
        side: the smaller side of the cut (by the relevant denominator).
        crossing_edges: number of edges leaving ``side``.
        conductance: ``Phi(side)``.
        sparsity: ``Psi(side)``.
    """

    side: frozenset
    crossing_edges: int
    conductance: float
    sparsity: float


def volume(graph: nx.Graph, nodes: Iterable) -> int:
    """Return ``vol(S) = sum_{v in S} deg(v)``."""
    return sum(graph.degree(v) for v in nodes)


def cut_edges(graph: nx.Graph, side: Iterable) -> int:
    """Return ``|delta(S)|``, the number of edges with exactly one endpoint in ``side``."""
    side_set = set(side)
    count = 0
    for u in side_set:
        for v in graph.neighbors(u):
            if v not in side_set:
                count += 1
    return count


def cut_conductance(graph: nx.Graph, side: Iterable) -> float:
    """Conductance ``Phi(S)`` of the cut ``(S, V \\ S)``.

    Returns ``math.inf`` for trivial cuts (empty or full vertex set).
    """
    side_set = set(side)
    if not side_set or len(side_set) >= graph.number_of_nodes():
        return math.inf
    boundary = cut_edges(graph, side_set)
    denom = min(volume(graph, side_set), volume(graph, set(graph.nodes()) - side_set))
    if denom == 0:
        return math.inf
    return boundary / denom


def cut_sparsity(graph: nx.Graph, side: Iterable) -> float:
    """Sparsity (edge expansion) ``Psi(S)`` of the cut ``(S, V \\ S)``."""
    side_set = set(side)
    n = graph.number_of_nodes()
    if not side_set or len(side_set) >= n:
        return math.inf
    boundary = cut_edges(graph, side_set)
    denom = min(len(side_set), n - len(side_set))
    return boundary / denom


def _cut_report(graph: nx.Graph, side: Iterable) -> CutReport:
    side_set = frozenset(side)
    return CutReport(
        side=side_set,
        crossing_edges=cut_edges(graph, side_set),
        conductance=cut_conductance(graph, side_set),
        sparsity=cut_sparsity(graph, side_set),
    )


def exact_conductance(graph: nx.Graph) -> float:
    """Exact graph conductance ``Phi(G)`` by brute force over all cuts.

    Exponential in ``n``; intended for graphs with at most ~16 vertices in
    tests and validation code.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        return math.inf
    if use_numpy():
        from repro.kernels.conductance import exact_conductance_numpy

        return exact_conductance_numpy(graph)
    best = math.inf
    # Enumerate subsets containing nodes[0] to avoid double counting.
    rest = nodes[1:]
    for r in range(0, n - 1):
        for combo in itertools.combinations(rest, r):
            side = {nodes[0], *combo}
            if len(side) == n:
                continue
            best = min(best, cut_conductance(graph, side))
    return best


def exact_sparsity(graph: nx.Graph) -> float:
    """Exact graph sparsity ``Psi(G)`` by brute force over all cuts."""
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        return math.inf
    if use_numpy():
        from repro.kernels.conductance import exact_sparsity_numpy

        return exact_sparsity_numpy(graph)
    best = math.inf
    rest = nodes[1:]
    for r in range(0, n - 1):
        for combo in itertools.combinations(rest, r):
            side = {nodes[0], *combo}
            if len(side) == n:
                continue
            best = min(best, cut_sparsity(graph, side))
    return best


def _normalized_laplacian_eigs(graph: nx.Graph, k: int = 2) -> np.ndarray:
    """Return the ``k`` smallest eigenvalues of the normalized Laplacian."""
    if graph.number_of_nodes() == 0:
        return np.array([])
    lap = nx.normalized_laplacian_matrix(graph).todense()
    eigenvalues = np.linalg.eigvalsh(np.asarray(lap))
    return eigenvalues[:k]


def spectral_gap(graph: nx.Graph) -> float:
    """Second-smallest eigenvalue ``lambda_2`` of the normalized Laplacian.

    For a connected graph ``lambda_2 > 0``; by Cheeger's inequality
    ``lambda_2 / 2 <= Phi(G) <= sqrt(2 * lambda_2)``.
    """
    if graph.number_of_nodes() < 2:
        return 0.0
    eigenvalues = _normalized_laplacian_eigs(graph, k=2)
    return float(eigenvalues[1])


def cheeger_bounds(graph: nx.Graph) -> tuple[float, float]:
    """Return ``(lower, upper)`` bounds on ``Phi(G)`` from Cheeger's inequality."""
    gap = spectral_gap(graph)
    return gap / 2.0, math.sqrt(2.0 * gap)


def sweep_cut(graph: nx.Graph) -> CutReport:
    """Return the best sweep cut along the Fiedler vector of the normalized Laplacian.

    This is the standard constructive companion to Cheeger's inequality: sort
    vertices by their Fiedler-vector entry (normalized by sqrt(deg)) and take
    the best prefix cut.  The returned cut's conductance is an *upper bound*
    on ``Phi(G)``.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        return _cut_report(graph, nodes[:1])
    lap = np.asarray(nx.normalized_laplacian_matrix(graph, nodelist=nodes).todense())
    eigenvalues, eigenvectors = np.linalg.eigh(lap)
    fiedler = eigenvectors[:, 1]
    degrees = np.array([max(graph.degree(v), 1) for v in nodes], dtype=float)
    scores = fiedler / np.sqrt(degrees)
    order = sorted(range(n), key=lambda i: (scores[i], nodes[i]))
    if use_numpy():
        from repro.kernels.conductance import sweep_cut_best_prefix_numpy

        best_k = sweep_cut_best_prefix_numpy(graph, nodes, order)
        return _cut_report(graph, {nodes[i] for i in order[: best_k + 1]})
    best_report: CutReport | None = None
    prefix: set = set()
    for idx in order[:-1]:
        prefix.add(nodes[idx])
        report = _cut_report(graph, prefix)
        if best_report is None or report.conductance < best_report.conductance:
            best_report = report
    assert best_report is not None
    return best_report


def estimate_conductance(graph: nx.Graph, exact_threshold: int = 12) -> float:
    """Best available estimate of ``Phi(G)``.

    Uses brute force for graphs with at most ``exact_threshold`` vertices and
    the sweep-cut upper bound otherwise (sweep cuts are exact on the graph
    families used in the experiments up to small constants, and they are the
    estimator the distributed expander-decomposition literature itself uses).
    """
    if graph.number_of_nodes() <= exact_threshold:
        return exact_conductance(graph)
    return sweep_cut(graph).conductance


def diameter_upper_bound(n: int, phi: float) -> float:
    """Fact 2.1: the diameter of a phi-expander is ``O(phi^-1 log n)``.

    We use the explicit constant 2 from the standard ball-growing argument.
    """
    if n <= 1:
        return 0.0
    phi = max(phi, 1e-12)
    return 2.0 * math.log(max(n, 2)) / phi


def is_expander(graph: nx.Graph, phi: float, exact_threshold: int = 12) -> bool:
    """Return True if ``graph`` is (estimated to be) a ``phi``-expander.

    The check is conservative for large graphs: the spectral lower bound
    ``lambda_2 / 2`` must exceed ``phi`` or the sweep cut must fail to find a
    cut of conductance below ``phi``.
    """
    if graph.number_of_nodes() < 2:
        return True
    if not nx.is_connected(graph):
        return False
    if graph.number_of_nodes() <= exact_threshold:
        return exact_conductance(graph) >= phi
    lower, _ = cheeger_bounds(graph)
    if lower >= phi:
        return True
    return sweep_cut(graph).conductance >= phi
