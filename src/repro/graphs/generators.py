"""Deterministic and seeded graph generators used by the experiments.

The paper's algorithms run on phi-expanders.  For reproducible experiments we
need graph families whose conductance is well understood:

* **Deterministic expanders**: circulant (shift) graphs, hypercubes, and the
  Margulis-Gabber-Galil construction on the torus.  These require no
  randomness at all, matching the deterministic spirit of the paper.
* **Seeded random regular graphs**: the workhorse of the evaluation; a random
  d-regular graph is an expander with high probability.  A seed makes runs
  reproducible.
* **General-graph workloads** for the k-clique application: Erdos-Renyi
  graphs, planted-clique graphs, and "expander of expanders" graphs with a
  planted sparse cut (used to exercise expander decomposition).

All generators return graphs whose nodes are the integers ``0..n-1`` — the
paper assumes unique IDs in ``[1, poly(n)]`` and most of the machinery
(expander sorting, destination ranks) keys off the ID order, so a canonical
integer labelling keeps everything simple and reproducible.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

__all__ = [
    "circulant_expander",
    "hypercube_graph",
    "margulis_expander",
    "random_regular_expander",
    "weighted_expander",
    "erdos_renyi_graph",
    "planted_clique_graph",
    "two_expander_graph",
    "barbell_of_expanders",
    "skewed_degree_expander",
]


def _relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to ``0..n-1`` preserving a deterministic sorted order."""
    nodes = sorted(graph.nodes(), key=repr)
    mapping = {node: index for index, node in enumerate(nodes)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def circulant_expander(n: int, offsets: Sequence[int] = (1, 2, 3, 5)) -> nx.Graph:
    """Deterministic circulant graph on ``n`` vertices with the given shift offsets.

    Vertex ``i`` is adjacent to ``i +- s (mod n)`` for each offset ``s``.  With
    a handful of co-prime offsets this family has constant conductance and
    constant degree, making it the default deterministic expander in tests.
    """
    if n < 3:
        raise ValueError("circulant expander needs at least 3 vertices")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i in range(n):
        for s in offsets:
            graph.add_edge(i, (i + s) % n)
    return graph


def hypercube_graph(dimension: int) -> nx.Graph:
    """The ``dimension``-dimensional hypercube on ``2^dimension`` vertices.

    Degree ``dimension = log2 n`` and edge expansion 1; a classical
    (mildly non-constant-degree) expander used by the general-graph reduction
    experiments.
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    return _relabel_to_integers(nx.hypercube_graph(dimension))


def margulis_expander(m: int) -> nx.Graph:
    """Margulis-Gabber-Galil expander on the ``m x m`` torus (n = m^2 vertices).

    Each vertex ``(x, y)`` is connected to ``(x + y, y)``, ``(x - y, y)``,
    ``(x, y + x)``, ``(x, y - x)``, ``(x + y + 1, y)`` ... (all mod m).  This
    is a fully deterministic constant-degree expander family with a known
    constant spectral gap.
    """
    if m < 2:
        raise ValueError("m must be >= 2")
    graph = nx.Graph()
    for x in range(m):
        for y in range(m):
            graph.add_node((x, y))
    for x in range(m):
        for y in range(m):
            neighbours = [
                ((x + y) % m, y),
                ((x - y) % m, y),
                (x, (y + x) % m),
                (x, (y - x) % m),
                ((x + y + 1) % m, y),
                ((x - y + 1) % m, y),
                (x, (y + x + 1) % m),
                (x, (y - x + 1) % m),
            ]
            for neighbour in neighbours:
                if neighbour != (x, y):
                    graph.add_edge((x, y), neighbour)
    relabelled = nx.Graph()
    mapping = {(x, y): x * m + y for x in range(m) for y in range(m)}
    relabelled.add_nodes_from(range(m * m))
    relabelled.add_edges_from((mapping[u], mapping[v]) for u, v in graph.edges())
    return relabelled


def random_regular_expander(n: int, degree: int = 8, seed: int = 0) -> nx.Graph:
    """Seeded random ``degree``-regular graph (an expander with high probability).

    Retries with incremented seeds until the sampled graph is connected, so
    the returned graph is always usable as a routing substrate.
    """
    if n <= degree:
        raise ValueError("n must exceed the degree")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even for a regular graph to exist")
    attempt = 0
    while True:
        graph = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(graph):
            return nx.convert_node_labels_to_integers(graph)
        attempt += 1
        if attempt > 32:
            raise RuntimeError("failed to sample a connected regular graph")


def weighted_expander(n: int, degree: int = 8, seed: int = 0, max_weight: int = 1000) -> nx.Graph:
    """Random regular expander with deterministic pseudo-random edge weights.

    Weights are derived from the edge endpoints with a fixed mixing function,
    so the weighted graph is fully determined by ``(n, degree, seed)`` — this
    is what the MST experiments (Corollary 1.3) run on.
    """
    graph = random_regular_expander(n, degree=degree, seed=seed)
    for u, v in graph.edges():
        a, b = (u, v) if u < v else (v, u)
        weight = ((a * 2654435761 + b * 40503 + seed * 97) % max_weight) + 1
        graph[u][v]["weight"] = weight
    return graph


def erdos_renyi_graph(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Seeded G(n, p) graph restricted to its largest connected component."""
    graph = nx.gnp_random_graph(n, p, seed=seed)
    if graph.number_of_nodes() == 0:
        return graph
    largest = max(nx.connected_components(graph), key=len)
    return nx.convert_node_labels_to_integers(graph.subgraph(largest).copy())


def planted_clique_graph(n: int, clique_size: int, p: float = 0.1, seed: int = 0) -> nx.Graph:
    """G(n, p) with a planted clique on the first ``clique_size`` vertices.

    Used by the k-clique enumeration experiments so there is a known dense
    subgraph to find in addition to the background random cliques.
    """
    if clique_size > n:
        raise ValueError("clique size cannot exceed n")
    graph = nx.gnp_random_graph(n, p, seed=seed)
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            graph.add_edge(i, j)
    if not nx.is_connected(graph):
        nodes = sorted(graph.nodes())
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b)
    return graph


def two_expander_graph(n: int, bridge_edges: int = 2, degree: int = 8, seed: int = 0) -> nx.Graph:
    """Two expanders of size ``n//2`` joined by a small number of bridge edges.

    This graph has a planted sparse cut straight down the middle, which makes
    it the canonical positive test case for expander decomposition: the
    decomposition should cut the bridges and keep each side intact.
    """
    half = n // 2
    left = random_regular_expander(half, degree=degree, seed=seed)
    right = random_regular_expander(half, degree=degree, seed=seed + 1)
    graph = nx.Graph()
    graph.add_edges_from(left.edges())
    graph.add_edges_from((u + half, v + half) for u, v in right.edges())
    for i in range(bridge_edges):
        graph.add_edge(i, half + i)
    return graph


def barbell_of_expanders(parts: int, part_size: int, degree: int = 6, seed: int = 0) -> nx.Graph:
    """A chain of ``parts`` expanders, consecutive ones joined by one edge.

    A stress-test instance for expander decomposition with many sparse cuts.
    """
    graph = nx.Graph()
    offset = 0
    for index in range(parts):
        component = random_regular_expander(part_size, degree=degree, seed=seed + index)
        graph.add_edges_from((u + offset, v + offset) for u, v in component.edges())
        if index > 0:
            graph.add_edge(offset - 1, offset)
        offset += part_size
    return graph


def skewed_degree_expander(n: int, hub_count: int = 4, degree: int = 6, seed: int = 0) -> nx.Graph:
    """An expander with a few high-degree hubs.

    Produces a connected graph whose maximum degree is far above the average,
    exercising the expander-split reduction of Appendix E (general graphs to
    constant-degree graphs).
    """
    graph = random_regular_expander(n, degree=degree, seed=seed)
    hubs = list(range(min(hub_count, n)))
    for hub in hubs:
        stride = max(2, n // (4 * max(hub_count, 1)))
        for target in range(hub + 1, n, stride):
            graph.add_edge(hub, target)
    return graph
