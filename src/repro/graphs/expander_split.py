"""Expander split ``G_diamond``: reduction from general to constant-degree graphs.

Section 2 and Appendix E of the paper reduce routing on a general expander
``G`` (where each vertex may source/sink up to ``deg(v)`` tokens) to routing on
a constant-degree graph ``G_diamond`` built as follows:

* every vertex ``v`` is replaced by a constant-degree expander ``X_v`` on
  ``deg(v)`` vertices (the *gadget* for ``v``);
* every original edge ``e = (u, v)`` becomes one edge between the
  ``r_u(e)``-th vertex of ``X_u`` and the ``r_v(e)``-th vertex of ``X_v``,
  where ``r_v`` is an arbitrary fixed ranking of the edges incident to ``v``.

The key property is ``Psi(G_diamond) = Theta(Phi(G))`` (CS20, Appendix C),
so a sparsity-based routing algorithm on the split graph solves the
conductance-based problem on the original graph.  Token loads proportional to
``deg(v)`` on ``G`` become loads of ``O(1)`` per split vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.graphs.generators import circulant_expander

__all__ = ["SplitVertex", "ExpanderSplit", "expander_split"]


@dataclass(frozen=True)
class SplitVertex:
    """A vertex of the split graph: copy ``index`` of original vertex ``original``."""

    original: int
    index: int


@dataclass
class ExpanderSplit:
    """The expander split of a graph together with the correspondence maps.

    Attributes:
        original: the input graph ``G``.
        split: the constant-degree split graph ``G_diamond`` with integer nodes.
        vertex_of: maps a split-graph node id to its :class:`SplitVertex`.
        copies_of: maps an original vertex to the ordered list of its split node ids.
        port_of_edge: maps an original (directed) edge ``(u, v)`` to the split
            node id inside ``X_u`` that hosts that edge's endpoint.
    """

    original: nx.Graph
    split: nx.Graph
    vertex_of: dict[int, SplitVertex] = field(default_factory=dict)
    copies_of: dict[int, list[int]] = field(default_factory=dict)
    port_of_edge: dict[tuple[int, int], int] = field(default_factory=dict)

    def split_size(self) -> int:
        """Number of vertices of the split graph (= 2m of the original)."""
        return self.split.number_of_nodes()

    def home_copy(self, original_vertex: int) -> int:
        """Canonical (lowest-id) split copy of an original vertex.

        Routing destinations addressed to an original vertex are translated to
        split-graph destinations spread over its copies; the home copy is the
        representative used when a single destination vertex is required.
        """
        return self.copies_of[original_vertex][0]

    def assign_destination(self, original_vertex: int, serial: int) -> int:
        """Load-balanced split destination for the ``serial``-th token addressed to a vertex.

        This is the "(v, i := SID_z mod deg(v) + 1)" assignment of Appendix E:
        tokens with the same original destination are spread round-robin over
        the copies of that destination.
        """
        copies = self.copies_of[original_vertex]
        return copies[serial % len(copies)]

    def lift_token_position(self, split_vertex: int) -> int:
        """Map a split-graph position back to the original vertex it belongs to."""
        return self.vertex_of[split_vertex].original


def _gadget_edges(size: int) -> list[tuple[int, int]]:
    """Edges of a constant-degree expander gadget on ``size`` local vertices."""
    if size <= 1:
        return []
    if size == 2:
        return [(0, 1)]
    if size <= 4:
        return [(i, j) for i in range(size) for j in range(i + 1, size)]
    offsets = (1, 2, 3)
    gadget = circulant_expander(size, offsets=offsets)
    return list(gadget.edges())


def expander_split(graph: nx.Graph) -> ExpanderSplit:
    """Construct the expander split ``G_diamond`` of ``graph``.

    Isolated vertices receive a single split copy (degree-0 gadget) so that
    the vertex correspondence is total.
    """
    split = nx.Graph()
    vertex_of: dict[int, SplitVertex] = {}
    copies_of: dict[int, list[int]] = {}
    port_of_edge: dict[tuple[int, int], int] = {}

    next_id = 0
    for v in sorted(graph.nodes()):
        degree = graph.degree(v)
        count = max(degree, 1)
        ids = list(range(next_id, next_id + count))
        next_id += count
        copies_of[v] = ids
        for index, node_id in enumerate(ids):
            vertex_of[node_id] = SplitVertex(original=v, index=index)
            split.add_node(node_id)
        for a, b in _gadget_edges(count):
            split.add_edge(ids[a], ids[b])

    # Assign each incident edge of v to a distinct port (split copy of v).
    for v in sorted(graph.nodes()):
        neighbours = sorted(graph.neighbors(v))
        for rank, u in enumerate(neighbours):
            port_of_edge[(v, u)] = copies_of[v][rank % len(copies_of[v])]

    for u, v in graph.edges():
        split.add_edge(port_of_edge[(u, v)], port_of_edge[(v, u)])

    return ExpanderSplit(
        original=graph,
        split=split,
        vertex_of=vertex_of,
        copies_of=copies_of,
        port_of_edge=port_of_edge,
    )
