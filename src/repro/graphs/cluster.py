"""Cluster (quotient) graphs: contracting the parts of a partition.

Definition 5.1 of the paper: given a good node ``X`` with parts
``X*_1, ..., X*_t``, the cluster graph ``Y`` is the multigraph obtained by
contracting each part to a single vertex.  The cut player of the cut-matching
game runs on ``Y`` while the matching player works on ``X``; matchings of
``X`` are translated to *fractional matchings* of ``Y`` by normalisation.

This module provides the contraction, the membership maps both ways, and the
natural-fractional-matching translation used by the shuffler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

__all__ = ["ClusterGraph", "build_cluster_graph", "natural_fractional_matching"]


@dataclass
class ClusterGraph:
    """A contracted multigraph ``Y`` over a partition of the base graph ``X``.

    Attributes:
        base: the base graph ``X``.
        parts: the ordered list of vertex sets (``X*_1 .. X*_t``).
        graph: the contracted multigraph; node ``i`` corresponds to ``parts[i]``.
        part_of: maps each base vertex to its part index.
    """

    base: nx.Graph
    parts: list[frozenset]
    graph: nx.MultiGraph
    part_of: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of cluster vertices ``t``."""
        return len(self.parts)

    def part_members(self, index: int) -> frozenset:
        """Vertices of the base graph belonging to cluster vertex ``index``."""
        return self.parts[index]

    def expand(self, cluster_nodes: Iterable[int]) -> set:
        """Return ``S_X``: the base vertices corresponding to cluster vertices ``S``."""
        result: set = set()
        for index in cluster_nodes:
            result.update(self.parts[index])
        return result

    def crossing_edges(self, i: int, j: int) -> int:
        """Number of base edges between part ``i`` and part ``j``."""
        return self.graph.number_of_edges(i, j)


def build_cluster_graph(base: nx.Graph, parts: Sequence[Iterable]) -> ClusterGraph:
    """Contract each part of ``parts`` in ``base`` into a single cluster vertex.

    Parts must be disjoint; vertices of ``base`` not covered by any part are
    ignored (the hierarchy only contracts the good node's own vertices).
    """
    frozen_parts = [frozenset(part) for part in parts]
    part_of: dict = {}
    for index, part in enumerate(frozen_parts):
        for vertex in part:
            if vertex in part_of:
                raise ValueError(f"vertex {vertex!r} appears in two parts")
            part_of[vertex] = index

    contracted = nx.MultiGraph()
    contracted.add_nodes_from(range(len(frozen_parts)))
    for u, v in base.edges():
        if u in part_of and v in part_of:
            pu, pv = part_of[u], part_of[v]
            if pu != pv:
                contracted.add_edge(pu, pv)
    return ClusterGraph(base=base, parts=frozen_parts, graph=contracted, part_of=part_of)


def natural_fractional_matching(
    cluster: ClusterGraph,
    matching_edges: Iterable[tuple],
    normalizer: float | None = None,
) -> dict[tuple[int, int], float]:
    """Translate a matching of the base graph to a fractional matching of ``Y``.

    Definition 5.1: ``x_{uv} = |{(a, b) in M_X : a in X*_u, b in X*_v}| / n'``
    where ``n' = 6 |X| / k`` (an upper bound on the part size).  We accept an
    explicit ``normalizer`` so the caller can pass the paper's ``n'``; when it
    is omitted we use the maximum part size, which keeps every fractional
    degree at most one.

    Matching edges whose endpoints land in the same part contribute nothing
    (they would be self-loops of ``Y``).
    """
    edges = list(matching_edges)
    if normalizer is None:
        normalizer = float(max((len(part) for part in cluster.parts), default=1))
    if normalizer <= 0:
        raise ValueError("normalizer must be positive")

    counts: dict[tuple[int, int], int] = {}
    for a, b in edges:
        if a not in cluster.part_of or b not in cluster.part_of:
            continue
        pa, pb = cluster.part_of[a], cluster.part_of[b]
        if pa == pb:
            continue
        key = (pa, pb) if pa < pb else (pb, pa)
        counts[key] = counts.get(key, 0) + 1

    fractional = {key: count / normalizer for key, count in counts.items()}

    # Clamp so that every cluster vertex has fractional degree at most one
    # (guaranteed by the paper's parameters; enforced here for robustness).
    degree: dict[int, float] = {}
    for (u, v), value in fractional.items():
        degree[u] = degree.get(u, 0.0) + value
        degree[v] = degree.get(v, 0.0) + value
    overload = max(degree.values(), default=0.0)
    if overload > 1.0:
        fractional = {key: value / overload for key, value in fractional.items()}
    return fractional
