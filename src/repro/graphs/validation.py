"""Validation helpers for graphs and partitions used across the library.

Centralising these checks keeps error messages consistent and gives the
property-based tests a single place to target.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

__all__ = [
    "require_connected",
    "require_integer_nodes",
    "require_constant_degree",
    "require_partition",
    "max_degree",
    "canonicalize",
]


def require_connected(graph: nx.Graph) -> None:
    """Raise ``ValueError`` if ``graph`` is empty or disconnected."""
    if graph.number_of_nodes() == 0:
        raise ValueError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise ValueError("graph must be connected")


def require_integer_nodes(graph: nx.Graph) -> None:
    """Raise ``ValueError`` unless every node is an ``int``.

    The routing machinery keys destination ranks off integer-ordered IDs
    (the paper assumes IDs in ``[1, poly(n)]``), so we insist on integers.
    """
    for node in graph.nodes():
        if not isinstance(node, int):
            raise ValueError(f"graph nodes must be integers, got {node!r}")


def max_degree(graph: nx.Graph) -> int:
    """Maximum degree of the graph (0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _, degree in graph.degree())


def require_constant_degree(graph: nx.Graph, bound: int) -> None:
    """Raise ``ValueError`` if any vertex exceeds the degree ``bound``."""
    worst = max_degree(graph)
    if worst > bound:
        raise ValueError(f"maximum degree {worst} exceeds the bound {bound}")


def require_partition(universe: Iterable, parts: Sequence[Iterable]) -> None:
    """Raise ``ValueError`` unless ``parts`` partitions ``universe`` exactly."""
    universe_set = set(universe)
    seen: set = set()
    for index, part in enumerate(parts):
        part_set = set(part)
        if not part_set:
            raise ValueError(f"part {index} is empty")
        overlap = seen & part_set
        if overlap:
            raise ValueError(f"parts overlap on {sorted(overlap)[:5]}")
        extra = part_set - universe_set
        if extra:
            raise ValueError(f"part {index} contains foreign vertices {sorted(extra)[:5]}")
        seen |= part_set
    missing = universe_set - seen
    if missing:
        raise ValueError(f"partition misses vertices {sorted(missing)[:5]}")


def canonicalize(graph: nx.Graph) -> nx.Graph:
    """Return a copy of ``graph`` with nodes relabelled to ``0..n-1`` in sorted order."""
    nodes = sorted(graph.nodes(), key=repr)
    mapping = {node: index for index, node in enumerate(nodes)}
    return nx.relabel_nodes(graph, mapping, copy=True)
