"""Deterministic scheduling of token movements along precomputed paths.

Fact 2.2 of the paper: given a precomputed collection of routing paths
``P`` with quality ``Q(P) = congestion + dilation``, one token can be sent
along every path simultaneously in ``Q(P)^2`` deterministic rounds, simply by
spending ``congestion`` rounds per edge-hop.

This module implements that scheduler concretely: tokens advance one hop per
"slot", each edge serves at most one token per slot per direction, and the
number of slots used is reported.  The measured slot count is always at most
``congestion * dilation <= Q(P)^2`` and the tests assert this, tying the
implementation back to the paper's accounting rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.kernels import use_numpy

__all__ = [
    "ScheduledToken",
    "ScheduleResult",
    "schedule_tokens_along_paths",
    "schedule_token_batches",
]


@dataclass
class ScheduledToken:
    """A token to be moved along a fixed path of vertices."""

    token_id: int
    path: tuple

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("path must contain at least the starting vertex")


@dataclass
class ScheduleResult:
    """Outcome of scheduling all tokens along their paths.

    Attributes:
        rounds: number of synchronous rounds (slots) used.
        congestion: maximum number of paths sharing one undirected edge.
        dilation: maximum path length (in edges).
        arrival_round: per-token round at which it reached its path's end.
    """

    rounds: int
    congestion: int
    dilation: int
    arrival_round: dict[int, int] = field(default_factory=dict)

    @property
    def quality(self) -> int:
        """``Q(P) = congestion + dilation`` of the scheduled path collection."""
        return self.congestion + self.dilation

    @property
    def quality_squared_bound(self) -> int:
        """The paper's deterministic round bound ``Q(P)^2`` (Fact 2.2)."""
        return self.quality * self.quality


def _vertex_indexer(tokens: Sequence[ScheduledToken]) -> dict:
    """Dense integer index per vertex, computed once per schedule.

    Edge keys are sorted *int* pairs over this index.  The previous
    implementation called ``repr()`` on both endpoints of every token-hop in
    every round to order the key, which was both slow and fragile (it assumed
    distinct vertices never share a repr); interning each vertex once removes
    both problems while leaving the schedule unchanged — the key is only ever
    used as a canonical identity for the undirected edge.
    """
    index: dict = {}
    for token in tokens:
        for vertex in token.path:
            if vertex not in index:
                index[vertex] = len(index)
    return index


def schedule_tokens_along_paths(tokens: Sequence[ScheduledToken]) -> ScheduleResult:
    """Move every token along its path, one hop per round, one token per edge per round.

    The scheduler is deterministic: in each round, tokens are considered in
    increasing ``token_id`` order and a token advances if its next edge has
    not been used by an earlier token this round.  This is exactly the naive
    "spend congestion rounds per edge" strategy whose round count Fact 2.2
    bounds by ``congestion * dilation``.

    Dispatches to the vectorized kernel unless ``REPRO_KERNEL=reference``
    selects the loop implementation below; both produce identical results.
    """
    if not tokens:
        return ScheduleResult(rounds=0, congestion=0, dilation=0)
    if use_numpy():
        from repro.kernels.scheduler import schedule_tokens_numpy

        return schedule_tokens_numpy(tokens)

    vertex_index = _vertex_indexer(tokens)

    def _edge_key(u: Hashable, v: Hashable) -> tuple[int, int]:
        a, b = vertex_index[u], vertex_index[v]
        return (a, b) if a <= b else (b, a)

    # Static quality measures of the path collection.
    edge_load: dict[tuple, int] = {}
    dilation = 0
    for token in tokens:
        dilation = max(dilation, len(token.path) - 1)
        for u, v in zip(token.path, token.path[1:]):
            key = _edge_key(u, v)
            edge_load[key] = edge_load.get(key, 0) + 1
    congestion = max(edge_load.values(), default=0)

    position = {token.token_id: 0 for token in tokens}
    arrival: dict[int, int] = {
        token.token_id: 0 for token in tokens if len(token.path) == 1
    }
    pending = [token for token in tokens if len(token.path) > 1]
    rounds = 0
    # Upper bound on rounds to guarantee termination even on malformed input.
    round_limit = max(1, congestion * dilation + dilation + 1)
    while pending and rounds < round_limit:
        rounds += 1
        used_edges: set[tuple] = set()
        still_pending: list[ScheduledToken] = []
        for token in sorted(pending, key=lambda t: t.token_id):
            index = position[token.token_id]
            u, v = token.path[index], token.path[index + 1]
            key = _edge_key(u, v)
            if key in used_edges:
                still_pending.append(token)
                continue
            used_edges.add(key)
            position[token.token_id] = index + 1
            if position[token.token_id] == len(token.path) - 1:
                arrival[token.token_id] = rounds
            else:
                still_pending.append(token)
        pending = still_pending
    if pending:
        raise RuntimeError("scheduler failed to deliver all tokens within the round limit")
    return ScheduleResult(
        rounds=rounds,
        congestion=congestion,
        dilation=dilation,
        arrival_round=arrival,
    )


def schedule_token_batches(
    batches: Sequence[Sequence[ScheduledToken]],
) -> list[ScheduleResult]:
    """Schedule several independent instances, resolving conflicts in one pass.

    The fused twin of calling :func:`schedule_tokens_along_paths` once per
    batch: instances never share edges (each batch is its own path
    collection), so the vectorized kernel offsets their edge codes into
    disjoint ranges and settles every batch's contested edges with a single
    first-occurrence scan per round
    (:func:`repro.kernels.batched.schedule_token_batches_numpy`).  Results
    per batch — rounds, congestion, dilation, arrival rounds — are identical
    to the solo calls.
    """
    if len(batches) > 1 and use_numpy():
        from repro.kernels.batched import schedule_token_batches_numpy

        try:
            return schedule_token_batches_numpy(batches)
        except OverflowError:
            # Edge-code offsets exhausted (gigantic batch collections):
            # fall through to per-batch scheduling.
            pass
    return [schedule_tokens_along_paths(batch) for batch in batches]
