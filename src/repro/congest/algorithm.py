"""Node-algorithm abstraction and the synchronous runner.

A CONGEST algorithm is specified as per-node local code.  Each node owns a
:class:`NodeState` (its local memory) and the algorithm defines two hooks:

* :meth:`NodeAlgorithm.initialize` — executed once before round 0;
* :meth:`NodeAlgorithm.on_round` — executed for every node in every round with
  the node's inbox; the node sends messages for the *next* round through the
  provided :class:`Mailbox`.

The :class:`Runner` drives all nodes in lockstep until every node has halted
or a round limit is reached, and reports the number of rounds used.  This is
the genuinely-distributed layer of the library; the heavy recursive routing
machinery charges rounds through :mod:`repro.core.cost` instead (see
DESIGN.md, substitution 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.congest.network import Message, Network

__all__ = ["NodeState", "Mailbox", "NodeAlgorithm", "Runner", "RunResult"]


@dataclass
class NodeState:
    """Local memory of a single node.

    Attributes:
        node: the node's identifier in the topology.
        memory: free-form local variables of the algorithm.
        halted: set by the algorithm when the node is done.
    """

    node: Hashable
    memory: dict[str, Any] = field(default_factory=dict)
    halted: bool = False

    def halt(self) -> None:
        """Mark this node as finished; it still receives messages but is not run."""
        self.halted = True


class Mailbox:
    """Restricted sending interface handed to a node during its round."""

    def __init__(self, network: Network, node: Hashable) -> None:
        self._network = network
        self._node = node

    def send(self, neighbor: Hashable, payload: Any) -> None:
        """Send ``payload`` to ``neighbor`` (delivered next round)."""
        self._network.send(self._node, neighbor, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbour (delivered next round)."""
        self._network.broadcast_to_neighbors(self._node, payload)

    def neighbors(self) -> list:
        """Sorted list of this node's neighbours."""
        return self._network.neighbors(self._node)


class NodeAlgorithm:
    """Base class for per-node CONGEST algorithms.

    Subclasses override :meth:`initialize` and :meth:`on_round`.  The same
    algorithm instance is shared by all nodes, so per-node data must live in
    the :class:`NodeState`, never on ``self``.
    """

    def initialize(self, state: NodeState, mailbox: Mailbox) -> None:
        """Set up local state and optionally send round-0 messages."""

    def on_round(self, state: NodeState, inbox: list[Message], mailbox: Mailbox) -> None:
        """Process one synchronous round for one node."""
        raise NotImplementedError


@dataclass
class RunResult:
    """Outcome of running a CONGEST algorithm to completion.

    Attributes:
        rounds: number of synchronous rounds executed.
        messages: total messages sent over the run.
        states: final per-node states keyed by node id.
        completed: False if the round limit was hit before all nodes halted.
    """

    rounds: int
    messages: int
    states: dict[Hashable, NodeState]
    completed: bool

    def memory_of(self, node: Hashable, key: str, default: Any = None) -> Any:
        """Convenience accessor into a node's final local memory."""
        return self.states[node].memory.get(key, default)


class Runner:
    """Drives a :class:`NodeAlgorithm` over a :class:`Network` synchronously."""

    def __init__(self, network: Network, algorithm: NodeAlgorithm) -> None:
        self.network = network
        self.algorithm = algorithm
        self.states: dict[Hashable, NodeState] = {
            node: NodeState(node=node) for node in network.nodes
        }

    def run(self, max_rounds: int = 10_000) -> RunResult:
        """Run until every node halts or ``max_rounds`` rounds have elapsed."""
        self.network.reset_counters()
        for node in self.network.nodes:
            self.algorithm.initialize(self.states[node], Mailbox(self.network, node))
        rounds = 0
        completed = all(state.halted for state in self.states.values())
        while not completed and rounds < max_rounds:
            self.network.deliver()
            rounds += 1
            for node in self.network.nodes:
                state = self.states[node]
                inbox = self.network.inbox(node)
                if state.halted:
                    continue
                self.algorithm.on_round(state, inbox, Mailbox(self.network, node))
            completed = all(state.halted for state in self.states.values())
        return RunResult(
            rounds=rounds,
            messages=self.network.total_messages,
            states=self.states,
            completed=completed,
        )
