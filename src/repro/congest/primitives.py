"""Distributed primitives on the CONGEST simulator.

These are the low-level building blocks the paper (and CS20) assume freely:

* BFS-tree construction from a root,
* broadcast of a value down a BFS tree,
* convergecast (aggregation) up a BFS tree,
* leader election by minimum ID,
* a serialization that assigns every vertex its in-order rank.

Each primitive is implemented as a genuine message-passing
:class:`~repro.congest.algorithm.NodeAlgorithm` and returns both the computed
values and the round count, so tests can check the diameter-bound claims
(Fact 2.1) end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

import networkx as nx

from repro.congest.algorithm import Mailbox, NodeAlgorithm, NodeState, Runner
from repro.congest.network import Message, Network

__all__ = [
    "BFSResult",
    "build_bfs_tree",
    "broadcast_value",
    "convergecast_sum",
    "elect_leader",
    "assign_ranks",
]


@dataclass
class BFSResult:
    """Result of the distributed BFS construction.

    Attributes:
        root: the BFS root.
        parent: parent pointers (root maps to None).
        depth: per-node BFS depth.
        rounds: CONGEST rounds used.
    """

    root: Hashable
    parent: dict[Hashable, Hashable | None]
    depth: dict[Hashable, int]
    rounds: int

    @property
    def height(self) -> int:
        """Height of the BFS tree (max depth)."""
        return max(self.depth.values(), default=0)

    def children(self) -> dict[Hashable, list[Hashable]]:
        """Child lists derived from the parent pointers."""
        result: dict[Hashable, list[Hashable]] = {node: [] for node in self.parent}
        for node, par in self.parent.items():
            if par is not None:
                result[par].append(node)
        for lst in result.values():
            lst.sort()
        return result


class _BFSAlgorithm(NodeAlgorithm):
    """Flood-based BFS: the root announces itself, waves propagate outward."""

    def __init__(self, root: Hashable) -> None:
        self.root = root

    def initialize(self, state: NodeState, mailbox: Mailbox) -> None:
        if state.node == self.root:
            state.memory["depth"] = 0
            state.memory["parent"] = None
            mailbox.broadcast(("bfs", 0))
        else:
            state.memory["depth"] = None
            state.memory["parent"] = None
        state.memory["idle_rounds"] = 0

    def on_round(self, state: NodeState, inbox: list[Message], mailbox: Mailbox) -> None:
        progressed = False
        if state.memory["depth"] is None:
            best = None
            for message in inbox:
                kind, depth = message.payload
                if kind != "bfs":
                    continue
                candidate = (depth + 1, message.sender)
                if best is None or candidate < best:
                    best = candidate
            if best is not None:
                state.memory["depth"] = best[0]
                state.memory["parent"] = best[1]
                mailbox.broadcast(("bfs", best[0]))
                progressed = True
        if progressed:
            state.memory["idle_rounds"] = 0
        else:
            state.memory["idle_rounds"] += 1
        # A node halts once it has joined the tree and has been idle for two
        # rounds (its announcement has certainly been delivered by then).
        if state.memory["depth"] is not None and state.memory["idle_rounds"] >= 2:
            state.halt()


def build_bfs_tree(graph: nx.Graph, root: Hashable | None = None) -> BFSResult:
    """Build a BFS tree from ``root`` (default: minimum node id) on the simulator."""
    if root is None:
        root = min(graph.nodes())
    network = Network(graph)
    runner = Runner(network, _BFSAlgorithm(root))
    result = runner.run(max_rounds=4 * graph.number_of_nodes() + 8)
    parent = {node: result.states[node].memory["parent"] for node in graph.nodes()}
    depth = {node: result.states[node].memory["depth"] for node in graph.nodes()}
    if any(value is None for value in depth.values()):
        raise RuntimeError("BFS did not reach every node; is the graph connected?")
    return BFSResult(root=root, parent=parent, depth=depth, rounds=result.rounds)


def broadcast_value(graph: nx.Graph, root: Hashable, value: Any) -> tuple[dict[Hashable, Any], int]:
    """Broadcast ``value`` from ``root`` to all nodes along a BFS tree.

    Returns the per-node received value and the total number of rounds
    (BFS construction + downcast).
    """
    bfs = build_bfs_tree(graph, root)
    # Downcast is simulated level by level; each level is one round.
    received = {root: value}
    rounds = bfs.rounds
    children = bfs.children()
    frontier = [root]
    while frontier:
        next_frontier: list = []
        for node in frontier:
            for child in children[node]:
                received[child] = value
                next_frontier.append(child)
        if next_frontier:
            rounds += 1
        frontier = next_frontier
    return received, rounds


def convergecast_sum(
    graph: nx.Graph,
    root: Hashable,
    values: dict[Hashable, float],
    combine: Callable[[float, float], float] = lambda a, b: a + b,
) -> tuple[float, int]:
    """Aggregate per-node values to the root along a BFS tree.

    Returns the aggregate at the root and the round count.  The combine
    function must be associative and commutative (sum, max, min, ...).
    """
    bfs = build_bfs_tree(graph, root)
    children = bfs.children()
    order = sorted(graph.nodes(), key=lambda v: -bfs.depth[v])
    partial = dict(values)
    for node in order:
        for child in children[node]:
            partial[node] = combine(partial[node], partial[child])
    rounds = bfs.rounds + bfs.height
    return partial[root], rounds


class _LeaderElection(NodeAlgorithm):
    """Minimum-ID flooding leader election; terminates in O(diameter) rounds."""

    def __init__(self, diameter_bound: int) -> None:
        self.diameter_bound = diameter_bound

    def initialize(self, state: NodeState, mailbox: Mailbox) -> None:
        state.memory["leader"] = state.node
        state.memory["round"] = 0
        mailbox.broadcast(("leader", state.node))

    def on_round(self, state: NodeState, inbox: list[Message], mailbox: Mailbox) -> None:
        best = state.memory["leader"]
        changed = False
        for message in inbox:
            _, candidate = message.payload
            if candidate < best:
                best = candidate
                changed = True
        state.memory["leader"] = best
        state.memory["round"] += 1
        if changed:
            mailbox.broadcast(("leader", best))
        if state.memory["round"] >= self.diameter_bound:
            state.halt()


def elect_leader(graph: nx.Graph) -> tuple[Hashable, int]:
    """Elect the minimum-ID node as leader by flooding; return (leader, rounds)."""
    diameter_bound = graph.number_of_nodes()
    network = Network(graph)
    runner = Runner(network, _LeaderElection(diameter_bound))
    result = runner.run(max_rounds=diameter_bound + 2)
    leaders = {result.states[node].memory["leader"] for node in graph.nodes()}
    if len(leaders) != 1:
        raise RuntimeError("leader election did not converge")
    return leaders.pop(), result.rounds


def assign_ranks(graph: nx.Graph, root: Hashable | None = None) -> tuple[dict[Hashable, int], int]:
    """Assign every vertex its rank among sorted IDs, the way the paper's reductions do.

    In the CONGEST implementation the ranks are computed by a convergecast of
    subtree ID multisets followed by a downcast of rank intervals; we charge
    ``2 * height + bfs`` rounds for this and compute the ranks centrally
    (they are a pure function of the ID order).
    """
    bfs = build_bfs_tree(graph, root)
    ranks = {node: rank for rank, node in enumerate(sorted(graph.nodes()))}
    rounds = bfs.rounds + 2 * bfs.height
    return ranks, rounds
