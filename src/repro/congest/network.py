"""Synchronous CONGEST network simulator.

The CONGEST model (Section 1 of the paper): computation proceeds in
synchronous rounds; in each round every vertex may send one message of
``O(log n)`` bits to each of its neighbours, receive the messages sent to it,
and perform arbitrary local computation.  The complexity measure is the number
of rounds.

:class:`Network` implements exactly this discipline:

* per-round outboxes keyed by (sender, receiver) edge;
* a bandwidth limit of one message per directed edge per round (attempting to
  send a second message on the same edge in the same round raises);
* a message-size budget in "words" (a word is ``O(log n)`` bits; a message may
  carry a constant number of words, configurable);
* round and message counters that experiments read back.

Algorithms are written as :class:`repro.congest.algorithm.NodeAlgorithm`
subclasses and executed with :class:`repro.congest.algorithm.Runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import networkx as nx

__all__ = ["Message", "BandwidthExceeded", "Network"]


class BandwidthExceeded(RuntimeError):
    """Raised when a node tries to exceed the per-edge per-round bandwidth."""


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes:
        sender: the node that sent the message.
        receiver: the neighbouring node it was addressed to.
        payload: the message contents.  The simulator checks that the payload
            fits in ``words_per_message`` machine words when it is a tuple/list
            of atoms; opaque payloads count as one word (callers are trusted
            to keep them O(log n) bits, as the model allows).
        round_sent: the round index in which the message was sent.
    """

    sender: Hashable
    receiver: Hashable
    payload: Any
    round_sent: int


def _payload_words(payload: Any) -> int:
    """Crude word count of a payload for bandwidth checking."""
    if payload is None:
        return 0
    if isinstance(payload, (int, float, str, bool)):
        return 1
    if isinstance(payload, (tuple, list)):
        return sum(_payload_words(item) for item in payload) or 1
    if isinstance(payload, dict):
        return sum(1 + _payload_words(value) for value in payload.values()) or 1
    return 1


class Network:
    """A synchronous message-passing network over a fixed graph topology."""

    def __init__(self, graph: nx.Graph, words_per_message: int = 4) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("network graph must be non-empty")
        self.graph = graph
        self.words_per_message = words_per_message
        self.current_round = 0
        self.total_messages = 0
        self.total_words = 0
        self._outboxes: dict[tuple[Hashable, Hashable], Message] = {}
        self._inboxes: dict[Hashable, list[Message]] = {v: [] for v in graph.nodes()}

    # -- sending ---------------------------------------------------------

    def send(self, sender: Hashable, receiver: Hashable, payload: Any) -> None:
        """Queue a message from ``sender`` to the neighbouring node ``receiver``.

        Raises:
            ValueError: if ``receiver`` is not adjacent to ``sender``.
            BandwidthExceeded: if a message was already queued on this directed
                edge in the current round, or the payload exceeds the per
                message word budget.
        """
        if not self.graph.has_edge(sender, receiver):
            raise ValueError(f"{sender!r} and {receiver!r} are not adjacent")
        key = (sender, receiver)
        if key in self._outboxes:
            raise BandwidthExceeded(
                f"edge {sender!r}->{receiver!r} already carries a message in round "
                f"{self.current_round}"
            )
        words = _payload_words(payload)
        if words > self.words_per_message:
            raise BandwidthExceeded(
                f"payload of {words} words exceeds the budget of "
                f"{self.words_per_message} words per message"
            )
        self._outboxes[key] = Message(
            sender=sender, receiver=receiver, payload=payload, round_sent=self.current_round
        )
        self.total_messages += 1
        self.total_words += words

    def broadcast_to_neighbors(self, sender: Hashable, payload: Any) -> None:
        """Send the same payload to every neighbour of ``sender`` this round."""
        for neighbour in self.graph.neighbors(sender):
            self.send(sender, neighbour, payload)

    # -- round advancement -----------------------------------------------

    def deliver(self) -> None:
        """Advance one round: deliver all queued messages to their inboxes."""
        for inbox in self._inboxes.values():
            inbox.clear()
        for message in self._outboxes.values():
            self._inboxes[message.receiver].append(message)
        self._outboxes.clear()
        self.current_round += 1

    def inbox(self, node: Hashable) -> list[Message]:
        """Messages delivered to ``node`` at the start of the current round."""
        return list(self._inboxes[node])

    # -- inspection --------------------------------------------------------

    @property
    def nodes(self) -> list:
        """The nodes of the underlying graph (stable sorted order)."""
        return sorted(self.graph.nodes())

    def neighbors(self, node: Hashable) -> list:
        """Sorted neighbours of ``node``."""
        return sorted(self.graph.neighbors(node))

    def degree(self, node: Hashable) -> int:
        """Degree of ``node`` in the topology."""
        return self.graph.degree(node)

    def reset_counters(self) -> None:
        """Reset round and message counters (topology and inboxes unchanged)."""
        self.current_round = 0
        self.total_messages = 0
        self.total_words = 0
