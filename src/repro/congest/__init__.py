"""CONGEST model simulator: synchronous rounds, bandwidth limits, primitives."""

from repro.congest.algorithm import Mailbox, NodeAlgorithm, NodeState, RunResult, Runner
from repro.congest.network import BandwidthExceeded, Message, Network
from repro.congest.primitives import (
    BFSResult,
    assign_ranks,
    broadcast_value,
    build_bfs_tree,
    convergecast_sum,
    elect_leader,
)
from repro.congest.scheduler import ScheduleResult, ScheduledToken, schedule_tokens_along_paths

__all__ = [
    "Mailbox",
    "NodeAlgorithm",
    "NodeState",
    "RunResult",
    "Runner",
    "BandwidthExceeded",
    "Message",
    "Network",
    "BFSResult",
    "assign_ranks",
    "broadcast_value",
    "build_bfs_tree",
    "convergecast_sum",
    "elect_leader",
    "ScheduleResult",
    "ScheduledToken",
    "schedule_tokens_along_paths",
]
