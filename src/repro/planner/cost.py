"""The planner's cost model: asymptotic priors + EWMA-calibrated observations.

Portfolio-style strategy selection only works with a defensible cost
estimate per candidate.  This model combines two signals:

* **Priors** — the paper's round-complexity claims, straight from
  :mod:`repro.analysis.complexity`: the deterministic router pays
  ``L · log^{O(1/ε)} n`` per warm query (Theorem 1.1), the CS20-style
  rebuild-per-query comparator pays its whole preprocessing bound *per
  query*, the randomized baseline pays ``2^{O(√(log n log log n))}``, and
  direct shortest-path routing pays per-request path work.  Priors are
  monotone in graph size for every backend (a property test enforces this)
  and break ties before any measurement exists.
* **Calibration** — an exponentially weighted moving average (EWMA) of the
  per-query and per-preprocess wall-clock the serving layer already
  measures (:class:`~repro.service.BatchReport` results and
  ``repro_service_*`` histograms), keyed by
  ``(backend, kernel, graph-size-bucket)``.  Graph sizes are bucketed by
  bit length (64–127 vertices share a bucket, 128–255 the next, …) so a
  handful of observations generalizes across same-scale graphs.  Every
  observation additionally refines a *workload-class* EWMA under the same
  key extended with the workload name — no single backend wins every
  workload shape (direct shortest-path routing flies on a broadcast and
  collapses under adversarial congestion), so estimates prefer the
  workload-specific curve and fall back to the aggregate.

Once a key has samples, its EWMA replaces the prior; keys without samples
fall back to the prior (scaled into nominal seconds), and the ``adaptive``
policy deliberately probes candidates un-calibrated *for the workload class
at hand* first, so comparisons are measurement-vs-measurement after warm-up.

Every mutation bumps :attr:`CostModel.version`, which the planner's plan
cache keys on — identical calibration state therefore reproduces
byte-identical plans and EXPLAIN output.  All methods are thread-safe (the
cluster tier shares one model across shards).
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from dataclasses import dataclass

from repro.analysis.complexity import (
    deterministic_single_instance_bound,
    preprocessing_bound,
    query_bound,
)

__all__ = ["size_bucket", "CostEstimate", "CostModel"]

#: Nominal seconds one abstract "round" of the priors costs.  Only the
#: *ordering* of priors matters (calibration supplies real seconds); the
#: scale just keeps prior magnitudes in the same ballpark as measurements.
PRIOR_ROUND_SECONDS = 2e-5


def size_bucket(n: int) -> int:
    """The calibration bucket for an ``n``-vertex graph (log2 bucketing)."""
    return max(int(n), 2).bit_length()


@dataclass(frozen=True)
class CostEstimate:
    """One candidate's estimated cost, with its provenance.

    Attributes:
        backend: candidate backend name.
        kernel: compute kernel the estimate applies to.
        bucket: graph-size bucket (see :func:`size_bucket`).
        phase: ``"query"`` or ``"preprocess"``.
        prior: the asymptotic prior in nominal seconds.
        calibrated: the EWMA of observed seconds (``None`` before any
            observation) — workload-specific when available, else the
            workload-agnostic aggregate.
        samples: how many observations the served EWMA has absorbed.
        cost: the effective estimate the planner compares (calibrated when
            available, else the prior).
        scope: where ``calibrated`` came from: ``"workload"`` (the specific
            class), ``"aggregate"``, or ``""`` (prior only).
        workload_samples: observations under the workload-specific key —
            the adaptive policy probes candidates where this is still 0.
    """

    backend: str
    kernel: str
    bucket: int
    phase: str
    prior: float
    calibrated: float | None
    samples: int
    cost: float
    scope: str = ""
    workload_samples: int = 0

    @property
    def source(self) -> str:
        if self.calibrated is None:
            return "prior"
        return f"ewma:{self.scope}" if self.scope else "ewma"

    def as_row(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "phase": self.phase,
            "source": self.source,
            "prior": f"{self.prior:.3e}",
            "calibrated": "-" if self.calibrated is None else f"{self.calibrated:.3e}",
            "samples": self.samples,
            "cost": f"{self.cost:.3e}",
        }


class CostModel:
    """Asymptotics-seeded, EWMA-calibrated cost estimates per execution choice.

    Args:
        epsilon: the service's tradeoff parameter (feeds the Theorem 1.1
            bounds the priors are built from).
        alpha: EWMA smoothing factor in ``(0, 1]`` — the weight of the newest
            observation (0.3 keeps roughly the last handful of samples
            relevant, which tracks cache warm-up quickly without thrashing on
            one noisy measurement).
    """

    def __init__(self, epsilon: float = 0.5, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.epsilon = epsilon
        self.alpha = alpha
        self._lock = threading.RLock()
        # (backend, kernel, bucket, phase, workload) -> [ewma_seconds, samples]
        self._state: dict[tuple[str, str, int, str, str], list[float]] = {}
        self._version = 0
        # state_signature() serializes the whole state; memoized per version
        # (every planner decision embeds the signature in its explanation).
        self._signature_cache: tuple[int, str] | None = None

    # -- priors --------------------------------------------------------------

    def prior_query_rounds(self, backend: str, n: int, load: int = 1) -> float:
        """The asymptotic per-query cost of ``backend`` in abstract rounds.

        Monotone nondecreasing in ``n`` for every backend (property-tested):
        each formula composes the monotone bounds of
        :mod:`repro.analysis.complexity` with nonnegative coefficients.
        """
        n = max(int(n), 4)
        load = max(int(load), 1)
        if backend == "deterministic":
            # Warm query under Theorem 1.1: L * polylog(n); preprocessing is
            # amortized by the artifact cache and charged separately.
            return query_bound(n, self.epsilon, load=load)
        if backend == "rebuild-per-query":
            # The CS20-style comparator rebuilds per query: its whole
            # preprocessing bound lands on every single query.
            return preprocessing_bound(n, self.epsilon) + query_bound(
                n, self.epsilon, load=load
            )
        if backend == "randomized-gks":
            # Two walk phases plus delivery; the doubled O-constant keeps the
            # un-calibrated prior honest about the repeated-phase overhead.
            return load * deterministic_single_instance_bound(n, constant=2.0)
        if backend == "direct":
            # Per-request shortest-path work; congestion makes it load- and
            # n-sensitive even though its round count looks tiny.
            return load * n * math.log2(n)
        # Unknown backends: a neutral polylog prior, so the planner still
        # orders them deterministically without claiming to know them.
        return 2.0 * query_bound(n, self.epsilon, load=load)

    def prior_preprocess_rounds(self, backend: str, n: int) -> float:
        """The asymptotic one-off preprocessing cost in abstract rounds."""
        n = max(int(n), 4)
        if backend == "deterministic":
            return preprocessing_bound(n, self.epsilon)
        # No other bundled backend keeps reusable preprocessed state.
        return 0.0

    # -- calibration ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped on every observation (plan-cache key part)."""
        with self._lock:
            return self._version

    def observe(
        self,
        backend: str,
        kernel: str,
        n: int,
        phase: str,
        seconds: float,
        workload: str = "",
    ) -> None:
        """Fold one measured wall-clock into the EWMAs for its key.

        Always refines the workload-agnostic aggregate; with a ``workload``
        label it additionally refines the workload-class curve (estimates
        prefer the specific curve, see :meth:`estimate`).
        """
        if seconds < 0.0 or not math.isfinite(seconds):
            return
        bucket = size_bucket(n)
        keys = [(backend, kernel, bucket, phase, "")]
        if workload:
            keys.append((backend, kernel, bucket, phase, workload))
        with self._lock:
            for key in keys:
                entry = self._state.get(key)
                if entry is None:
                    self._state[key] = [seconds, 1]
                elif entry[1] == 1:
                    # The very first measurement after a cold start is
                    # provisional — it typically includes one-off warm-up
                    # (artifact reconstruction, the kernels' memoization
                    # caches filling).  The second observation replaces it
                    # outright instead of blending 70% of the cold outlier
                    # into the steady-state estimate.
                    entry[0] = seconds
                    entry[1] = 2
                else:
                    entry[0] = self.alpha * seconds + (1.0 - self.alpha) * entry[0]
                    entry[1] += 1
            self._version += 1

    def observe_query(
        self, backend: str, kernel: str, n: int, seconds: float, workload: str = ""
    ) -> None:
        self.observe(backend, kernel, n, "query", seconds, workload=workload)

    def observe_fused_query(
        self, backend: str, kernel: str, n: int, seconds: float, workload: str = ""
    ) -> None:
        """Fold one fused-batch *per-query* wall-clock into the ``fused`` curve.

        ``seconds`` is the fused pass divided by its batch size — the number
        that competes with a sequential per-query observation.
        """
        self.observe(backend, kernel, n, "fused", seconds, workload=workload)

    def observe_preprocess(
        self, backend: str, kernel: str, n: int, seconds: float
    ) -> None:
        # Preprocessing is workload-independent by definition (it happens
        # before any requests exist), so only the aggregate curve is refined.
        self.observe(backend, kernel, n, "preprocess", seconds)

    def samples(
        self,
        backend: str,
        kernel: str,
        n: int,
        phase: str = "query",
        workload: str = "",
    ) -> int:
        """How many observations the EWMA for this key has absorbed."""
        with self._lock:
            entry = self._state.get((backend, kernel, size_bucket(n), phase, workload))
            return 0 if entry is None else int(entry[1])

    # -- estimates -----------------------------------------------------------

    def estimate(
        self,
        backend: str,
        kernel: str,
        n: int,
        phase: str = "query",
        load: int = 1,
        workload: str = "",
    ) -> CostEstimate:
        """The effective cost estimate for one (backend, kernel, size) choice.

        The workload-class EWMA wins when it has samples; the
        workload-agnostic aggregate is the fallback; the asymptotic prior
        covers keys never observed at all.
        """
        bucket = size_bucket(n)
        if phase == "preprocess":
            prior = self.prior_preprocess_rounds(backend, n) * PRIOR_ROUND_SECONDS
        else:
            prior = self.prior_query_rounds(backend, n, load=load) * PRIOR_ROUND_SECONDS
        with self._lock:
            specific = self._state.get((backend, kernel, bucket, phase, workload))
            aggregate = self._state.get((backend, kernel, bucket, phase, ""))
        if specific is not None:
            entry, scope = specific, ("workload" if workload else "aggregate")
        else:
            entry, scope = aggregate, "aggregate"
        calibrated = None if entry is None else float(entry[0])
        samples = 0 if entry is None else int(entry[1])
        if calibrated is None:
            scope = ""
        return CostEstimate(
            backend=backend,
            kernel=kernel,
            bucket=bucket,
            phase=phase,
            prior=prior,
            calibrated=calibrated,
            samples=samples,
            cost=prior if calibrated is None else calibrated,
            scope=scope,
            workload_samples=0 if specific is None else int(specific[1]),
        )

    def fused_prior_factor(self, batch: int) -> float:
        """Prior per-query cost multiplier when ``batch`` queries fuse into one pass.

        A fused pass shares the hierarchy walk, the ledger plumbing, and the
        kernel setup across the batch; only the per-query token work stays
        proportional.  The seed splits a query ~45%/55% between shared and
        proportional work — deliberately conservative (measured fused passes
        do better), since calibration replaces it after two observations.
        """
        batch = max(int(batch), 1)
        return 0.45 + 0.55 / batch

    def estimate_fused(
        self,
        backend: str,
        kernel: str,
        n: int,
        batch: int = 2,
        load: int = 1,
        workload: str = "",
    ) -> CostEstimate:
        """The effective *per-query* estimate when routed as a fused batch.

        Calibrated from ``fused``-phase observations
        (:meth:`observe_fused_query`) when any exist; otherwise the sequential
        query prior scaled by :meth:`fused_prior_factor`.
        """
        bucket = size_bucket(n)
        prior = (
            self.prior_query_rounds(backend, n, load=load)
            * PRIOR_ROUND_SECONDS
            * self.fused_prior_factor(batch)
        )
        with self._lock:
            specific = self._state.get((backend, kernel, bucket, "fused", workload))
            aggregate = self._state.get((backend, kernel, bucket, "fused", ""))
        if specific is not None:
            entry, scope = specific, ("workload" if workload else "aggregate")
        else:
            entry, scope = aggregate, "aggregate"
        calibrated = None if entry is None else float(entry[0])
        samples = 0 if entry is None else int(entry[1])
        if calibrated is None:
            scope = ""
        return CostEstimate(
            backend=backend,
            kernel=kernel,
            bucket=bucket,
            phase="fused",
            prior=prior,
            calibrated=calibrated,
            samples=samples,
            cost=prior if calibrated is None else calibrated,
            scope=scope,
            workload_samples=0 if specific is None else int(specific[1]),
        )

    # -- state ---------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """The calibration state as a canonical, JSON-friendly dict."""
        with self._lock:
            return {
                "|".join((backend, kernel, str(bucket), phase, workload)): {
                    "value": value,
                    "samples": samples,
                }
                for (backend, kernel, bucket, phase, workload), (
                    value,
                    samples,
                ) in sorted(self._state.items())
            }

    def restore(self, snapshot: dict[str, dict[str, float]], version: int = 0) -> None:
        """Overwrite the calibration state from a :meth:`snapshot` dict.

        The durability checkpoint carries the snapshot plus the version
        counter; restoring both makes a journal-recovered planner's
        :meth:`state_signature` (and therefore its plan cache) byte-identical
        to the crashed one's.
        """
        state: dict[tuple[str, str, int, str, str], list[float]] = {}
        for key, entry in snapshot.items():
            backend, kernel, bucket, phase, workload = key.split("|", 4)
            state[(backend, kernel, int(bucket), phase, workload)] = [
                float(entry["value"]),
                int(entry["samples"]),
            ]
        with self._lock:
            self._state = state
            self._version = int(version)
            self._signature_cache = None

    def state_signature(self) -> str:
        """Hash of (version, calibration state) — equal hashes ⇒ equal plans."""
        with self._lock:
            if self._signature_cache is not None and self._signature_cache[0] == self._version:
                return self._signature_cache[1]
            payload = json.dumps(
                {"version": self._version, "state": self.snapshot()},
                sort_keys=True,
                separators=(",", ":"),
            )
            signature = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            self._signature_cache = (self._version, signature)
            return signature
