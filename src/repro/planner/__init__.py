"""Cost-model-driven query planning: one decision point for every execution knob.

``repro.planner`` unifies the four execution choices that previously lived in
scattered kwargs — routing backend, compute kernel, thread/process
parallelism, and shard placement — behind a single
:class:`ExecutionPlan` produced by a :class:`QueryPlanner`:

* :class:`ExecutionPlan` — the immutable decision record the serving layers
  execute (and report) against;
* :class:`CostModel` — asymptotic priors from
  :mod:`repro.analysis.complexity`, calibrated online by an EWMA of the
  per-query / per-preprocess timings the service already measures;
* :class:`QueryPlanner` — policies ``fixed`` / ``cost`` / ``adaptive``, a
  deterministic plan cache, and EXPLAIN-style :class:`PlanExplanation`
  reports.

See the README's "Query planning" section and ``examples/planner_explain.py``
for a tour.
"""

from repro.planner.cost import CostEstimate, CostModel, size_bucket
from repro.planner.plan import EXECUTION_MODES, ExecutionPlan
from repro.planner.planner import (
    PLAN_POLICIES,
    PlanExplanation,
    QueryPlanner,
    workload_signature,
)

__all__ = [
    "CostEstimate",
    "CostModel",
    "size_bucket",
    "EXECUTION_MODES",
    "ExecutionPlan",
    "PLAN_POLICIES",
    "PlanExplanation",
    "QueryPlanner",
    "workload_signature",
]
